"""Exception hierarchy for the LTAM reproduction.

Every error raised by :mod:`repro` derives from :class:`LTAMError` so callers
can catch library failures with a single ``except`` clause while still being
able to distinguish the individual failure modes.
"""

from __future__ import annotations


class LTAMError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""


class TemporalError(LTAMError):
    """Raised for invalid time points, intervals, or interval operations."""


class InvalidIntervalError(TemporalError):
    """Raised when an interval is constructed with inconsistent endpoints."""


class LocationError(LTAMError):
    """Base class for errors in the location model."""


class UnknownLocationError(LocationError):
    """Raised when a referenced location does not exist in a graph."""


class DuplicateLocationError(LocationError):
    """Raised when a location name is registered more than once."""


class GraphStructureError(LocationError):
    """Raised when a (multilevel) location graph violates a structural rule.

    Examples include a graph without entry locations, a disconnected graph,
    or an edge that references a node outside of the graph.
    """


class RouteError(LocationError):
    """Raised when a route cannot be constructed or validated."""


class SpatialError(LTAMError):
    """Raised for invalid geometric data in the spatial substrate."""


class AuthorizationError(LTAMError):
    """Base class for errors in the authorization model."""


class InvalidAuthorizationError(AuthorizationError):
    """Raised when an authorization violates Definition 4 of the paper."""


class UnknownSubjectError(AuthorizationError):
    """Raised when a referenced subject is not present in the profile DB."""


class RuleError(AuthorizationError):
    """Raised when an authorization rule is malformed or cannot be applied."""


class ConflictError(AuthorizationError):
    """Raised when conflicting authorizations cannot be resolved."""


class StorageError(LTAMError):
    """Raised by storage backends (in-memory and SQLite)."""


class DuplicateRecordError(StorageError):
    """Raised when inserting a record whose identifier already exists."""


class MissingRecordError(StorageError):
    """Raised when a looked-up record does not exist."""


class IngestError(StorageError):
    """Raised by the streaming ingest path (closed ingestor, failed batches)."""


class EnforcementError(LTAMError):
    """Raised by the access-control engine and movement monitor."""


class QueryError(LTAMError):
    """Raised when a query cannot be parsed or evaluated."""


class QuerySyntaxError(QueryError):
    """Raised when the query text does not conform to the query grammar."""


class SimulationError(LTAMError):
    """Raised by workload and movement generators on invalid parameters."""


class PrivacyError(LTAMError):
    """Raised when a location-privacy policy cannot be applied."""
