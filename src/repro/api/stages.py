"""The pluggable stages of the decision pipeline.

Definition 7's monolithic check is decomposed into small, ordered stages —
each one a tiny object with a ``name`` and an ``evaluate(context)`` method.
The classic pipeline reproduces the seed engine's behavior exactly:

1. :class:`KnownLocationStage` — the requested location must be a primitive
   location of the protected hierarchy;
2. :class:`CandidateLookupStage` — at least one authorization must exist for
   the ``(subject, location)`` pair;
3. :class:`EntryWindowStage` — at least one candidate's entry duration must
   contain the request time;
4. :class:`EntryBudgetStage` — the first admissible candidate with budget
   remaining grants the request (terminal stage).

Two extension stages cover scenarios the seed engine hard-coded around:
:class:`CapacityStage` (deny when the location is full, instead of merely
alerting after the fact) and :class:`ConflictResolutionStage` (collapse
conflicting candidate authorizations with a Section 4 resolution strategy
before the budget check).

Stages communicate through an :class:`EvaluationContext` that carries the
request, the attribute services (a policy-information view, see
:class:`~repro.api.pdp.PolicyInformationPoint`) and the candidate sets
produced so far.

Cost model: every movement-database attribute a stage consults resolves
against the event-indexed
:class:`~repro.storage.occupancy.OccupancyService` projection —
``occupancy_of`` is O(1) (:class:`CapacityStage`) and ``entry_count`` is
O(1) unwindowed / O(log n) windowed (:class:`EntryBudgetStage`) — so a
stage evaluation never scales with the length of the movement history.
"""

from __future__ import annotations

from typing import List, Protocol, Tuple, runtime_checkable

from repro.core.authorization import UNLIMITED_ENTRIES, LocationTemporalAuthorization
from repro.core.conflicts import ResolutionStrategy, resolve_conflicts
from repro.core.requests import DenialReason
from repro.api.decision import StageOutcome, StageResult

__all__ = [
    "EvaluationContext",
    "DecisionStage",
    "KnownLocationStage",
    "CandidateLookupStage",
    "EntryWindowStage",
    "EntryBudgetStage",
    "CapacityStage",
    "ConflictResolutionStage",
    "default_pipeline",
]


class EvaluationContext:
    """Mutable scratchpad threaded through the pipeline for one request.

    Attributes
    ----------
    request:
        The access request under evaluation.
    info:
        The attribute services (candidate lookup, entry counting, capacity)
        the stages consult — a
        :class:`~repro.api.pdp.PolicyInformationPoint` or anything
        duck-compatible with it.
    candidates:
        Authorizations stored for the request's ``(subject, location)`` pair,
        populated by :class:`CandidateLookupStage` and possibly rewritten by
        :class:`ConflictResolutionStage`.
    admissible:
        The candidates whose entry duration contains the request time,
        populated by :class:`EntryWindowStage`.
    """

    __slots__ = ("request", "info", "candidates", "admissible")

    def __init__(self, request, info) -> None:
        self.request = request
        self.info = info
        self.candidates: List[LocationTemporalAuthorization] = []
        self.admissible: List[LocationTemporalAuthorization] = []


@runtime_checkable
class DecisionStage(Protocol):
    """Protocol every pipeline stage implements."""

    name: str

    def evaluate(self, context: EvaluationContext) -> StageResult:
        """Judge the request, returning this stage's verdict."""
        ...  # pragma: no cover - protocol


class KnownLocationStage:
    """Deny requests for locations outside the protected hierarchy."""

    name = "known-location"

    def evaluate(self, context: EvaluationContext) -> StageResult:
        location = context.request.location
        if not context.info.is_primitive(location):
            return StageResult(
                self.name,
                StageOutcome.DENY,
                detail=f"{location!r} is not a primitive location of the protected hierarchy",
                reason=DenialReason.UNKNOWN_LOCATION,
            )
        return StageResult(
            self.name, StageOutcome.CONTINUE, detail=f"{location!r} is a protected primitive location"
        )


class CandidateLookupStage:
    """Fetch the stored authorizations for the ``(subject, location)`` pair.

    With ``time_first=True`` (and a PIP exposing ``enterable_candidates``)
    the lookup stabs the interval index with the request time instead of
    fetching every stored grant: a subject carrying many *expired* grants
    for a location gets only the time-valid candidates — the dead ones are
    pruned by the index, never materialized, and :class:`EntryWindowStage`
    has nothing left to filter.  Decisions are unchanged for the default
    pipeline shape: candidates come back in storage order, and an empty
    stab falls back to the full fetch so the denial reason still
    distinguishes "no grant at all" (``NO_AUTHORIZATION``) from "none
    valid now" (``OUTSIDE_ENTRY_DURATION``).

    Caveat: a :class:`ConflictResolutionStage` placed *before*
    :class:`EntryWindowStage` is documented to operate on the raw
    candidate pool, expired grants included — time-first pruning removes
    those grants from its merge input and can change what the merged
    authorization permits.  Keep ``time_first=False`` in pipelines that
    resolve conflicts ahead of the window filter.
    """

    name = "candidate-lookup"

    def __init__(self, *, time_first: bool = False) -> None:
        self._time_first = time_first

    @property
    def time_first(self) -> bool:
        """Whether this stage stabs the entry-interval index first."""
        return self._time_first

    def evaluate(self, context: EvaluationContext) -> StageResult:
        request = context.request
        if self._time_first:
            enterable = getattr(context.info, "enterable_candidates", None)
            if enterable is not None:
                live = list(enterable(request.subject, request.location, request.time))
                if live:
                    context.candidates = live
                    return StageResult(
                        self.name,
                        StageOutcome.CONTINUE,
                        detail=(
                            f"{len(live)} candidate(s) enterable at t={request.time}"
                            " (time-first interval lookup)"
                        ),
                    )
                # Nothing live: fall through to the full fetch, which tells
                # "no authorization" apart from "all outside their windows".
                context.candidates = list(
                    context.info.candidates_for(request.subject, request.location)
                )
                if context.candidates:
                    return StageResult(
                        self.name,
                        StageOutcome.DENY,
                        detail=(
                            f"none of {len(context.candidates)} candidate(s) permits entry"
                            f" at t={request.time} (time-first interval lookup)"
                        ),
                        reason=DenialReason.OUTSIDE_ENTRY_DURATION,
                    )
                return self._deny_no_authorization(request)
        context.candidates = list(context.info.candidates_for(request.subject, request.location))
        if not context.candidates:
            return self._deny_no_authorization(request)
        return StageResult(
            self.name,
            StageOutcome.CONTINUE,
            detail=f"{len(context.candidates)} candidate authorization(s)",
        )

    def _deny_no_authorization(self, request) -> StageResult:
        return StageResult(
            self.name,
            StageOutcome.DENY,
            detail=f"no authorization stored for ({request.subject}, {request.location})",
            reason=DenialReason.NO_AUTHORIZATION,
        )


class ConflictResolutionStage:
    """Collapse conflicting candidates with a Section 4 resolution strategy.

    Works on whichever candidate pool is current — the raw candidates when
    placed before :class:`EntryWindowStage`, the admissible (in-window) set
    when placed after it — so that, e.g., two overlapping grants merge into
    one authorization spanning both windows instead of being budget-checked
    independently.
    """

    name = "conflict-resolution"

    def __init__(
        self,
        strategy: ResolutionStrategy = ResolutionStrategy.MERGE,
        *,
        include_adjacent: bool = False,
    ) -> None:
        self._strategy = ResolutionStrategy(strategy)
        self._include_adjacent = include_adjacent

    def evaluate(self, context: EvaluationContext) -> StageResult:
        pool_name = "admissible" if context.admissible else "candidates"
        pool = getattr(context, pool_name)
        if len(pool) < 2:
            return StageResult(self.name, StageOutcome.SKIP, detail="fewer than two candidates")
        resolved, conflicts = resolve_conflicts(
            pool,
            strategy=self._strategy,
            include_adjacent=self._include_adjacent,
        )
        if not conflicts:
            return StageResult(
                self.name,
                StageOutcome.CONTINUE,
                detail=f"no conflicts among {len(pool)} candidate(s)",
            )
        setattr(context, pool_name, list(resolved))
        return StageResult(
            self.name,
            StageOutcome.CONTINUE,
            detail=(
                f"resolved {len(conflicts)} conflict(s) via {self._strategy.value}; "
                f"{len(resolved)} candidate(s) remain"
            ),
        )


class EntryWindowStage:
    """Keep only the candidates whose entry duration contains the request time."""

    name = "entry-window"

    def evaluate(self, context: EvaluationContext) -> StageResult:
        time = context.request.time
        context.admissible = [auth for auth in context.candidates if auth.permits_entry_at(time)]
        if not context.admissible:
            return StageResult(
                self.name,
                StageOutcome.DENY,
                detail=f"none of {len(context.candidates)} candidate(s) permits entry at t={time}",
                reason=DenialReason.OUTSIDE_ENTRY_DURATION,
            )
        return StageResult(
            self.name,
            StageOutcome.CONTINUE,
            detail=f"{len(context.admissible)} candidate(s) enterable at t={time}",
        )


class CapacityStage:
    """Deny admission when the location is already at its occupancy limit.

    The seed engine only *alerted* on over-capacity after the entry happened;
    putting this stage in the pipeline turns the limit into an admission
    constraint.  Skips when no limit is configured for the location.
    """

    name = "capacity"

    def evaluate(self, context: EvaluationContext) -> StageResult:
        location = context.request.location
        limit = context.info.capacity_of(location)
        if limit is None:
            return StageResult(
                self.name, StageOutcome.SKIP, detail=f"no capacity limit configured for {location!r}"
            )
        occupants = context.info.occupancy_of(location)
        if occupants >= limit:
            return StageResult(
                self.name,
                StageOutcome.DENY,
                detail=f"{occupants} occupant(s) already inside; limit is {limit}",
                reason=DenialReason.OVER_CAPACITY,
            )
        return StageResult(
            self.name, StageOutcome.CONTINUE, detail=f"occupancy {occupants}/{limit}"
        )


class EntryBudgetStage:
    """Terminal stage: grant via the first admissible candidate with budget left.

    Mirrors Definition 7's entry counting — entries are counted within each
    authorization's entry duration, and the first candidate (in storage
    order) with remaining budget admits the request.  In a custom pipeline
    without :class:`EntryWindowStage` the raw candidates are judged instead
    (an empty admissible set here can only mean the window stage never ran —
    when it runs and filters everything out, it denies by itself).
    """

    name = "entry-budget"

    def evaluate(self, context: EvaluationContext) -> StageResult:
        request = context.request
        pool = context.admissible if context.admissible else context.candidates
        exhausted_used = 0
        for authorization in pool:
            used = context.info.entry_count(
                request.subject, request.location, authorization.entry_duration
            )
            remaining = authorization.entries_remaining(used)
            if remaining is UNLIMITED_ENTRIES or int(remaining) > 0:
                left = "unlimited" if remaining is UNLIMITED_ENTRIES else str(int(remaining))
                return StageResult(
                    self.name,
                    StageOutcome.GRANT,
                    detail=f"granted via {authorization.auth_id}; {used} entr(y/ies) used, {left} remaining",
                    authorization=authorization,
                    entries_used=used,
                )
            exhausted_used = max(exhausted_used, used)
        return StageResult(
            self.name,
            StageOutcome.DENY,
            detail=f"entry budget exhausted on all {len(pool)} admissible candidate(s)",
            reason=DenialReason.ENTRY_LIMIT_EXHAUSTED,
            entries_used=exhausted_used,
        )


def default_pipeline() -> Tuple["DecisionStage", ...]:
    """The classic Definition 7 pipeline, byte-for-byte compatible with the seed engine."""
    return (
        KnownLocationStage(),
        CandidateLookupStage(),
        EntryWindowStage(),
        EntryBudgetStage(),
    )
