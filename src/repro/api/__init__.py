"""repro.api — the PDP/PEP public API of the LTAM reproduction.

The enforcement architecture of Figure 3 is split XACML-style:

* :class:`DecisionPoint` (PDP) — evaluates access requests through an
  ordered, pluggable pipeline of :class:`DecisionStage` objects and returns
  :class:`Decision` objects carrying a per-stage trace;
* :class:`EnforcementPoint` (PEP) — owns every side effect: audit entries,
  denial alerts, and feeding movement observations to the monitor;
* :class:`PolicyInformationPoint` (PIP) — the attribute services the stages
  consult (candidate lookup, entry counting, capacity), memoized by the
  batch API :meth:`DecisionPoint.decide_many`;
* :class:`Ltam` — the facade composing all of the above, with fluent
  construction via :meth:`Ltam.builder` and :func:`grant`.

Typical use::

    from repro.api import CapacityStage, Ltam, grant

    engine = (
        Ltam.builder()
        .hierarchy(campus)
        .backend("sqlite", "/var/lib/ltam.db")
        .stage(CapacityStage())
        .build()
    )
    engine.grant(grant("alice").at("meeting-room").during(9, 17).entries(3))
    decision = engine.decide((10, "alice", "meeting-room"))
    print(decision.explain())          # per-stage trace
    decisions = engine.decide_many(requests)   # batched, shared lookups
"""

from repro.api.decision import Decision, StageOutcome, StageResult
from repro.api.stages import (
    CandidateLookupStage,
    CapacityStage,
    ConflictResolutionStage,
    DecisionStage,
    EntryBudgetStage,
    EntryWindowStage,
    EvaluationContext,
    KnownLocationStage,
    default_pipeline,
)
from repro.api.pdp import DecisionPoint, PolicyInformationPoint
from repro.api.pep import EnforcementPoint
from repro.api.builder import AuthorizationBuilder, Ltam, LtamBuilder, grant

__all__ = [
    # decisions
    "Decision",
    "StageOutcome",
    "StageResult",
    # stages
    "DecisionStage",
    "EvaluationContext",
    "KnownLocationStage",
    "CandidateLookupStage",
    "EntryWindowStage",
    "EntryBudgetStage",
    "CapacityStage",
    "ConflictResolutionStage",
    "default_pipeline",
    # PDP / PEP / PIP
    "DecisionPoint",
    "PolicyInformationPoint",
    "EnforcementPoint",
    # construction
    "Ltam",
    "LtamBuilder",
    "AuthorizationBuilder",
    "grant",
]
