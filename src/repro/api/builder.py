"""The fluent construction layer and the :class:`Ltam` facade.

Two builders make deployments and authorizations read like the sentences
they describe::

    engine = (
        Ltam.builder()
        .hierarchy(campus)
        .backend("sqlite", "/var/lib/ltam.db")
        .stage(CapacityStage())
        .rule(supervisor_rule)
        .build()
    )
    engine.grant(grant("alice").at("meeting-room").during(9, 17).entries(3))

:class:`Ltam` is the primary engine of the redesigned API: it wires the
Figure 3 databases, the continuous monitor and the clock to a
:class:`~repro.api.pdp.DecisionPoint` (decisions) and an
:class:`~repro.api.pep.EnforcementPoint` (side effects), and layers the
administrative operations (grant/revoke/rules/derivation) on top.  The
legacy :class:`~repro.engine.access_control.AccessControlEngine` is a thin
subclass that adds the seed's method names.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.errors import EnforcementError
from repro.core.accessibility import AccessibilityReport, find_inaccessible
from repro.core.authorization import (
    UNLIMITED_ENTRIES,
    LocationAuthorization,
    LocationTemporalAuthorization,
)
from repro.core.derivation import DerivationEngine, DerivationResult
from repro.core.requests import AccessRequest
from repro.core.rules import AuthorizationRule
from repro.core.subjects import subject_name
from repro.engine.alerts import AlertSink
from repro.engine.audit import AuditLog
from repro.engine.monitor import MovementMonitor
from repro.locations.graph import LocationGraph
from repro.locations.location import location_name
from repro.locations.multilevel import LocationHierarchy, MultilevelLocationGraph
from repro.storage.authorization_db import (
    AuthorizationDatabase,
    InMemoryAuthorizationDatabase,
    SqliteAuthorizationDatabase,
)
from repro.storage.movement_db import (
    InMemoryMovementDatabase,
    MovementDatabase,
    ShardedInMemoryMovementDatabase,
    SqliteMovementDatabase,
)
from repro.storage.sharding import resolve_shard_count
from repro.storage.profile_db import (
    InMemoryUserProfileDatabase,
    SqliteUserProfileDatabase,
    UserProfileDatabase,
)
from repro.temporal.chronon import Clock, TimePoint
from repro.temporal.interval import TimeInterval
from repro.api.decision import Decision
from repro.api.pdp import DecisionPoint, PolicyInformationPoint
from repro.api.pep import EnforcementPoint
from repro.api.stages import DecisionStage, EntryBudgetStage, default_pipeline

__all__ = ["Ltam", "LtamBuilder", "AuthorizationBuilder", "grant"]

#: Anything :meth:`Ltam.decide` accepts as a request.
RequestLike = Union[AccessRequest, Tuple[int, str, str]]


def _coerce_request(request: RequestLike) -> AccessRequest:
    if isinstance(request, AccessRequest):
        return request
    if isinstance(request, tuple) and len(request) == 3:
        time, subject, location = request
        return AccessRequest(time, subject, location)
    raise EnforcementError(
        f"cannot interpret {request!r} as an access request; "
        "pass an AccessRequest or a (time, subject, location) triple"
    )


def _coerce_hierarchy(
    layout: Union[LocationHierarchy, MultilevelLocationGraph, LocationGraph]
) -> LocationHierarchy:
    if isinstance(layout, LocationHierarchy):
        return layout
    return LocationHierarchy(layout)


class Ltam:
    """PDP/PEP engine over a protected location hierarchy.

    Composes the three Figure 3 databases, the continuous movement monitor,
    a :class:`~repro.api.pdp.DecisionPoint` evaluating requests through a
    pluggable stage pipeline, and an
    :class:`~repro.api.pep.EnforcementPoint` owning audit/alerts/recording.

    Prefer :meth:`Ltam.builder` for construction; the constructor mirrors the
    seed engine's keyword arguments for drop-in use.
    """

    def __init__(
        self,
        hierarchy: Union[LocationHierarchy, MultilevelLocationGraph, LocationGraph],
        *,
        authorization_db: Optional[AuthorizationDatabase] = None,
        movement_db: Optional[MovementDatabase] = None,
        profile_db: Optional[UserProfileDatabase] = None,
        clock: Optional[Clock] = None,
        alert_sink: Optional[AlertSink] = None,
        audit_log: Optional[AuditLog] = None,
        stages: Optional[Sequence[DecisionStage]] = None,
    ) -> None:
        self.hierarchy = _coerce_hierarchy(hierarchy)
        self.authorization_db = (
            authorization_db if authorization_db is not None else InMemoryAuthorizationDatabase()
        )
        self.movement_db = (
            movement_db if movement_db is not None else InMemoryMovementDatabase(self.hierarchy)
        )
        self.profile_db = profile_db if profile_db is not None else InMemoryUserProfileDatabase()
        self.clock = clock if clock is not None else Clock()
        self.alerts = alert_sink if alert_sink is not None else AlertSink()
        self.audit = audit_log if audit_log is not None else AuditLog()
        self.monitor = MovementMonitor(self.authorization_db, self.movement_db, self.alerts)
        self.pdp = DecisionPoint.for_components(
            self.hierarchy,
            self.authorization_db,
            self.movement_db,
            stages=stages,
            capacity_of=self.monitor.capacity_of,
        )
        self.pep = EnforcementPoint(
            self.pdp,
            self.monitor,
            self.movement_db,
            audit=self.audit,
            alerts=self.alerts,
        )
        self._rules: List[AuthorizationRule] = []
        self._derivation: Optional[DerivationEngine] = None
        self._derivation_directory = None
        self._cache_unsubscribe = None
        self._occupancy_base = None
        # Overstay checks run automatically as simulation time advances.
        self.clock.subscribe(self.monitor.check_overstays)

    @staticmethod
    def builder() -> "LtamBuilder":
        """Start a fluent engine definition."""
        return LtamBuilder()

    # ------------------------------------------------------------------ #
    # Administration
    # ------------------------------------------------------------------ #
    def grant(
        self, authorization: Union[LocationTemporalAuthorization, "AuthorizationBuilder"]
    ) -> LocationTemporalAuthorization:
        """Store an authorization (or a fluent builder thereof), validating its location."""
        if isinstance(authorization, AuthorizationBuilder):
            authorization = authorization.build()
        if not self.hierarchy.is_primitive(authorization.location):
            raise EnforcementError(
                f"authorization {authorization.auth_id!r} references {authorization.location!r}, "
                "which is not a primitive location of the protected hierarchy"
            )
        stored = self.authorization_db.add(authorization)
        self.pdp.invalidate_cached(stored.subject, stored.location)
        return stored

    def grant_all(
        self,
        authorizations: Iterable[Union[LocationTemporalAuthorization, "AuthorizationBuilder"]],
    ) -> List[LocationTemporalAuthorization]:
        """Store several authorizations."""
        return [self.grant(authorization) for authorization in authorizations]

    def revoke(self, auth_id: str, *, cascade: bool = True) -> List[LocationTemporalAuthorization]:
        """Revoke an authorization, cascading to derived authorizations by default."""
        if cascade:
            revoked = self.authorization_db.revoke_cascading(auth_id)
        else:
            revoked = [self.authorization_db.revoke(auth_id)]
        for authorization in revoked:
            self.pdp.invalidate_cached(authorization.subject, authorization.location)
        return revoked

    def add_rule(self, rule: AuthorizationRule, *, derive_now: bool = True) -> DerivationResult:
        """Register an authorization rule and (by default) derive immediately.

        Section 5: *"When the administrator specifies new rules, the access
        control engine will evaluate the new rules on the existing
        authorizations and user profiles.  The derived authorizations are
        then added to the authorization database."*
        """
        self._derivation_engine().add_rule(rule)
        self._rules.append(rule)
        if not derive_now:
            return DerivationResult((), (), ())
        return self.derive_authorizations(rules=[rule])

    @property
    def rules(self) -> Tuple[AuthorizationRule, ...]:
        """Every rule registered with the engine."""
        return tuple(self._rules)

    @property
    def derivation(self) -> DerivationEngine:
        """The derivation engine, rebuilt only when the profile directory changes."""
        return self._derivation_engine()

    def _derivation_engine(self) -> DerivationEngine:
        # The directory may change after construction (profile updates).  The
        # in-memory backend mutates one directory in place — the cached
        # derivation engine sees those changes through its reference — while
        # the SQLite backend hands out a fresh directory object after every
        # write, which is exactly the signal to rebuild.
        directory = self.profile_db.directory()
        if self._derivation is None or self._derivation_directory is not directory:
            self._derivation = DerivationEngine(directory, self.hierarchy)
            self._derivation_directory = directory
            for rule in self._rules:
                self._derivation.add_rule(rule)
        return self._derivation

    def derive_authorizations(
        self, *, rules: Optional[Sequence[AuthorizationRule]] = None
    ) -> DerivationResult:
        """Run (selected) rules against the stored authorizations and persist the results."""
        engine = self._derivation_engine()
        selected = list(rules) if rules is not None else list(self._rules)
        result = engine.derive(self.authorization_db.all(), now=self.clock.now, rules=selected)
        existing = set(self.authorization_db.all())
        for authorization in result.derived:
            if authorization in existing:
                continue
            self.authorization_db.add(authorization)
            self.pdp.invalidate_cached(authorization.subject, authorization.location)
            existing.add(authorization)
        for batch in result.batches:
            self.audit.record_derivation(
                self.clock.now,
                batch.base.subject,
                f"rule {batch.rule_id} derived {len(batch.derived)} authorization(s)",
            )
        return result

    # ------------------------------------------------------------------ #
    # Decisions (PDP) and enforcement (PEP)
    # ------------------------------------------------------------------ #
    def decide(self, request: RequestLike) -> Decision:
        """Evaluate a request without side effects; the decision carries its trace."""
        return self.pdp.decide(_coerce_request(request))

    def decide_many(self, requests: Iterable[RequestLike]) -> List[Decision]:
        """Batch-evaluate requests, sharing lookups across the batch (no side effects)."""
        return self.pdp.decide_many([_coerce_request(request) for request in requests])

    def enforce(self, request: RequestLike) -> Decision:
        """Evaluate a request and record the outcome (audit + denial alerts)."""
        return self.pep.enforce(_coerce_request(request))

    def enforce_many(self, requests: Iterable[RequestLike]) -> List[Decision]:
        """Batch :meth:`enforce` via the batch decision path."""
        return self.pep.enforce_many([_coerce_request(request) for request in requests])

    def enforce_and_enter(self, request: RequestLike) -> Decision:
        """Enforce a request and, when granted, record the entry observation."""
        return self.pep.enforce_and_enter(_coerce_request(request))

    # ------------------------------------------------------------------ #
    # Movement observation (continuous monitoring)
    # ------------------------------------------------------------------ #
    def observe_entry(self, time: int, subject: str, location: str):
        """Record that *subject* was observed entering *location* at *time*."""
        return self.pep.observe_entry(time, subject, location)

    def observe_exit(self, time: int, subject: str, location: str):
        """Record that *subject* was observed leaving *location* at *time*."""
        return self.pep.observe_exit(time, subject, location)

    def observe_many(self, records):
        """Feed a whole movement trace to the monitor in one storage transaction.

        Accepts an iterable of
        :class:`~repro.storage.movement_db.MovementRecord` (e.g. a
        :class:`~repro.simulation.movement.SimulatedTrace`); on the SQLite
        backend the entire trace commits once instead of per observation.
        """
        return self.pep.observe_many(records)

    def observe_stream(self, **knobs):
        """Open a streaming observe path (queue-fed group commit) into the PEP.

        Returns a :class:`~repro.storage.ingest.MovementIngestor`; tracker
        adapters ``submit()`` observations at line rate, a background writer
        lands them in batched storage transactions (monitoring and audit
        included), and closing the stream flushes everything accepted::

            with engine.observe_stream(batch_size=512) as stream:
                for record in tracker_feed:
                    stream.submit(record)

        Keyword arguments are those of
        :meth:`~repro.api.pep.EnforcementPoint.ingestor` (``batch_size``,
        ``max_latency``, ``queue_size``, and ``checkpoint_policy`` for
        scheduled checkpointing piggybacked on the writer thread).
        """
        return self.pep.ingestor(**knobs)

    def checkpoint(self, *, compact: bool = True):
        """Checkpoint the movement database (see :meth:`MovementDatabase.checkpoint`)."""
        return self.movement_db.checkpoint(compact=compact)

    def attach_decision_cache(self, cache=None):
        """Attach a decision cache to the PDP and connect its invalidation.

        With no argument a fresh
        :class:`~repro.service.cache.DecisionCache` is created.  The cache
        is subscribed to the movement database's mutation notifications
        (event-wise eviction on every observation/ingest), and the
        administrative paths (:meth:`grant`, :meth:`revoke`, rule
        derivation, :meth:`set_capacity`) invalidate through the PDP hooks —
        so repeated :meth:`decide` calls on hot keys skip the pipeline while
        staying parity-correct.  A previously attached cache is detached
        (and unsubscribed) first.  Returns the cache.
        """
        self.detach_decision_cache()
        if cache is None:
            from repro.service.cache import DecisionCache  # avoid a circular import

            cache = DecisionCache()
        self.pdp.attach_cache(cache)
        connect = getattr(cache, "connect", None)
        if callable(connect):
            self._cache_unsubscribe = connect(self.movement_db)
        return cache

    def detach_decision_cache(self):
        """Detach the PDP's decision cache and unsubscribe its invalidation.

        Without this, a replaced cache would stay subscribed to movement
        notifications forever — held alive and paying its eviction lock on
        every write.  Returns the detached cache (``None`` when absent).
        """
        cache = self.pdp.detach_cache()
        if self._cache_unsubscribe is not None:
            self._cache_unsubscribe()
            self._cache_unsubscribe = None
        return cache

    def attach_occupancy_overlay(self, occupancy_of):
        """Swap the PIP's ``occupancy_of`` for *occupancy_of* (global counts).

        The partitioned serving fabric uses this to make
        :class:`~repro.api.stages.CapacityStage` see *fabric-wide*
        occupancy: the overlay sums the local projection with the
        :class:`~repro.service.capacity.CapacityLedger`'s replicated remote
        counts.  The previous function is kept and restored by
        :meth:`detach_occupancy_overlay`; attaching twice replaces the
        overlay without losing the original.  Batch evaluation's memoizing
        PIP snapshots resolve ``occupancy_of`` through the live PIP at
        lookup time, so the overlay applies there too.
        """
        if self._occupancy_base is None:
            self._occupancy_base = self.pdp.info.occupancy_of
        self.pdp.info.occupancy_of = occupancy_of
        return occupancy_of

    def detach_occupancy_overlay(self):
        """Restore the PIP's original ``occupancy_of`` (local projection).

        Returns the removed overlay (``None`` when none was attached).
        """
        if self._occupancy_base is None:
            return None
        overlay = self.pdp.info.occupancy_of
        self.pdp.info.occupancy_of = self._occupancy_base
        self._occupancy_base = None
        return overlay

    def set_capacity(self, location: str, limit: int) -> None:
        """Set an occupancy limit for *location* (monitored continuously)."""
        if not self.hierarchy.is_primitive(location):
            raise EnforcementError(
                f"{location!r} is not a primitive location of the protected hierarchy"
            )
        self.monitor.set_capacity(location, limit)
        self.pdp.invalidate_cached(location=location)

    def tick(self, delta: int = 1) -> int:
        """Advance the clock (overstay checks run via the clock subscription)."""
        return self.clock.advance(delta)

    def advance_to(self, time: int) -> int:
        """Advance the clock to an absolute time."""
        return self.clock.advance_to(time)

    # ------------------------------------------------------------------ #
    # Reasoning
    # ------------------------------------------------------------------ #
    def inaccessible_locations(self, subject: str) -> AccessibilityReport:
        """Run Algorithm 1 for *subject* against the stored authorizations."""
        return find_inaccessible(self.hierarchy, subject, self.authorization_db)

    def where_is(self, subject: str) -> Optional[str]:
        """The location the subject is currently inside, or ``None``."""
        return self.movement_db.current_location(subject)

    def occupants(self, location: str) -> List[str]:
        """Subjects currently inside *location*."""
        return self.movement_db.occupants(location)

    def occupancy(self, location: str) -> int:
        """Number of subjects currently inside *location* (O(1) projection read)."""
        return self.movement_db.occupancy(location)


class LtamBuilder:
    """Fluent definition of an :class:`Ltam` deployment.

    Every method returns the builder, so a deployment reads top-to-bottom::

        Ltam.builder().hierarchy(h).backend("sqlite", path).stage(...).build()
    """

    _BACKENDS = ("memory", "sqlite")

    def __init__(self) -> None:
        self._hierarchy: Optional[LocationHierarchy] = None
        self._backend = "memory"
        self._backend_path: Optional[str] = None
        self._shards = None
        self._stages: Optional[List[DecisionStage]] = None
        self._rules: List[AuthorizationRule] = []
        self._grants: List[Union[LocationTemporalAuthorization, AuthorizationBuilder]] = []
        self._capacities: Dict[str, int] = {}
        self._clock: Optional[Clock] = None
        self._alert_sink: Optional[AlertSink] = None
        self._audit_log: Optional[AuditLog] = None

    def hierarchy(
        self, layout: Union[LocationHierarchy, MultilevelLocationGraph, LocationGraph]
    ) -> "LtamBuilder":
        """Protect *layout* (a hierarchy, or a graph that will be wrapped in one)."""
        self._hierarchy = _coerce_hierarchy(layout)
        return self

    def backend(self, kind: str, path: Optional[str] = None) -> "LtamBuilder":
        """Choose the storage backend: ``"memory"`` (default) or ``"sqlite"``.

        For ``"sqlite"``, *path* names the database file shared by the three
        stores (``":memory:"`` when omitted — each store then gets its own
        private in-memory SQLite database).
        """
        if kind not in self._BACKENDS:
            raise EnforcementError(
                f"unknown backend {kind!r}; expected one of {', '.join(self._BACKENDS)}"
            )
        if kind == "memory" and path is not None:
            raise EnforcementError("the in-memory backend does not take a path")
        self._backend = kind
        self._backend_path = path
        return self

    def shards(self, shards) -> "LtamBuilder":
        """Shard the movement store's occupancy layer by subject.

        *shards* is a positive integer or ``"auto"`` (one shard per CPU
        core).  On the memory backend this selects the
        :class:`~repro.storage.movement_db.ShardedInMemoryMovementDatabase`
        — log and projection both sharded, so ``observe_stream()`` /
        ``record_many`` ingest from multiple threads in parallel.  On the
        SQLite backend the in-process projection is sharded (the log stays
        the single-writer SQLite connection).
        """
        self._shards = resolve_shard_count(shards)
        return self

    def pipeline(self, *stages: DecisionStage) -> "LtamBuilder":
        """Replace the whole decision pipeline (evaluation order = argument order)."""
        self._stages = list(stages)
        return self

    def stage(self, stage: DecisionStage) -> "LtamBuilder":
        """Insert an extra stage into the pipeline.

        The stage is placed immediately before the terminal granting stage
        (:class:`~repro.api.stages.EntryBudgetStage`) of the current
        pipeline, so extensions such as ``CapacityStage`` filter requests
        before the budget is consulted.  With a custom :meth:`pipeline`, the
        stage is appended instead when no terminal stage is found.
        """
        stages = self._stages if self._stages is not None else list(default_pipeline())
        for index, existing in enumerate(stages):
            if isinstance(existing, EntryBudgetStage):
                stages.insert(index, stage)
                break
        else:
            stages.append(stage)
        self._stages = stages
        return self

    def rule(self, rule: AuthorizationRule) -> "LtamBuilder":
        """Register an authorization rule, derived as soon as the engine is built."""
        self._rules.append(rule)
        return self

    def grant(
        self, authorization: Union[LocationTemporalAuthorization, "AuthorizationBuilder"]
    ) -> "LtamBuilder":
        """Install an authorization (or fluent builder thereof) at build time."""
        self._grants.append(authorization)
        return self

    def capacity(self, location: str, limit: int) -> "LtamBuilder":
        """Configure an occupancy limit for *location*."""
        self._capacities[location_name(location)] = limit
        return self

    def clock(self, clock: Clock) -> "LtamBuilder":
        """Drive the engine from an existing simulation clock."""
        self._clock = clock
        return self

    def alert_sink(self, sink: AlertSink) -> "LtamBuilder":
        """Send alerts to an existing sink."""
        self._alert_sink = sink
        return self

    def audit_log(self, log: AuditLog) -> "LtamBuilder":
        """Write audit entries to an existing log."""
        self._audit_log = log
        return self

    def build(self) -> Ltam:
        """Materialize the engine."""
        if self._hierarchy is None:
            raise EnforcementError("a hierarchy is required; call .hierarchy(...) before .build()")
        authorization_db: Optional[AuthorizationDatabase] = None
        movement_db: Optional[MovementDatabase] = None
        profile_db: Optional[UserProfileDatabase] = None
        if self._backend == "sqlite":
            path = self._backend_path if self._backend_path is not None else ":memory:"
            authorization_db = SqliteAuthorizationDatabase(path)
            movement_db = SqliteMovementDatabase(path, self._hierarchy, shards=self._shards)
            profile_db = SqliteUserProfileDatabase(path)
        elif self._shards is not None:
            movement_db = ShardedInMemoryMovementDatabase(self._hierarchy, shards=self._shards)
        engine = Ltam(
            self._hierarchy,
            authorization_db=authorization_db,
            movement_db=movement_db,
            profile_db=profile_db,
            clock=self._clock,
            alert_sink=self._alert_sink,
            audit_log=self._audit_log,
            stages=self._stages,
        )
        for location, limit in self._capacities.items():
            engine.set_capacity(location, limit)
        for authorization in self._grants:
            engine.grant(authorization)
        for rule in self._rules:
            engine.add_rule(rule)
        return engine


class AuthorizationBuilder:
    """Fluent definition of a location-temporal authorization (Definition 4).

    ::

        grant("alice").at("meeting-room").during(9, 17).entries(3).build()

    Unset windows keep Definition 4's defaults: an unspecified entry duration
    means "any time from creation onwards"; an unspecified exit duration
    defaults to ``[entry_start, ∞]``; the default entry budget is unlimited.
    :meth:`Ltam.grant` and :meth:`LtamBuilder.grant` accept the builder
    directly, so calling :meth:`build` is only needed for standalone use.
    """

    def __init__(self, subject: str) -> None:
        self._subject = subject_name(subject)
        self._location: Optional[str] = None
        self._entry: Optional[Tuple[TimePoint, TimePoint]] = None
        self._exit: Optional[Tuple[TimePoint, TimePoint]] = None
        self._until: Optional[TimePoint] = None
        self._max_entries: TimePoint = UNLIMITED_ENTRIES
        self._created_at: int = 0
        self._auth_id: Optional[str] = None

    def at(self, location: str) -> "AuthorizationBuilder":
        """The primitive location being authorized."""
        self._location = location_name(location)
        return self

    def during(self, start: int, end: TimePoint) -> "AuthorizationBuilder":
        """The entry duration ``[start, end]`` (end may be ``FOREVER``)."""
        self._entry = (start, end)
        return self

    def exit_between(self, start: int, end: TimePoint) -> "AuthorizationBuilder":
        """The exit duration ``[start, end]`` (end may be ``FOREVER``)."""
        self._exit = (start, end)
        self._until = None
        return self

    def until(self, deadline: TimePoint) -> "AuthorizationBuilder":
        """Shorthand: the stay must end by *deadline* (exit window starts with entry).

        The anchor is resolved at :meth:`build` time, so the clause order
        does not matter — ``.until(100).during(30, 60)`` and
        ``.during(30, 60).until(100)`` build the same authorization.
        """
        self._exit = None
        self._until = deadline
        return self

    def entries(self, count: int) -> "AuthorizationBuilder":
        """Bound the number of entries within the entry duration."""
        self._max_entries = count
        return self

    def unlimited_entries(self) -> "AuthorizationBuilder":
        """Reset the entry budget to the paper's default ``∞``."""
        self._max_entries = UNLIMITED_ENTRIES
        return self

    def created_at(self, time: int) -> "AuthorizationBuilder":
        """Creation time, used to resolve an unspecified entry duration."""
        self._created_at = time
        return self

    def with_id(self, auth_id: str) -> "AuthorizationBuilder":
        """Use a stable authorization id instead of a generated one."""
        self._auth_id = auth_id
        return self

    def build(self) -> LocationTemporalAuthorization:
        """Materialize the authorization, validating Definition 4's constraints."""
        if self._location is None:
            raise EnforcementError(
                f"authorization for {self._subject!r} needs a location; call .at(...)"
            )
        exit_ = self._exit
        if self._until is not None:
            start = self._entry[0] if self._entry is not None else self._created_at
            exit_ = (start, self._until)
        return LocationTemporalAuthorization(
            LocationAuthorization(self._subject, self._location),
            self._entry,
            exit_,
            self._max_entries,
            created_at=self._created_at,
            auth_id=self._auth_id,
        )


def grant(subject: str) -> AuthorizationBuilder:
    """Start a fluent authorization for *subject* (see :class:`AuthorizationBuilder`)."""
    return AuthorizationBuilder(subject)
