"""The Policy Enforcement Point: the side-effect layer.

:class:`EnforcementPoint` is the single owner of everything the decision
pipeline must never do: writing the audit log, emitting alerts, and feeding
movement observations to the continuous monitor.  The seed engine interleaved
these concerns with decision logic inside ``request_access`` /
``observe_entry``; here they live behind one object so a deployment can swap
the PDP pipeline without touching enforcement, and vice versa.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, List, Optional

from repro.core.requests import AccessRequest
from repro.core.subjects import subject_name
from repro.engine.alerts import Alert, AlertKind, AlertSink
from repro.engine.audit import AuditLog
from repro.locations.location import location_name
from repro.storage.ingest import (
    DEFAULT_BATCH_SIZE,
    DEFAULT_MAX_LATENCY,
    DEFAULT_QUEUE_SIZE,
    CheckpointPolicy,
    MovementIngestor,
)
from repro.api.decision import Decision
from repro.api.pdp import DecisionPoint

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.monitor import MovementMonitor
    from repro.storage.movement_db import MovementDatabase, MovementRecord

__all__ = ["EnforcementPoint"]


class EnforcementPoint:
    """Enforce decisions: audit, alert, and record observed movements.

    Parameters
    ----------
    decision_point:
        The PDP consulted for every enforcement.
    monitor:
        The continuous movement monitor fed by ``observe_entry``/``observe_exit``.
    movement_db:
        The movement database (read back for audit records after an
        observation).
    audit:
        Audit log; created when omitted.
    alerts:
        Alert sink for denied-request alerts; created when omitted.
    """

    def __init__(
        self,
        decision_point: DecisionPoint,
        monitor: "MovementMonitor",
        movement_db: "MovementDatabase",
        *,
        audit: Optional[AuditLog] = None,
        alerts: Optional[AlertSink] = None,
    ) -> None:
        self._pdp = decision_point
        self._monitor = monitor
        self._movement_db = movement_db
        self._audit = audit if audit is not None else AuditLog()
        self._alerts = alerts if alerts is not None else AlertSink()

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #
    @property
    def decision_point(self) -> DecisionPoint:
        """The PDP this PEP enforces."""
        return self._pdp

    @property
    def audit(self) -> AuditLog:
        """The audit log this PEP writes."""
        return self._audit

    @property
    def alert_sink(self) -> AlertSink:
        """The sink receiving denied-request alerts."""
        return self._alerts

    # ------------------------------------------------------------------ #
    # Enforcement
    # ------------------------------------------------------------------ #
    def enforce(self, request: AccessRequest) -> Decision:
        """Decide *request*, audit the outcome, and alert on denial."""
        decision = self._pdp.decide(request)
        return self._record(decision)

    def enforce_many(self, requests: Iterable[AccessRequest]) -> List[Decision]:
        """Batch :meth:`enforce`: decide via the batch PDP path, then audit each."""
        decisions = self._pdp.decide_many(requests)
        for decision in decisions:
            self._record(decision)
        return decisions

    def enforce_and_enter(self, request: AccessRequest) -> Decision:
        """Enforce *request* and, when granted, record the entry observation."""
        decision = self.enforce(request)
        if decision.granted:
            self.observe_entry(request.time, request.subject, request.location)
        return decision

    def attest(self, decision: Decision, *, cached_generation=None) -> Decision:
        """Audit an already-computed decision exactly as :meth:`enforce` would.

        The network server's ``enforce`` op serves repeated requests from
        its decision cache; an audited deployment must still see **every**
        enforcement in the log, so a cache hit is re-audited here — the
        decision entry plus, with *cached_generation*, a ``CACHED`` note
        naming the invalidation-generation token the entry was computed
        under.  An auditor can thereby distinguish a freshly evaluated
        decision from a re-served one and tell exactly which invalidation
        era produced it.  Denials re-emit their alert too: each enforcement
        of a denied request is an event the guards should see, cached or
        not.
        """
        self._record(decision)
        if cached_generation is not None:
            request = decision.request
            self._audit.record_note(
                request.time,
                request.subject,
                f"CACHED decision for {request.location!r} re-served from cache "
                f"generation {tuple(cached_generation)!r}",
            )
        return decision

    def _record(self, decision: Decision) -> Decision:
        self._audit.record_decision(decision)
        if not decision.granted:
            request = decision.request
            alert = self._alerts.emit(
                Alert(
                    request.time,
                    AlertKind.DENIED_REQUEST,
                    request.subject,
                    request.location,
                    str(decision.reason),
                )
            )
            self._audit.record_alert(alert)
        return decision

    # ------------------------------------------------------------------ #
    # Movement observation (continuous monitoring)
    # ------------------------------------------------------------------ #
    def observe_entry(self, time: int, subject: str, location: str) -> List[Alert]:
        """Record that *subject* was observed entering *location* at *time*."""
        alerts = self._monitor.observe_entry(time, subject, location)
        self._audit_movement(time, subject, location)
        for alert in alerts:
            self._audit.record_alert(alert)
        return alerts

    def observe_exit(self, time: int, subject: str, location: str) -> List[Alert]:
        """Record that *subject* was observed leaving *location* at *time*."""
        alerts = self._monitor.observe_exit(time, subject, location)
        self._audit_movement(time, subject, location)
        for alert in alerts:
            self._audit.record_alert(alert)
        return alerts

    def observe_many(self, records: Iterable["MovementRecord"]) -> List[Alert]:
        """Batch observation path: one storage transaction for the whole trace.

        Audit entries are written only after the batch commits (movements
        first, then alerts): if a mid-batch failure rolls the transaction
        back, the audit log never attests to movements that were undone —
        the per-record path does not need this because each observation
        commits before it is audited.
        """
        observed: List["MovementRecord"] = []
        alerts = self._monitor.observe_many(records, on_record=observed.append)
        for record in observed:
            self._audit.record_movement(record)
        for alert in alerts:
            self._audit.record_alert(alert)
        return alerts

    def ingestor(
        self,
        *,
        batch_size: int = DEFAULT_BATCH_SIZE,
        max_latency: float = DEFAULT_MAX_LATENCY,
        queue_size: int = DEFAULT_QUEUE_SIZE,
        checkpoint_policy: Optional[CheckpointPolicy] = None,
    ) -> MovementIngestor:
        """A streaming observe path: queue-fed group commits into this PEP.

        The returned :class:`~repro.storage.ingest.MovementIngestor` feeds
        :meth:`observe_many` from a background writer — tracker adapters
        ``submit()`` records at line rate and batches land as one storage
        transaction each (flushed by size or by ``max_latency``), with the
        monitor's alerting and the audit trail intact.  Close the ingestor
        (or use it as a context manager) to flush everything accepted.

        With a :class:`~repro.storage.ingest.CheckpointPolicy`, the writer
        thread additionally checkpoints the movement database every N
        written events and/or M seconds (compaction + archive retention per
        the policy) — between batches, never inside one.
        """
        knobs = {
            "batch_size": batch_size,
            "max_latency": max_latency,
            "queue_size": queue_size,
        }
        if checkpoint_policy is not None:
            knobs["checkpoint_policy"] = checkpoint_policy
            # The alert sink rides along so archive prunes retire the alerts
            # of the pruned era (VIOLATIONS never outlives its movements).
            knobs["checkpoint"] = checkpoint_policy.bound(self._movement_db, self._alerts)
        return MovementIngestor(self.observe_many, **knobs)

    def _audit_movement(self, time: int, subject: str, location: str) -> None:
        """Audit the latest movement record, tolerating an empty history.

        A movement database may legitimately have recorded nothing (a
        filtering or sampling backend, a replica that dropped the write); the
        seed engine crashed with ``IndexError`` here.  The miss itself is
        worth auditing, so it is recorded as a note instead.

        The read is the O(1) ``last_movement`` projection lookup, not a
        history scan — this runs on every observation, making it the
        hottest read of the enforcement path.
        """
        last = self._movement_db.last_movement(subject, location)
        if last is not None:
            self._audit.record_movement(last)
        else:
            self._audit.record_note(
                time,
                subject_name(subject),
                f"movement observed at {location_name(location)!r} "
                "but the movement database recorded nothing for it",
            )
