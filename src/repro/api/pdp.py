"""The Policy Decision Point: pipeline evaluation and batch decisions.

:class:`DecisionPoint` is the XACML-style PDP of the redesigned API.  It owns
an ordered pipeline of :class:`~repro.api.stages.DecisionStage` objects and
evaluates access requests against them, producing
:class:`~repro.api.decision.Decision` objects whose traces name the stage
that granted or denied each request.  It performs **no side effects** — audit
and alerting belong to the :class:`~repro.api.pep.EnforcementPoint`.

Attribute access is abstracted behind a :class:`PolicyInformationPoint` (the
XACML PIP): the stages never see the databases directly, only the lookup
functions.  That indirection is what makes the batch API fast —
:meth:`DecisionPoint.decide_many` evaluates a whole request list against a
memoizing snapshot of the PIP, so candidate lookups and entry-count scans are
shared across all requests that touch the same ``(subject, location)`` pair.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import EnforcementError
from repro.core.authorization import UNLIMITED_ENTRIES, LocationTemporalAuthorization
from repro.core.requests import AccessRequest, DenialReason
from repro.temporal.interval import TimeInterval
from repro.api.decision import Decision, StageOutcome, StageResult
from repro.api.stages import (
    CandidateLookupStage,
    DecisionStage,
    EntryBudgetStage,
    EntryWindowStage,
    EvaluationContext,
    KnownLocationStage,
    default_pipeline,
)

__all__ = ["PolicyInformationPoint", "DecisionPoint"]


# The service layer's telemetry is bound lazily at first use: the API layer
# must not import :mod:`repro.service` at module time (the service package
# imports the API back), and an embedded engine that never traces pays one
# cached-global check per evaluation, nothing more.
_trace_span = None
_trace_event = None


def _bind_telemetry() -> None:
    global _trace_span, _trace_event
    from repro.service.telemetry import trace_event, trace_span

    _trace_span = trace_span
    _trace_event = trace_event


def _pipeline_span(name: str, **meta):
    if _trace_span is None:
        _bind_telemetry()
    return _trace_span(name, **meta)


def _pipeline_event(name: str, **meta) -> None:
    if _trace_event is None:
        _bind_telemetry()
    _trace_event(name, **meta)


class PolicyInformationPoint:
    """The attribute services the decision stages consult (XACML's PIP).

    Parameters
    ----------
    is_primitive:
        ``location -> bool`` — membership in the protected hierarchy.
    candidates_for:
        ``(subject, location) -> sequence of authorizations``.
    entry_count:
        ``(subject, location, window) -> int`` — entries consumed within a
        window (Definition 7's counter).
    capacity_of:
        ``location -> Optional[int]`` — configured occupancy limit, if any.
    occupancy_of:
        ``location -> int`` — current number of occupants.
    enterable_candidates:
        ``(subject, location, time) -> sequence of authorizations`` whose
        entry duration contains *time*, in the same storage order
        ``candidates_for`` uses — the time-first lookup
        :class:`~repro.api.stages.CandidateLookupStage` can use to skip
        expired grants.  ``None`` when the attribute source cannot answer
        time-first queries (stages fall back to ``candidates_for``).
    """

    __slots__ = (
        "is_primitive",
        "candidates_for",
        "entry_count",
        "capacity_of",
        "occupancy_of",
        "enterable_candidates",
    )

    def __init__(
        self,
        *,
        is_primitive: Callable[[str], bool],
        candidates_for: Callable[[str, str], Sequence[LocationTemporalAuthorization]],
        entry_count: Callable[[str, str, TimeInterval], int],
        capacity_of: Optional[Callable[[str], Optional[int]]] = None,
        occupancy_of: Optional[Callable[[str], int]] = None,
        enterable_candidates: Optional[
            Callable[[str, str, int], Sequence[LocationTemporalAuthorization]]
        ] = None,
    ) -> None:
        self.is_primitive = is_primitive
        self.candidates_for = candidates_for
        self.entry_count = entry_count
        self.capacity_of = capacity_of if capacity_of is not None else lambda location: None
        self.occupancy_of = occupancy_of if occupancy_of is not None else lambda location: 0
        self.enterable_candidates = enterable_candidates

    @classmethod
    def for_components(
        cls,
        hierarchy,
        authorization_db,
        movement_db,
        *,
        capacity_of: Optional[Callable[[str], Optional[int]]] = None,
        occupancy_of: Optional[Callable[[str], int]] = None,
    ) -> "PolicyInformationPoint":
        """Wire a PIP from the hierarchy and the Figure 3 databases.

        Every movement-database lookup goes through the backend's
        event-indexed :class:`~repro.storage.occupancy.OccupancyService`
        projection: ``entry_count`` is O(1) unwindowed / O(log n) windowed,
        and ``occupancy_of`` defaults to the O(1) occupancy counter instead
        of materializing (and counting) the occupant list.
        """
        occupancy_counter = getattr(movement_db, "occupancy", None)
        if occupancy_of is None:
            if callable(occupancy_counter):
                occupancy_of = occupancy_counter
            else:  # duck-typed movement stores without the O(1) counter
                occupancy_of = lambda location: len(movement_db.occupants(location))
        enterable_candidates = None
        enterable_at = getattr(authorization_db, "enterable_at", None)
        if callable(enterable_at):
            enterable_candidates = lambda subject, location, time: enterable_at(
                time, subject=subject, location=location
            )
        return cls(
            is_primitive=hierarchy.is_primitive,
            candidates_for=authorization_db.for_subject_location,
            entry_count=movement_db.entry_count,
            capacity_of=capacity_of,
            occupancy_of=occupancy_of,
            enterable_candidates=enterable_candidates,
        )

    def cached(self) -> "PolicyInformationPoint":
        """A memoizing snapshot of this PIP for batch evaluation.

        Safe only while the underlying databases do not change — decisions
        are pure, so a batch of them satisfies that by construction.
        """
        base = self
        primitive_cache: Dict[str, bool] = {}
        candidate_cache: Dict[Tuple[str, str], Sequence[LocationTemporalAuthorization]] = {}
        count_cache: Dict[Tuple[str, str, TimeInterval], int] = {}
        occupancy_cache: Dict[str, int] = {}

        def is_primitive(location: str) -> bool:
            try:
                return primitive_cache[location]
            except KeyError:
                primitive_cache[location] = result = base.is_primitive(location)
                return result

        def candidates_for(subject: str, location: str) -> Sequence[LocationTemporalAuthorization]:
            key = (subject, location)
            try:
                return candidate_cache[key]
            except KeyError:
                candidate_cache[key] = result = tuple(base.candidates_for(subject, location))
                return result

        def entry_count(subject: str, location: str, window: TimeInterval) -> int:
            key = (subject, location, window)
            try:
                return count_cache[key]
            except KeyError:
                count_cache[key] = result = base.entry_count(subject, location, window)
                return result

        def occupancy_of(location: str) -> int:
            try:
                return occupancy_cache[location]
            except KeyError:
                occupancy_cache[location] = result = base.occupancy_of(location)
                return result

        enterable_candidates = None
        if base.enterable_candidates is not None:
            enterable_cache: Dict[
                Tuple[str, str, int], Sequence[LocationTemporalAuthorization]
            ] = {}
            base_enterable = base.enterable_candidates

            def enterable_candidates(
                subject: str, location: str, time: int
            ) -> Sequence[LocationTemporalAuthorization]:
                key = (subject, location, time)
                try:
                    return enterable_cache[key]
                except KeyError:
                    enterable_cache[key] = result = tuple(base_enterable(subject, location, time))
                    return result

        return PolicyInformationPoint(
            is_primitive=is_primitive,
            candidates_for=candidates_for,
            entry_count=entry_count,
            capacity_of=base.capacity_of,
            occupancy_of=occupancy_of,
            enterable_candidates=enterable_candidates,
        )


class DecisionPoint:
    """Evaluate access requests through an ordered, pluggable stage pipeline.

    Parameters
    ----------
    info:
        The :class:`PolicyInformationPoint` supplying attributes to stages.
    stages:
        The pipeline, in evaluation order; defaults to the classic
        Definition 7 pipeline of :func:`~repro.api.stages.default_pipeline`.
        The final stage must produce a GRANT or DENY for every request.
    """

    def __init__(
        self,
        info: PolicyInformationPoint,
        stages: Optional[Sequence[DecisionStage]] = None,
        *,
        cache=None,
    ) -> None:
        self._info = info
        self._cache = cache
        self._stages: Tuple[DecisionStage, ...] = (
            tuple(stages) if stages is not None else default_pipeline()
        )
        if not self._stages:
            raise EnforcementError("a decision pipeline needs at least one stage")
        for stage in self._stages:
            if not hasattr(stage, "name") or not callable(getattr(stage, "evaluate", None)):
                raise EnforcementError(
                    f"{stage!r} is not a decision stage (needs a .name and an evaluate(context) method)"
                )
        # The trace-free fast path only applies to the classic pipeline
        # shape (exact stage types, in order) — anything custom falls back
        # to the traced evaluator, whose semantics are the definition.
        self._lean_shape = (
            len(self._stages) == 4
            and type(self._stages[0]) is KnownLocationStage
            and type(self._stages[1]) is CandidateLookupStage
            and type(self._stages[2]) is EntryWindowStage
            and type(self._stages[3]) is EntryBudgetStage
        )
        self._lean_time_first = bool(
            self._lean_shape and self._stages[1].time_first  # type: ignore[union-attr]
        )

    @classmethod
    def for_components(
        cls,
        hierarchy,
        authorization_db,
        movement_db,
        *,
        stages: Optional[Sequence[DecisionStage]] = None,
        capacity_of: Optional[Callable[[str], Optional[int]]] = None,
        occupancy_of: Optional[Callable[[str], int]] = None,
    ) -> "DecisionPoint":
        """Build a PDP directly from the hierarchy and databases."""
        info = PolicyInformationPoint.for_components(
            hierarchy,
            authorization_db,
            movement_db,
            capacity_of=capacity_of,
            occupancy_of=occupancy_of,
        )
        return cls(info, stages)

    @property
    def stages(self) -> Tuple[DecisionStage, ...]:
        """The pipeline, in evaluation order."""
        return self._stages

    @property
    def info(self) -> PolicyInformationPoint:
        """The policy-information point backing this PDP."""
        return self._info

    # ------------------------------------------------------------------ #
    # Decision cache hook points
    # ------------------------------------------------------------------ #
    @property
    def cache(self):
        """The attached decision cache, or ``None``."""
        return self._cache

    def attach_cache(self, cache):
        """Attach a decision cache consulted by :meth:`decide`/:meth:`decide_many`.

        *cache* is duck-typed: it needs ``lookup(request) -> Optional[Decision]``
        and ``store(request, decision)`` (plus, for the administrative
        invalidation hooks, ``invalidate_pair``/``invalidate_location``/
        ``clear``) — :class:`repro.service.cache.DecisionCache` is the
        reference implementation.  The caller owns invalidation: connect the
        cache to the movement database's mutation notifications (or accept
        stale decisions).  Returns the cache for chaining.
        """
        self._cache = cache
        return cache

    def detach_cache(self):
        """Detach and return the decision cache (``None`` when absent)."""
        cache, self._cache = self._cache, None
        return cache

    def invalidate_cached(self, subject: Optional[str] = None, location: Optional[str] = None) -> int:
        """Evict cached decisions after an administrative mutation.

        With a (subject, location) pair, only that pair's keys; with just a
        location, every key of the location; with neither, everything.
        No-op (0) without an attached cache.
        """
        cache = self._cache
        if cache is None:
            return 0
        if location is None:
            return cache.clear()
        if subject is None:
            return cache.invalidate_location(location)
        return cache.invalidate_pair(subject, location)

    # ------------------------------------------------------------------ #
    # Evaluation
    # ------------------------------------------------------------------ #
    def decide(
        self,
        request: AccessRequest,
        *,
        info: Optional[PolicyInformationPoint] = None,
        trace: bool = True,
    ) -> Decision:
        """Evaluate one request; pure (no audit, no alerts, no recording).

        With an attached cache (and no explicit *info* snapshot) a repeated
        key is answered from the cache — the returned decision is the one
        computed for the equal earlier request, traces and all.

        ``trace=False`` permits (but does not require) a trace-free
        evaluation: on the classic pipeline shape the stage objects are
        bypassed entirely and the decision comes back with an empty trace —
        same grant/deny, same reason, same admitting authorization, same
        entry counts, none of the per-stage bookkeeping.  Custom pipelines
        (and cache-priming misses, whose stored entry must keep its trace)
        still evaluate traced.
        """
        cache = self._cache
        token = None
        flight = None
        if cache is not None and info is None:
            cached = cache.lookup(request)
            if cached is not None:
                return cached
            # Single-flight the miss (when the cache supports it): N
            # concurrent identical misses — a cold cache's thundering herd —
            # elect one leader that runs the pipeline while the others wait
            # for its store and re-read the cache.
            claim = getattr(cache, "flight", None)
            if callable(claim):
                flight = claim(request.subject, request.location, request.time)
                if not flight.leader:
                    flight.wait()
                    cached = cache.lookup(request)
                    if cached is not None:
                        return cached
                    # The leader died or its store raced an invalidation and
                    # was dropped: evaluate ourselves rather than livelock.
                    flight = None
            # Capture the invalidation token BEFORE evaluating: a mutation
            # landing mid-evaluation must make the store a no-op, or a
            # decision computed from pre-mutation state would be cached
            # after its eviction already ran.
            token = self._generation_token(cache, request)
            # The primed entry serves later trace=True callers too — a
            # cache miss always evaluates traced.
            trace = True
        try:
            active = info if info is not None else self._info
            if trace or not self._lean_shape:
                with _pipeline_span("pipeline.evaluate"):
                    decision = self._evaluate(request, active)
            else:
                with _pipeline_span("pipeline.lean"):
                    decision = self._evaluate_lean(request, active)
            if cache is not None and info is None:
                self._store_cached(cache, request, decision, token)
        finally:
            if flight is not None:
                # Leader only: wake the followers whether the store landed,
                # was generation-dropped, or the evaluation raised.
                flight.done()
        return decision

    @staticmethod
    def _generation_token(cache, request: AccessRequest):
        generation_of = getattr(cache, "generation", None)
        return generation_of(request.location) if callable(generation_of) else None

    @staticmethod
    def _store_cached(cache, request: AccessRequest, decision: Decision, token) -> None:
        if token is not None:
            cache.store(request, decision, generation=token)
        else:  # duck-typed caches without invalidation generations
            cache.store(request, decision)

    def _evaluate(self, request: AccessRequest, active: PolicyInformationPoint) -> Decision:
        context = EvaluationContext(request, active)
        trace: List[StageResult] = []
        for stage in self._stages:
            result = stage.evaluate(context)
            trace.append(result)
            _pipeline_event("pipeline.stage", stage=result.stage, outcome=result.outcome.value)
            if result.outcome is StageOutcome.GRANT:
                return Decision.granted_by(
                    request,
                    result.authorization,
                    entries_used=result.entries_used,
                    trace=tuple(trace),
                )
            if result.outcome is StageOutcome.DENY:
                return Decision.denied_by(
                    request,
                    result.reason if result.reason is not None else DenialReason.NO_AUTHORIZATION,
                    entries_used=result.entries_used,
                    trace=tuple(trace),
                )
        raise EnforcementError(
            f"decision pipeline fell through without a verdict for {request} — "
            "the final stage must GRANT or DENY every request it sees"
        )

    def _evaluate_lean(
        self, request: AccessRequest, active: PolicyInformationPoint
    ) -> Decision:
        """The classic pipeline without its per-stage bookkeeping.

        Mirrors KnownLocation → CandidateLookup → EntryWindow → EntryBudget
        exactly (including the time-first lookup's denial-reason-preserving
        fallback) but builds no :class:`StageResult` objects and no detail
        strings — the serving fleet's trace-elided hot path.  Parity with
        the traced evaluator is asserted by the wire test suite.
        """
        subject, location, time = request.subject, request.location, request.time
        if not active.is_primitive(location):
            return Decision.denied_by(request, DenialReason.UNKNOWN_LOCATION)
        admissible: Optional[Sequence[LocationTemporalAuthorization]] = None
        if self._lean_time_first and active.enterable_candidates is not None:
            admissible = active.enterable_candidates(subject, location, time)
            if not admissible:
                if active.candidates_for(subject, location):
                    return Decision.denied_by(request, DenialReason.OUTSIDE_ENTRY_DURATION)
                return Decision.denied_by(request, DenialReason.NO_AUTHORIZATION)
        if admissible is None:
            candidates = active.candidates_for(subject, location)
            if not candidates:
                return Decision.denied_by(request, DenialReason.NO_AUTHORIZATION)
            admissible = [auth for auth in candidates if auth.permits_entry_at(time)]
            if not admissible:
                return Decision.denied_by(request, DenialReason.OUTSIDE_ENTRY_DURATION)
        entry_count = active.entry_count
        exhausted_used = 0
        for authorization in admissible:
            used = entry_count(subject, location, authorization.entry_duration)
            remaining = authorization.entries_remaining(used)
            if remaining is UNLIMITED_ENTRIES or int(remaining) > 0:
                return Decision.granted_by(request, authorization, entries_used=used)
            if used > exhausted_used:
                exhausted_used = used
        return Decision.denied_by(
            request, DenialReason.ENTRY_LIMIT_EXHAUSTED, entries_used=exhausted_used
        )

    def decide_many(
        self, requests: Iterable[AccessRequest], *, trace: bool = True
    ) -> List[Decision]:
        """Evaluate a batch of requests, sharing lookups across the batch.

        The whole batch is evaluated against one memoizing PIP snapshot, so
        every candidate lookup and entry-count scan is performed once per
        distinct key instead of once per request.  Decisions are returned in
        request order and are identical to what per-request :meth:`decide`
        calls would produce.  With an attached cache, hits are served first
        and only the misses run the pipeline (against one shared snapshot).
        ``trace=False`` enables the trace-free fast path of :meth:`decide`
        on cache-less evaluation (cache-priming misses stay traced).
        """
        requests = list(requests)
        cache = self._cache
        if cache is None:
            info = self._info.cached()
            return [self.decide(request, info=info, trace=trace) for request in requests]
        decisions: List[Optional[Decision]] = [None] * len(requests)
        misses: List[int] = []
        for index, request in enumerate(requests):
            cached = cache.lookup(request)
            if cached is not None:
                decisions[index] = cached
            else:
                misses.append(index)
        if misses:
            # Tokens for every miss are captured before the memoizing
            # snapshot is built: the snapshot may read any miss's state at
            # any point of the loop below.
            tokens = {
                index: self._generation_token(cache, requests[index]) for index in misses
            }
            info = self._info.cached()
            with _pipeline_span("pipeline.evaluate_many", misses=len(misses)):
                for index in misses:
                    decision = self._evaluate(requests[index], info)
                    self._store_cached(cache, requests[index], decision, tokens[index])
                    decisions[index] = decision
        return decisions  # type: ignore[return-value]
