"""Decisions with per-stage evaluation traces.

The decision pipeline (:mod:`repro.api.pdp`) evaluates an access request by
running it through an ordered list of stages.  Each stage reports a
:class:`StageResult`; the sequence of results forms the **trace** of the
final :class:`Decision`, so every grant or denial can be explained by naming
the stage that produced it (XACML-style explainability on top of the paper's
Definition 7).

:class:`Decision` subclasses the seed's
:class:`~repro.core.requests.AccessDecision`, so everything that consumed an
``AccessDecision`` (the audit log, the query engine, the benchmarks) keeps
working unchanged while new callers can inspect ``decision.trace``.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional, Tuple

from repro.core.authorization import LocationTemporalAuthorization
from repro.core.requests import AccessDecision, AccessRequest, DenialReason

__all__ = ["StageOutcome", "StageResult", "Decision"]


class StageOutcome(str, Enum):
    """What a pipeline stage concluded about the request."""

    #: The stage authorizes the request; evaluation stops with a grant.
    GRANT = "grant"
    #: The stage rejects the request; evaluation stops with a denial.
    DENY = "deny"
    #: The stage passed; evaluation continues with the next stage.
    CONTINUE = "continue"
    #: The stage does not apply to this request (e.g. no capacity configured).
    SKIP = "skip"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class StageResult:
    """One stage's verdict, kept in the decision trace.

    Parameters
    ----------
    stage:
        Name of the stage that produced this result.
    outcome:
        The stage's verdict.
    detail:
        Human-readable explanation of the verdict.
    reason:
        The denial reason when ``outcome`` is :data:`StageOutcome.DENY`.
    authorization:
        The admitting authorization when ``outcome`` is
        :data:`StageOutcome.GRANT`.
    entries_used:
        Entry count consumed under the matching authorization (grant), or the
        largest count seen among exhausted candidates (denial).
    """

    stage: str
    outcome: StageOutcome
    detail: str = ""
    reason: Optional[DenialReason] = None
    authorization: Optional[LocationTemporalAuthorization] = None
    entries_used: int = 0

    def __str__(self) -> str:
        suffix = f": {self.detail}" if self.detail else ""
        return f"[{self.stage}] {self.outcome.value}{suffix}"


@dataclass(frozen=True)
class Decision(AccessDecision):
    """An :class:`~repro.core.requests.AccessDecision` with a per-stage trace.

    ``Decision`` is substitutable anywhere an ``AccessDecision`` is expected;
    the extra ``trace`` records, in evaluation order, what every pipeline
    stage concluded, ending with the stage that granted or denied.
    """

    trace: Tuple[StageResult, ...] = ()

    @property
    def deciding_stage(self) -> Optional[str]:
        """Name of the stage that granted or denied the request."""
        for result in reversed(self.trace):
            if result.outcome in (StageOutcome.GRANT, StageOutcome.DENY):
                return result.stage
        return None

    def explain(self) -> str:
        """Multi-line rendering of the decision and its trace."""
        header = str(self)
        if not self.trace:
            return header
        lines = [header]
        lines.extend(f"  {result}" for result in self.trace)
        return "\n".join(lines)

    @classmethod
    def granted_by(
        cls,
        request: AccessRequest,
        authorization: LocationTemporalAuthorization,
        *,
        entries_used: int = 0,
        trace: Tuple[StageResult, ...] = (),
    ) -> "Decision":
        """Build a granting decision carrying *trace*."""
        return cls(request, True, authorization, None, entries_used, trace)

    @classmethod
    def denied_by(
        cls,
        request: AccessRequest,
        reason: DenialReason,
        *,
        entries_used: int = 0,
        trace: Tuple[StageResult, ...] = (),
    ) -> "Decision":
        """Build a denying decision carrying *trace*."""
        return cls(request, False, None, reason, entries_used, trace)
