"""repro — a reproduction of LTAM: A Location-Temporal Authorization Model.

Yu & Lim, Secure Data Management (SDM 2004), VLDB 2004 Workshop, LNCS 3178.

The package is organised as described in DESIGN.md:

* :mod:`repro.temporal` — chronons, time intervals, interval sets, calendars;
* :mod:`repro.locations` — location graphs, multilevel graphs, routes, layouts;
* :mod:`repro.spatial` — geometry, boundaries, simulated positioning;
* :mod:`repro.core` — authorizations, rules, derivation, conflicts,
  grant durations, the inaccessible-location algorithm;
* :mod:`repro.storage` — the authorization, movement and profile databases;
* :mod:`repro.engine` — the access-control engine, movement monitor, alerts,
  audit log and query engine;
* :mod:`repro.privacy` — location-privacy policies and anonymization;
* :mod:`repro.simulation` — synthetic buildings, workloads and movement traces;
* :mod:`repro.baselines` — card-reader, TAM and brute-force baselines;
* :mod:`repro.analysis` — reachability matrices and violation reports;
* :mod:`repro.paper` — the paper's worked examples as fixtures.

The most common entry points are re-exported here.
"""

from repro.core import (
    AccessRequest,
    AccessDecision,
    AuthorizationRule,
    DenialReason,
    LocationAuthorization,
    LocationTemporalAuthorization,
    OperatorTuple,
    Subject,
    SubjectDirectory,
    UNLIMITED_ENTRIES,
    authorize_route,
    find_inaccessible,
)
from repro.engine import AccessControlEngine, AlertKind, QueryEngine
from repro.locations import (
    LocationGraph,
    LocationGraphBuilder,
    LocationHierarchy,
    MultilevelGraphBuilder,
    MultilevelLocationGraph,
    Route,
    find_route,
    ntu_campus_hierarchy,
)
from repro.temporal import FOREVER, Clock, IntervalSet, TimeInterval

__version__ = "0.1.0"

__all__ = [
    "__version__",
    # temporal
    "FOREVER",
    "Clock",
    "TimeInterval",
    "IntervalSet",
    # locations
    "LocationGraph",
    "MultilevelLocationGraph",
    "LocationHierarchy",
    "LocationGraphBuilder",
    "MultilevelGraphBuilder",
    "Route",
    "find_route",
    "ntu_campus_hierarchy",
    # core
    "Subject",
    "SubjectDirectory",
    "LocationAuthorization",
    "LocationTemporalAuthorization",
    "UNLIMITED_ENTRIES",
    "AccessRequest",
    "AccessDecision",
    "DenialReason",
    "AuthorizationRule",
    "OperatorTuple",
    "authorize_route",
    "find_inaccessible",
    # engine
    "AccessControlEngine",
    "AlertKind",
    "QueryEngine",
]
