"""repro — a reproduction of LTAM: A Location-Temporal Authorization Model.

Yu & Lim, Secure Data Management (SDM 2004), VLDB 2004 Workshop, LNCS 3178.

The public entry point is :mod:`repro.api`, which splits Figure 3's access
control engine XACML-style:

* :class:`~repro.api.pdp.DecisionPoint` (PDP) evaluates access requests
  through an ordered, pluggable pipeline of decision stages
  (known-location, candidate-lookup, entry-window, entry-budget, plus
  extension stages for capacity limits and conflict resolution); every
  :class:`~repro.api.decision.Decision` carries a per-stage trace naming
  the stage that granted or denied it.
* :class:`~repro.api.pep.EnforcementPoint` (PEP) owns the side effects:
  audit entries, denial alerts, and movement observations feeding the
  continuous monitor.
* :class:`~repro.api.builder.Ltam` composes both over the Figure 3
  databases, built fluently::

      from repro.api import Ltam, grant

      engine = Ltam.builder().hierarchy(campus).backend("sqlite", path).build()
      engine.grant(grant("alice").at("meeting-room").during(9, 17).entries(3))
      decision = engine.decide((10, "alice", "meeting-room"))
      decisions = engine.decide_many(requests)   # batched, shared lookups

The seed's :class:`~repro.engine.access_control.AccessControlEngine` remains
as a thin shim over :class:`~repro.api.builder.Ltam` — ``check_request`` is
now ``decide``, ``request_access`` is ``enforce``, ``request_and_enter`` is
``enforce_and_enter`` (see its module docstring for the migration table).

Supporting packages, as described in DESIGN.md:

* :mod:`repro.temporal` — chronons, time intervals, interval sets, calendars;
* :mod:`repro.locations` — location graphs, multilevel graphs, routes, layouts;
* :mod:`repro.spatial` — geometry, boundaries, simulated positioning;
* :mod:`repro.core` — authorizations, rules, derivation, conflicts,
  grant durations, the inaccessible-location algorithm;
* :mod:`repro.storage` — the authorization, movement and profile databases;
* :mod:`repro.api` — the PDP/PEP decision pipeline and fluent builders;
* :mod:`repro.service` — the network boundary: an asyncio authorization
  server with a decision cache, remote PDP/PEP clients, and the NDJSON
  wire codec (``repro serve`` on the CLI);
* :mod:`repro.engine` — monitor, alerts, audit log, query engine, and the
  backwards-compatible access-control engine;
* :mod:`repro.privacy` — location-privacy policies and anonymization;
* :mod:`repro.simulation` — synthetic buildings, workloads and movement traces;
* :mod:`repro.baselines` — card-reader, TAM and brute-force baselines;
* :mod:`repro.analysis` — reachability matrices and violation reports;
* :mod:`repro.paper` — the paper's worked examples as fixtures.

The most common entry points are re-exported here.
"""

from repro.core import (
    AccessRequest,
    AccessDecision,
    AuthorizationRule,
    DenialReason,
    LocationAuthorization,
    LocationTemporalAuthorization,
    OperatorTuple,
    Subject,
    SubjectDirectory,
    UNLIMITED_ENTRIES,
    authorize_route,
    find_inaccessible,
)
from repro.api import (
    Decision,
    DecisionPoint,
    EnforcementPoint,
    Ltam,
    grant,
)
from repro.engine import AccessControlEngine, AlertKind, QueryEngine
from repro.locations import (
    LocationGraph,
    LocationGraphBuilder,
    LocationHierarchy,
    MultilevelGraphBuilder,
    MultilevelLocationGraph,
    Route,
    find_route,
    ntu_campus_hierarchy,
)
from repro.temporal import FOREVER, Clock, IntervalSet, TimeInterval

__version__ = "0.2.0"

__all__ = [
    "__version__",
    # temporal
    "FOREVER",
    "Clock",
    "TimeInterval",
    "IntervalSet",
    # locations
    "LocationGraph",
    "MultilevelLocationGraph",
    "LocationHierarchy",
    "LocationGraphBuilder",
    "MultilevelGraphBuilder",
    "Route",
    "find_route",
    "ntu_campus_hierarchy",
    # core
    "Subject",
    "SubjectDirectory",
    "LocationAuthorization",
    "LocationTemporalAuthorization",
    "UNLIMITED_ENTRIES",
    "AccessRequest",
    "AccessDecision",
    "DenialReason",
    "AuthorizationRule",
    "OperatorTuple",
    "authorize_route",
    "find_inaccessible",
    # api (PDP/PEP)
    "Ltam",
    "Decision",
    "DecisionPoint",
    "EnforcementPoint",
    "grant",
    # engine
    "AccessControlEngine",
    "AlertKind",
    "QueryEngine",
]
