"""Authorization and access-request workload generators.

The paper publishes no workloads; the benchmarks therefore generate synthetic
authorization databases and request streams with seeded randomness.  The
generator aims for realism along the dimensions that matter to the algorithms
under test:

* every subject gets authorizations on the entry locations (otherwise nothing
  is reachable and Algorithm 1 degenerates),
* interior locations are authorized with a configurable coverage fraction,
* entry windows are placed inside a bounded horizon, exit windows extend the
  entry window by a dwell allowance (respecting Definition 4's constraints),
* entry budgets are small integers or unlimited.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.errors import SimulationError
from repro.core.authorization import UNLIMITED_ENTRIES, LocationTemporalAuthorization
from repro.core.requests import AccessRequest
from repro.locations.multilevel import LocationHierarchy
from repro.storage.movement_db import MovementKind, MovementRecord
from repro.storage.sharding import stable_hash

__all__ = ["WorkloadConfig", "AuthorizationWorkloadGenerator", "generate_subjects"]


def generate_subjects(count: int, *, prefix: str = "user") -> List[str]:
    """Generate *count* subject names (``user-000``, ``user-001``, …)."""
    if count < 0:
        raise SimulationError(f"subject count must be non-negative, got {count}")
    width = max(3, len(str(max(count - 1, 0))))
    return [f"{prefix}-{index:0{width}d}" for index in range(count)]


@dataclass(frozen=True)
class WorkloadConfig:
    """Parameters of the synthetic authorization workload.

    Parameters
    ----------
    horizon:
        Length of the simulated period in chronons; every entry window starts
        inside ``[0, horizon)``.
    coverage:
        Fraction of non-entry locations each subject is authorized for.
    window_length:
        Maximum length of an entry window (lengths are drawn uniformly from
        ``[1, window_length]``).
    dwell_allowance:
        How far beyond the entry window the exit window may extend.
    max_entries:
        Upper bound of the per-authorization entry budget.
    unlimited_fraction:
        Fraction of authorizations that get an unlimited entry budget.
    wide_open_entries:
        When ``True``, entry windows on entry locations span the whole
        horizon, which keeps the building broadly reachable (useful for the
        enforcement benchmarks); when ``False`` entry locations are treated
        like interior ones (more inaccessible locations — stressing
        Algorithm 1).
    """

    horizon: int = 1_000
    coverage: float = 0.8
    window_length: int = 200
    dwell_allowance: int = 100
    max_entries: int = 3
    unlimited_fraction: float = 0.2
    wide_open_entries: bool = True

    def __post_init__(self) -> None:
        if self.horizon <= 0:
            raise SimulationError("horizon must be positive")
        if not 0.0 <= self.coverage <= 1.0:
            raise SimulationError("coverage must lie in [0, 1]")
        if self.window_length <= 0 or self.dwell_allowance < 0:
            raise SimulationError("window_length must be positive and dwell_allowance non-negative")
        if self.max_entries < 1:
            raise SimulationError("max_entries must be at least 1")
        if not 0.0 <= self.unlimited_fraction <= 1.0:
            raise SimulationError("unlimited_fraction must lie in [0, 1]")


class AuthorizationWorkloadGenerator:
    """Generate authorizations and access requests over a location hierarchy."""

    def __init__(
        self,
        hierarchy: LocationHierarchy,
        *,
        config: WorkloadConfig = WorkloadConfig(),
        seed: int = 0,
    ) -> None:
        self._hierarchy = hierarchy
        self._config = config
        self._rng = random.Random(seed)

    @property
    def config(self) -> WorkloadConfig:
        """The workload parameters in use."""
        return self._config

    # ------------------------------------------------------------------ #
    # Authorizations
    # ------------------------------------------------------------------ #
    def authorizations_for_subject(self, subject: str) -> List[LocationTemporalAuthorization]:
        """Generate this subject's authorization set."""
        config = self._config
        rng = self._rng
        entry_locations = sorted(self._hierarchy.entry_locations)
        interior = sorted(self._hierarchy.primitive_names - set(entry_locations))
        chosen_interior = [loc for loc in interior if rng.random() < config.coverage]

        authorizations: List[LocationTemporalAuthorization] = []
        for location in entry_locations:
            authorizations.append(self._make_authorization(subject, location, wide_open=config.wide_open_entries))
        for location in chosen_interior:
            authorizations.append(self._make_authorization(subject, location, wide_open=False))
        return authorizations

    def authorizations(self, subjects: Sequence[str]) -> List[LocationTemporalAuthorization]:
        """Generate authorization sets for several subjects."""
        result: List[LocationTemporalAuthorization] = []
        for subject in subjects:
            result.extend(self.authorizations_for_subject(subject))
        return result

    def _make_authorization(
        self, subject: str, location: str, *, wide_open: bool
    ) -> LocationTemporalAuthorization:
        config = self._config
        rng = self._rng
        if wide_open:
            entry = (0, config.horizon)
        else:
            start = rng.randrange(0, config.horizon)
            length = rng.randint(1, config.window_length)
            entry = (start, start + length)
        exit_end = entry[1] + rng.randint(0, config.dwell_allowance)
        exit_start = rng.randint(entry[0], entry[1])
        if rng.random() < config.unlimited_fraction:
            budget = UNLIMITED_ENTRIES
        else:
            budget = rng.randint(1, config.max_entries)
        return LocationTemporalAuthorization((subject, location), entry, (exit_start, exit_end), budget)

    # ------------------------------------------------------------------ #
    # Movement traces
    # ------------------------------------------------------------------ #
    def movement_events(
        self,
        subjects: Sequence[str],
        count: int,
        *,
        start_time: int = 0,
        max_step: int = 2,
        locations: Optional[Sequence[str]] = None,
    ) -> List[MovementRecord]:
        """Generate a *count*-event ENTER/EXIT stream for occupancy workloads.

        The stream is globally time-ordered (hence per-subject time-ordered)
        and occupancy-consistent: a subject outside the building enters a
        random location, a subject inside exits the location they are in —
        no mismatched exits, so the trace loads cleanly even into a strict
        movement database.  Time advances by ``0..max_step`` chronons per
        event, so a 100k-event trace spans a proportionally long horizon
        (the shape the windowed entry-count reads are benchmarked against).
        """
        if count < 0:
            raise SimulationError(f"event count must be non-negative, got {count}")
        if not subjects:
            raise SimulationError("at least one subject is required to generate movements")
        if max_step < 0:
            raise SimulationError(f"max_step must be non-negative, got {max_step}")
        pool = list(locations) if locations is not None else sorted(self._hierarchy.primitive_names)
        if not pool:
            raise SimulationError("at least one location is required to generate movements")
        rng = self._rng
        subjects = list(subjects)
        inside: dict = {}
        time = start_time
        records: List[MovementRecord] = []
        for _ in range(count):
            subject = rng.choice(subjects)
            location = inside.pop(subject, None)
            if location is not None:
                records.append(MovementRecord(time, subject, location, MovementKind.EXIT))
            else:
                location = rng.choice(pool)
                inside[subject] = location
                records.append(MovementRecord(time, subject, location, MovementKind.ENTER))
            time += rng.randint(0, max_step)
        return records

    def movement_streams(
        self,
        subjects: Sequence[str],
        count: int,
        *,
        trackers: int = 4,
        start_time: int = 0,
        max_step: int = 2,
        locations: Optional[Sequence[str]] = None,
    ) -> List[List[MovementRecord]]:
        """Split a :meth:`movement_events` trace into per-tracker feeds.

        Models a deployment where each subject's badge reports to one of
        *trackers* tracker gateways: the global trace is partitioned by a
        stable hash of the subject, so every stream is time-ordered, the
        streams are disjoint by subject, and concatenating them replays to
        the same occupancy state as the original trace.  This is the input
        shape of the parallel-ingest benchmark (one writer thread per
        stream) and of ``observe_stream()`` demos.
        """
        if trackers < 1:
            raise SimulationError(f"tracker count must be positive, got {trackers}")
        events = self.movement_events(
            subjects, count, start_time=start_time, max_step=max_step, locations=locations
        )
        streams: List[List[MovementRecord]] = [[] for _ in range(trackers)]
        assignment: dict = {}
        for record in events:
            tracker = assignment.get(record.subject)
            if tracker is None:
                tracker = assignment[record.subject] = stable_hash(record.subject) % trackers
            streams[tracker].append(record)
        return streams

    # ------------------------------------------------------------------ #
    # Requests
    # ------------------------------------------------------------------ #
    def requests(
        self,
        subjects: Sequence[str],
        count: int,
        *,
        locations: Optional[Sequence[str]] = None,
    ) -> List[AccessRequest]:
        """Generate *count* random access requests across *subjects*."""
        if count < 0:
            raise SimulationError(f"request count must be non-negative, got {count}")
        if not subjects:
            raise SimulationError("at least one subject is required to generate requests")
        pool = list(locations) if locations is not None else sorted(self._hierarchy.primitive_names)
        rng = self._rng
        return [
            AccessRequest(
                rng.randrange(0, self._config.horizon),
                rng.choice(list(subjects)),
                rng.choice(pool),
            )
            for _ in range(count)
        ]
