"""Workload substrate: synthetic buildings, authorization workloads, movement traces."""

from repro.simulation.buildings import (
    campus,
    campus_hierarchy,
    corridor_building,
    grid_building,
    random_building,
    tree_building,
)
from repro.simulation.movement import GroundTruth, MovementSimulator, SimulatedTrace
from repro.simulation.workload import (
    AuthorizationWorkloadGenerator,
    WorkloadConfig,
    generate_subjects,
)

__all__ = [
    "corridor_building",
    "grid_building",
    "tree_building",
    "random_building",
    "campus",
    "campus_hierarchy",
    "WorkloadConfig",
    "AuthorizationWorkloadGenerator",
    "generate_subjects",
    "MovementSimulator",
    "SimulatedTrace",
    "GroundTruth",
]
