"""Movement-trace simulation, including deliberate violations.

The enforcement benchmarks (E5, E8) need movement traces with known ground
truth: which entries were legitimate, which were tailgating, who overstayed.
:class:`MovementSimulator` produces such traces over any location hierarchy:

* **compliant walks** — the subject enters a location only when the engine
  would grant the request and leaves inside the exit window;
* **injected violations** — with configurable probabilities a step enters
  without authorization (tailgating) or overstays past the exit window.

Every simulated trace is returned together with its
:class:`GroundTruth` labels so detection recall/precision can be measured.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.errors import SimulationError
from repro.core.authorization import LocationTemporalAuthorization, UNLIMITED_ENTRIES
from repro.locations.multilevel import LocationHierarchy
from repro.storage.movement_db import MovementKind, MovementRecord

__all__ = ["GroundTruth", "SimulatedTrace", "MovementSimulator"]


@dataclass(frozen=True)
class GroundTruth:
    """Labels describing what a simulated trace actually contains."""

    #: (time, subject, location) triples of entries made without authorization.
    unauthorized_entries: Tuple[Tuple[int, str, str], ...]
    #: (subject, location, exit_deadline) triples of stays extended past the exit window.
    overstays: Tuple[Tuple[str, str, int], ...]

    @property
    def violation_count(self) -> int:
        """Total number of injected violations."""
        return len(self.unauthorized_entries) + len(self.overstays)


@dataclass(frozen=True)
class SimulatedTrace:
    """A movement trace plus its ground truth."""

    records: Tuple[MovementRecord, ...]
    truth: GroundTruth

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)


class MovementSimulator:
    """Generate movement traces for subjects over a location hierarchy.

    Parameters
    ----------
    hierarchy:
        The building layout walked by the simulated subjects.
    authorizations:
        The authorization set the compliant behaviour respects.
    seed:
        RNG seed (traces are deterministic given the seed and parameters).
    """

    def __init__(
        self,
        hierarchy: LocationHierarchy,
        authorizations: Iterable[LocationTemporalAuthorization],
        *,
        seed: int = 0,
    ) -> None:
        self._hierarchy = hierarchy
        self._rng = random.Random(seed)
        self._auths: Dict[Tuple[str, str], List[LocationTemporalAuthorization]] = {}
        for auth in authorizations:
            self._auths.setdefault((auth.subject, auth.location), []).append(auth)
        #: entry budget already consumed during simulation, per (subject, location)
        self._entries_used: Dict[Tuple[str, str], int] = {}

    # ------------------------------------------------------------------ #
    # Authorization bookkeeping (mirrors Definition 7 during simulation)
    # ------------------------------------------------------------------ #
    def _admitting_authorization(
        self, time: int, subject: str, location: str
    ) -> Optional[LocationTemporalAuthorization]:
        for auth in self._auths.get((subject, location), ()):
            if not auth.permits_entry_at(time):
                continue
            used = self._entries_used.get((subject, location), 0)
            remaining = auth.entries_remaining(used)
            if remaining is UNLIMITED_ENTRIES or int(remaining) > 0:
                return auth
        return None

    # ------------------------------------------------------------------ #
    # Trace generation
    # ------------------------------------------------------------------ #
    def walk(
        self,
        subject: str,
        *,
        start_time: int = 0,
        steps: int = 10,
        dwell: int = 2,
        p_tailgate: float = 0.0,
        p_overstay: float = 0.0,
        start_location: Optional[str] = None,
    ) -> SimulatedTrace:
        """Simulate one subject walking *steps* moves through the building.

        The walk starts at an entry location (or *start_location*), repeatedly
        moves to a random neighbour, and at each move:

        * enters legitimately when an authorization admits the subject;
        * with probability *p_tailgate*, enters anyway when no authorization
          admits it (recorded as an unauthorized entry in the ground truth);
        * otherwise skips the move (stays put, time still advances);
        * with probability *p_overstay*, leaves ``dwell`` chronons *after* the
          authorized exit window instead of inside it.
        """
        if steps < 0 or dwell <= 0:
            raise SimulationError("steps must be non-negative and dwell positive")
        if not 0.0 <= p_tailgate <= 1.0 or not 0.0 <= p_overstay <= 1.0:
            raise SimulationError("probabilities must lie in [0, 1]")

        rng = self._rng
        entries = sorted(self._hierarchy.entry_locations)
        current = start_location or rng.choice(entries)
        time = start_time

        records: List[MovementRecord] = []
        unauthorized: List[Tuple[int, str, str]] = []
        overstays: List[Tuple[str, str, int]] = []

        def enter(location: str) -> Optional[LocationTemporalAuthorization]:
            nonlocal time
            auth = self._admitting_authorization(time, subject, location)
            if auth is None:
                if rng.random() >= p_tailgate:
                    return None
                unauthorized.append((time, subject, location))
            records.append(MovementRecord(time, subject, location, MovementKind.ENTER))
            self._entries_used[(subject, location)] = self._entries_used.get((subject, location), 0) + 1
            return auth

        def leave(location: str, auth: Optional[LocationTemporalAuthorization]) -> None:
            nonlocal time
            exit_time = time + dwell
            if auth is not None and not auth.exit_duration.is_unbounded:
                deadline = int(auth.exit_duration.end)
                if rng.random() < p_overstay:
                    exit_time = deadline + dwell
                    overstays.append((subject, location, deadline))
                else:
                    exit_time = min(max(exit_time, auth.exit_duration.start), deadline)
            records.append(MovementRecord(max(exit_time, time), subject, location, MovementKind.EXIT))
            time = max(exit_time, time) + 1

        admitting = enter(current)
        inside = bool(records)
        if inside:  # only continue the walk if the first entry happened
            for _ in range(steps):
                neighbors = sorted(self._hierarchy.neighbors(current))
                if not neighbors:
                    break
                nxt = rng.choice(neighbors)
                leave(current, admitting)
                inside = False
                admitting = self._admitting_authorization(time, subject, nxt)
                if admitting is None and rng.random() >= p_tailgate:
                    # Denied and not willing to tailgate: walk ends here.
                    break
                if admitting is None:
                    unauthorized.append((time, subject, nxt))
                records.append(MovementRecord(time, subject, nxt, MovementKind.ENTER))
                self._entries_used[(subject, nxt)] = self._entries_used.get((subject, nxt), 0) + 1
                current = nxt
                inside = True
            if inside:
                leave(current, admitting)

        return SimulatedTrace(tuple(records), GroundTruth(tuple(unauthorized), tuple(overstays)))

    def population_trace(
        self,
        subjects: Sequence[str],
        *,
        steps: int = 10,
        dwell: int = 2,
        stagger: int = 3,
        p_tailgate: float = 0.0,
        p_overstay: float = 0.0,
    ) -> SimulatedTrace:
        """Simulate a whole population, staggering their start times.

        Returns one merged trace (records sorted by time) with the combined
        ground truth.
        """
        all_records: List[MovementRecord] = []
        unauthorized: List[Tuple[int, str, str]] = []
        overstays: List[Tuple[str, str, int]] = []
        for index, subject in enumerate(subjects):
            trace = self.walk(
                subject,
                start_time=index * stagger,
                steps=steps,
                dwell=dwell,
                p_tailgate=p_tailgate,
                p_overstay=p_overstay,
            )
            all_records.extend(trace.records)
            unauthorized.extend(trace.truth.unauthorized_entries)
            overstays.extend(trace.truth.overstays)
        all_records.sort(key=lambda record: (record.time, record.subject, record.kind.value))
        return SimulatedTrace(
            tuple(all_records), GroundTruth(tuple(unauthorized), tuple(overstays))
        )
