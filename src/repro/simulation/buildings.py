"""Synthetic building and campus generators.

The paper evaluates nothing quantitatively and publishes no layouts beyond
the NTU example, so the scaling benchmarks (experiment E7) and the
architecture benchmark (E5) need synthetic layouts of controllable size.
All generators are deterministic given their parameters (and seed, where
randomness is involved).

* :func:`corridor_building` — a corridor spine with rooms hanging off it;
* :func:`grid_building` — rooms on an ``rows × cols`` grid;
* :func:`tree_building` — a random tree (every room reachable, no cycles);
* :func:`random_building` — a random connected graph with tunable extra edges;
* :func:`campus` — a multilevel graph of several buildings connected in a ring.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from repro.errors import SimulationError
from repro.locations.builder import LocationGraphBuilder, MultilevelGraphBuilder
from repro.locations.graph import LocationGraph
from repro.locations.multilevel import LocationHierarchy, MultilevelLocationGraph

__all__ = [
    "corridor_building",
    "grid_building",
    "tree_building",
    "random_building",
    "campus",
    "campus_hierarchy",
]


def _check_positive(value: int, name: str) -> int:
    if not isinstance(value, int) or isinstance(value, bool) or value <= 0:
        raise SimulationError(f"{name} must be a positive integer, got {value!r}")
    return value


def corridor_building(name: str, rooms: int) -> LocationGraph:
    """A building with a corridor of *rooms* segments, one room per segment.

    The first corridor segment is the entry location.  Total locations:
    ``2 * rooms``.
    """
    _check_positive(rooms, "rooms")
    builder = LocationGraphBuilder(name, description=f"corridor building with {rooms} rooms")
    previous_corridor: Optional[str] = None
    for index in range(rooms):
        corridor = f"{name}.Corridor{index}"
        room = f"{name}.Room{index}"
        builder.add_location(corridor, tags=("corridor",), entry=index == 0)
        builder.add_location(room, tags=("room",))
        builder.add_edge(corridor, room)
        if previous_corridor is not None:
            builder.add_edge(previous_corridor, corridor)
        previous_corridor = corridor
    return builder.build()


def grid_building(name: str, rows: int, cols: int, *, entries: int = 1) -> LocationGraph:
    """Rooms on a ``rows × cols`` grid with 4-neighbour connectivity.

    The first *entries* cells of the bottom row are entry locations.
    """
    _check_positive(rows, "rows")
    _check_positive(cols, "cols")
    if entries < 1 or entries > cols:
        raise SimulationError(f"entries must be between 1 and cols ({cols}), got {entries}")
    builder = LocationGraphBuilder(name, description=f"{rows}x{cols} grid building")
    for row in range(rows):
        for col in range(cols):
            builder.add_location(
                f"{name}.R{row}C{col}",
                tags=("room",),
                entry=(row == 0 and col < entries),
            )
    for row in range(rows):
        for col in range(cols):
            here = f"{name}.R{row}C{col}"
            if col + 1 < cols:
                builder.add_edge(here, f"{name}.R{row}C{col + 1}")
            if row + 1 < rows:
                builder.add_edge(here, f"{name}.R{row + 1}C{col}")
    return builder.build()


def tree_building(name: str, locations: int, *, seed: int = 0, max_children: int = 3) -> LocationGraph:
    """A random tree of *locations* rooms rooted at the entry location."""
    _check_positive(locations, "locations")
    _check_positive(max_children, "max_children")
    rng = random.Random(seed)
    builder = LocationGraphBuilder(name, description=f"random tree building ({locations} rooms)")
    names = [f"{name}.L{i}" for i in range(locations)]
    builder.add_location(names[0], tags=("lobby",), entry=True)
    child_counts = {names[0]: 0}
    for node in names[1:]:
        candidates = [parent for parent, count in child_counts.items() if count < max_children]
        parent = rng.choice(candidates) if candidates else rng.choice(list(child_counts))
        builder.add_location(node, tags=("room",))
        builder.add_edge(parent, node)
        child_counts[parent] = child_counts.get(parent, 0) + 1
        child_counts[node] = 0
    return builder.build()


def random_building(
    name: str,
    locations: int,
    *,
    extra_edges: int = 0,
    seed: int = 0,
    entries: int = 1,
) -> LocationGraph:
    """A random connected graph: a random spanning tree plus *extra_edges* chords."""
    _check_positive(locations, "locations")
    if entries < 1 or entries > locations:
        raise SimulationError(f"entries must be between 1 and locations ({locations}), got {entries}")
    if extra_edges < 0:
        raise SimulationError(f"extra_edges must be non-negative, got {extra_edges}")
    rng = random.Random(seed)
    names = [f"{name}.L{i}" for i in range(locations)]
    builder = LocationGraphBuilder(name, description=f"random building ({locations} rooms)")
    for index, node in enumerate(names):
        builder.add_location(node, tags=("room",), entry=index < entries)
    # Random spanning tree: connect each node to a random earlier node.
    existing_edges = set()
    for index in range(1, locations):
        parent = names[rng.randrange(index)]
        builder.add_edge(parent, names[index])
        existing_edges.add(frozenset((parent, names[index])))
    # Extra chords (only meaningful when there are at least two locations).
    attempts = 0
    added = 0
    while locations >= 2 and added < extra_edges and attempts < 50 * (extra_edges + 1):
        attempts += 1
        a, b = rng.sample(names, 2)
        key = frozenset((a, b))
        if key in existing_edges:
            continue
        builder.add_edge(a, b)
        existing_edges.add(key)
        added += 1
    return builder.build()


def campus(
    name: str,
    buildings: int,
    *,
    rooms_per_building: int = 4,
    seed: int = 0,
    style: str = "grid",
) -> MultilevelLocationGraph:
    """A campus: several buildings connected in a ring (plus one chord when > 3).

    Parameters
    ----------
    style:
        ``"grid"``, ``"corridor"``, ``"tree"`` or ``"random"`` — the generator
        used for each building.
    """
    _check_positive(buildings, "buildings")
    _check_positive(rooms_per_building, "rooms_per_building")
    builder = MultilevelGraphBuilder(name, description=f"synthetic campus with {buildings} buildings")
    names: List[str] = []
    for index in range(buildings):
        building_name = f"{name}-B{index}"
        names.append(building_name)
        if style == "grid":
            side = max(1, int(rooms_per_building ** 0.5))
            child = grid_building(building_name, side, max(1, rooms_per_building // side))
        elif style == "corridor":
            child = corridor_building(building_name, max(1, rooms_per_building // 2))
        elif style == "tree":
            child = tree_building(building_name, rooms_per_building, seed=seed + index)
        elif style == "random":
            child = random_building(
                building_name, rooms_per_building, extra_edges=rooms_per_building // 3, seed=seed + index
            )
        else:
            raise SimulationError(f"unknown campus style {style!r}")
        builder.add_child(child, entry=index == 0)
    for index in range(len(names)):
        if len(names) == 1:
            break
        builder.connect(names[index], names[(index + 1) % len(names)])
        if len(names) == 2:
            break
    if buildings > 3:
        builder.connect(names[0], names[buildings // 2])
    return builder.build()


def campus_hierarchy(
    name: str,
    buildings: int,
    *,
    rooms_per_building: int = 4,
    seed: int = 0,
    style: str = "grid",
) -> LocationHierarchy:
    """Convenience wrapper returning the campus as a :class:`LocationHierarchy`."""
    return LocationHierarchy(
        campus(name, buildings, rooms_per_building=rooms_per_building, seed=seed, style=style)
    )
