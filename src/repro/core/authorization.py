"""Location authorizations and location-temporal authorizations (Defs. 3 & 4).

* A **location authorization** is the pair ``(s, l)``: subject *s* is
  authorized to enter primitive location *l*.
* A **location-temporal authorization** augments it with temporal constraints:
  ``(entry_duration, exit_duration, (s, l), n)`` — *s* may enter *l* during
  ``entry_duration`` and must leave during ``exit_duration``, at most *n*
  times.

Definition 4 also fixes the defaults: an unspecified entry duration means the
subject may enter at any time after the authorization is created; an
unspecified exit duration defaults to ``[t_entry_start, ∞]``; the default
entry count is ``∞``.  The paper further requires ``t_o_s ≥ t_i_s`` and
``t_o_e ≥ t_i_e`` (one cannot be forced to leave before one may enter, and the
exit window may not close before the entry window does).

Section 6 defines, relative to an access-request duration ``[t_p, t_q]``:

* the **grant duration** ``[max(t_p, t_i_s), min(t_q, t_i_e)]`` and
* the **departure duration** ``[max(t_p, t_o_s), t_o_e]``,

both of which are exposed here and consumed by the route-authorization check
and Algorithm 1.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional, Tuple, Union

from repro.errors import InvalidAuthorizationError
from repro.core.subjects import Subject, SubjectName, subject_name
from repro.locations.location import LocationName, PrimitiveLocation, location_name
from repro.temporal.chronon import FOREVER, TimePoint
from repro.temporal.interval import TimeInterval

__all__ = [
    "LocationAuthorization",
    "LocationTemporalAuthorization",
    "UNLIMITED_ENTRIES",
    "grant_duration",
    "departure_duration",
]

#: Sentinel for an unlimited number of entries (the paper's default ``∞``).
UNLIMITED_ENTRIES = FOREVER

_auth_id_counter = itertools.count(1)


def _next_auth_id() -> str:
    return f"auth-{next(_auth_id_counter)}"


@dataclass(frozen=True)
class LocationAuthorization:
    """Definition 3: subject *s* is authorized to enter primitive location *l*."""

    subject: SubjectName
    location: LocationName

    def __post_init__(self) -> None:
        object.__setattr__(self, "subject", subject_name(self.subject))
        object.__setattr__(self, "location", location_name(self.location))

    def __str__(self) -> str:
        return f"({self.subject}, {self.location})"


@dataclass(frozen=True)
class LocationTemporalAuthorization:
    """Definition 4: a location authorization with temporal constraints.

    Parameters
    ----------
    auth:
        The underlying location authorization ``(s, l)``.  A plain
        ``(subject, location)`` tuple is also accepted.
    entry_duration:
        Interval during which the subject may enter; ``None`` means
        "any time from *created_at* onwards".
    exit_duration:
        Interval during which the subject may (and must) leave; ``None``
        defaults to ``[entry_duration.start, ∞]``.
    max_entries:
        Maximum number of entries within the entry duration; the paper's
        range is ``[1, ∞)`` and the default is unlimited.
    created_at:
        Creation time of the authorization, used to resolve an unspecified
        entry duration.
    auth_id:
        Stable identifier; generated when omitted.
    derived_from:
        Identifier of the base authorization when this authorization was
        produced by an authorization rule (Section 4), ``None`` for
        explicitly administered authorizations.
    rule_id:
        Identifier of the rule that derived this authorization, if any.
    """

    auth: LocationAuthorization
    entry_duration: TimeInterval
    exit_duration: TimeInterval
    max_entries: TimePoint = UNLIMITED_ENTRIES
    created_at: int = 0
    auth_id: str = field(default_factory=_next_auth_id)
    derived_from: Optional[str] = None
    rule_id: Optional[str] = None

    def __init__(
        self,
        auth: Union[LocationAuthorization, Tuple[str, str]],
        entry_duration: Optional[Union[TimeInterval, Tuple[TimePoint, TimePoint]]] = None,
        exit_duration: Optional[Union[TimeInterval, Tuple[TimePoint, TimePoint]]] = None,
        max_entries: TimePoint = UNLIMITED_ENTRIES,
        *,
        created_at: int = 0,
        auth_id: Optional[str] = None,
        derived_from: Optional[str] = None,
        rule_id: Optional[str] = None,
    ) -> None:
        if isinstance(auth, tuple):
            auth = LocationAuthorization(*auth)
        if not isinstance(auth, LocationAuthorization):
            raise InvalidAuthorizationError(
                f"auth must be a LocationAuthorization or (subject, location) tuple, got {auth!r}"
            )
        if created_at < 0:
            raise InvalidAuthorizationError(f"created_at must be non-negative, got {created_at}")

        entry = _coerce_interval(entry_duration)
        if entry is None:
            # Unspecified entry duration: the subject can enter any time after
            # the creation of the authorization (Definition 4).
            entry = TimeInterval(created_at, FOREVER)
        exit_ = _coerce_interval(exit_duration)
        if exit_ is None:
            # Unspecified exit duration: default [t_i_1, ∞].
            exit_ = TimeInterval(entry.start, FOREVER)

        if exit_.start < entry.start:
            raise InvalidAuthorizationError(
                f"exit duration {exit_} must not start before entry duration {entry} "
                "(the paper requires t_o_s >= t_i_s)"
            )
        if not exit_.is_unbounded and not entry.is_unbounded and int(exit_.end) < int(entry.end):
            raise InvalidAuthorizationError(
                f"exit duration {exit_} must not end before entry duration {entry} "
                "(the paper requires t_o_e >= t_i_e)"
            )
        if exit_.is_unbounded is False and entry.is_unbounded is True:
            raise InvalidAuthorizationError(
                f"exit duration {exit_} is bounded but entry duration {entry} is unbounded"
            )

        if max_entries is not UNLIMITED_ENTRIES:
            if not isinstance(max_entries, int) or isinstance(max_entries, bool) or max_entries < 1:
                raise InvalidAuthorizationError(
                    f"max_entries must be a positive integer or UNLIMITED_ENTRIES, got {max_entries!r}"
                )

        object.__setattr__(self, "auth", auth)
        object.__setattr__(self, "entry_duration", entry)
        object.__setattr__(self, "exit_duration", exit_)
        object.__setattr__(self, "max_entries", max_entries)
        object.__setattr__(self, "created_at", created_at)
        object.__setattr__(self, "auth_id", auth_id or _next_auth_id())
        object.__setattr__(self, "derived_from", derived_from)
        object.__setattr__(self, "rule_id", rule_id)

    # ------------------------------------------------------------------ #
    # Convenience accessors
    # ------------------------------------------------------------------ #
    @property
    def subject(self) -> SubjectName:
        """The subject of the underlying location authorization."""
        return self.auth.subject

    @property
    def location(self) -> LocationName:
        """The primitive location of the underlying location authorization."""
        return self.auth.location

    @property
    def is_derived(self) -> bool:
        """``True`` when this authorization was produced by a rule."""
        return self.derived_from is not None

    @property
    def has_entry_limit(self) -> bool:
        """``True`` when the number of entries is bounded."""
        return self.max_entries is not UNLIMITED_ENTRIES

    # ------------------------------------------------------------------ #
    # Semantics
    # ------------------------------------------------------------------ #
    def permits_entry_at(self, time: int) -> bool:
        """Return ``True`` if the entry duration contains *time*."""
        return self.entry_duration.contains(time)

    def permits_exit_at(self, time: int) -> bool:
        """Return ``True`` if the exit duration contains *time*."""
        return self.exit_duration.contains(time)

    def entries_remaining(self, entries_used: int) -> TimePoint:
        """Entries still available after *entries_used* have been consumed."""
        if entries_used < 0:
            raise InvalidAuthorizationError(f"entries_used must be non-negative, got {entries_used}")
        if self.max_entries is UNLIMITED_ENTRIES:
            return UNLIMITED_ENTRIES
        return max(0, int(self.max_entries) - entries_used)

    def grant_duration(self, window: TimeInterval) -> Optional[TimeInterval]:
        """Grant duration of this authorization in the access-request *window* (Section 6)."""
        return grant_duration(self, window)

    def departure_duration(self, window: TimeInterval) -> Optional[TimeInterval]:
        """Departure duration of this authorization in the access-request *window* (Section 6)."""
        return departure_duration(self, window)

    # ------------------------------------------------------------------ #
    # Derivation helpers
    # ------------------------------------------------------------------ #
    def replace(
        self,
        *,
        subject: Optional[str] = None,
        location: Optional[str] = None,
        entry_duration: Optional[TimeInterval] = None,
        exit_duration: Optional[TimeInterval] = None,
        max_entries: Optional[TimePoint] = None,
        derived_from: Optional[str] = None,
        rule_id: Optional[str] = None,
    ) -> "LocationTemporalAuthorization":
        """Return a copy with selected fields replaced (used by rule derivation)."""
        return LocationTemporalAuthorization(
            LocationAuthorization(
                subject if subject is not None else self.subject,
                location if location is not None else self.location,
            ),
            entry_duration if entry_duration is not None else self.entry_duration,
            exit_duration if exit_duration is not None else self.exit_duration,
            max_entries if max_entries is not None else self.max_entries,
            created_at=self.created_at,
            derived_from=derived_from if derived_from is not None else self.derived_from,
            rule_id=rule_id if rule_id is not None else self.rule_id,
        )

    # Equality ignores the generated auth_id so that structurally identical
    # authorizations (e.g. the same derivation run twice) compare equal.
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LocationTemporalAuthorization):
            return NotImplemented
        return (
            self.auth == other.auth
            and self.entry_duration == other.entry_duration
            and self.exit_duration == other.exit_duration
            and self.max_entries == other.max_entries
        )

    def __hash__(self) -> int:
        return hash((self.auth, self.entry_duration, self.exit_duration, self.max_entries))

    def __str__(self) -> str:
        entries = "∞" if self.max_entries is UNLIMITED_ENTRIES else str(self.max_entries)
        return f"({self.entry_duration}, {self.exit_duration}, {self.auth}, {entries})"

    def __repr__(self) -> str:
        return f"LocationTemporalAuthorization{self}"


def _coerce_interval(
    value: Optional[Union[TimeInterval, Tuple[TimePoint, TimePoint]]]
) -> Optional[TimeInterval]:
    if value is None:
        return None
    if isinstance(value, TimeInterval):
        return value
    if isinstance(value, tuple) and len(value) == 2:
        return TimeInterval(value[0], value[1])
    raise InvalidAuthorizationError(f"cannot interpret {value!r} as a time interval")


def grant_duration(
    authorization: LocationTemporalAuthorization, window: TimeInterval
) -> Optional[TimeInterval]:
    """Grant duration of *authorization* within the access-request *window*.

    Section 6: ``[max(t_p, t_i_s), min(t_q, t_i_e)]``; ``None`` (the paper's
    *null*) when the window and the entry duration do not overlap.
    """
    start = max(window.start, authorization.entry_duration.start)
    entry_end = authorization.entry_duration.end
    if window.is_unbounded and entry_end is FOREVER:
        end: TimePoint = FOREVER
    elif window.is_unbounded:
        end = entry_end
    elif entry_end is FOREVER:
        end = window.end
    else:
        end = min(int(window.end), int(entry_end))
    if end is not FOREVER and end < start:
        return None
    return TimeInterval(start, end)


def departure_duration(
    authorization: LocationTemporalAuthorization, window: TimeInterval
) -> Optional[TimeInterval]:
    """Departure duration of *authorization* within the access-request *window*.

    Section 6: ``[max(t_p, t_o_s), t_o_e]``; ``None`` when that interval is
    empty (i.e. the exit window closes before ``max(t_p, t_o_s)``).
    """
    start = max(window.start, authorization.exit_duration.start)
    end = authorization.exit_duration.end
    if end is not FOREVER and end < start:
        return None
    return TimeInterval(start, end)
