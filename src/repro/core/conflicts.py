"""Conflict detection and resolution between authorizations.

Section 4 observes that *"the authorization rules may introduce conflicts of
authorizations … This conflict should be resolved either by combining the two
authorizations, or discarding one of them.  The problem is left for future
work."*  The reproduction implements that future work: a detector that finds
conflicting pairs and a resolver implementing both strategies the paper
mentions (merge, discard) plus precedence of explicit over derived
authorizations.

Two authorizations for the same ``(subject, location)`` pair are flagged when
their entry durations overlap (redundant or contradictory grants) or are
adjacent (the paper's ``[5, 10]`` vs ``[10, 11]`` example is the overlapping
case; ``[5, 9]`` vs ``[10, 11]`` would be the adjacent case, which usually
indicates a single intended window split in two).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from enum import Enum
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ConflictError
from repro.core.authorization import UNLIMITED_ENTRIES, LocationTemporalAuthorization
from repro.temporal.chronon import FOREVER, TimePoint
from repro.temporal.interval import TimeInterval

__all__ = [
    "ConflictKind",
    "Conflict",
    "ResolutionStrategy",
    "detect_conflicts",
    "resolve_conflicts",
    "merge_pair",
]


class ConflictKind(str, Enum):
    """Classification of a conflicting pair of authorizations."""

    #: Identical subject, location, durations and entry count.
    DUPLICATE = "duplicate"
    #: Entry durations overlap but the authorizations are not identical.
    OVERLAPPING_ENTRY = "overlapping_entry"
    #: Entry durations are adjacent (contiguous in discrete time).
    ADJACENT_ENTRY = "adjacent_entry"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


class ResolutionStrategy(str, Enum):
    """How :func:`resolve_conflicts` handles a conflicting pair."""

    #: Combine the two authorizations into one (union durations, max budget).
    MERGE = "merge"
    #: Keep the authorization created first, discard the other.
    KEEP_FIRST = "keep_first"
    #: Prefer explicitly administered authorizations over derived ones;
    #: fall back to KEEP_FIRST when both have the same origin.
    PREFER_EXPLICIT = "prefer_explicit"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class Conflict:
    """A conflicting pair of authorizations for the same subject and location."""

    kind: ConflictKind
    first: LocationTemporalAuthorization
    second: LocationTemporalAuthorization

    @property
    def subject(self) -> str:
        return self.first.subject

    @property
    def location(self) -> str:
        return self.first.location

    def involves(self, auth_id: str) -> bool:
        """Return ``True`` if either side of the conflict has the given id."""
        return auth_id in (self.first.auth_id, self.second.auth_id)

    def __str__(self) -> str:
        return f"{self.kind}: {self.first} vs {self.second}"


def detect_conflicts(
    authorizations: Iterable[LocationTemporalAuthorization],
    *,
    include_adjacent: bool = True,
) -> List[Conflict]:
    """Find all conflicting pairs in *authorizations*.

    Parameters
    ----------
    include_adjacent:
        Also report pairs whose entry durations are adjacent (default).
    """
    grouped: Dict[Tuple[str, str], List[LocationTemporalAuthorization]] = {}
    for auth in authorizations:
        grouped.setdefault((auth.subject, auth.location), []).append(auth)

    conflicts: List[Conflict] = []
    for (_, _), group in sorted(grouped.items()):
        for first, second in itertools.combinations(group, 2):
            kind = _classify(first, second, include_adjacent=include_adjacent)
            if kind is not None:
                conflicts.append(Conflict(kind, first, second))
    return conflicts


def _classify(
    first: LocationTemporalAuthorization,
    second: LocationTemporalAuthorization,
    *,
    include_adjacent: bool,
) -> Optional[ConflictKind]:
    if first == second:
        return ConflictKind.DUPLICATE
    if first.entry_duration.overlaps(second.entry_duration):
        return ConflictKind.OVERLAPPING_ENTRY
    if include_adjacent and first.entry_duration.is_adjacent_to(second.entry_duration):
        return ConflictKind.ADJACENT_ENTRY
    return None


def merge_pair(
    first: LocationTemporalAuthorization, second: LocationTemporalAuthorization
) -> LocationTemporalAuthorization:
    """Combine two conflicting authorizations into a single one.

    The merged authorization spans the union of the entry durations (their
    convex hull — the inputs overlap or touch, so no chronon is added that
    neither grant covered except in the adjacent case where the seam is
    intended), the union of the exit durations, and the larger entry budget.

    Raises
    ------
    ConflictError
        If the two authorizations concern different subjects or locations.
    """
    if first.subject != second.subject or first.location != second.location:
        raise ConflictError(
            "can only merge authorizations for the same subject and location, got "
            f"{first.auth} and {second.auth}"
        )
    entry = _hull(first.entry_duration, second.entry_duration)
    exit_ = _hull(first.exit_duration, second.exit_duration)
    budget = _max_entries(first.max_entries, second.max_entries)
    derived_from = first.derived_from if first.derived_from == second.derived_from else None
    return LocationTemporalAuthorization(
        first.auth,
        entry,
        exit_,
        budget,
        created_at=min(first.created_at, second.created_at),
        derived_from=derived_from,
    )


def _hull(a: TimeInterval, b: TimeInterval) -> TimeInterval:
    start = min(a.start, b.start)
    if a.is_unbounded or b.is_unbounded:
        return TimeInterval(start, FOREVER)
    return TimeInterval(start, max(int(a.end), int(b.end)))


def _max_entries(a: TimePoint, b: TimePoint) -> TimePoint:
    if a is UNLIMITED_ENTRIES or b is UNLIMITED_ENTRIES:
        return UNLIMITED_ENTRIES
    return max(int(a), int(b))


def resolve_conflicts(
    authorizations: Sequence[LocationTemporalAuthorization],
    *,
    strategy: ResolutionStrategy = ResolutionStrategy.MERGE,
    include_adjacent: bool = True,
) -> Tuple[List[LocationTemporalAuthorization], List[Conflict]]:
    """Resolve every conflict in *authorizations* using *strategy*.

    Returns the resolved authorization list together with the conflicts that
    were found (for auditing).  Resolution is applied iteratively until no
    conflict remains, so chains such as ``[1,5] / [4,8] / [7,12]`` collapse to
    a single merged authorization under :data:`ResolutionStrategy.MERGE`.
    """
    current: List[LocationTemporalAuthorization] = list(authorizations)
    all_conflicts: List[Conflict] = []
    # Iterate until fixpoint; each pass resolves at least one conflict, so the
    # loop terminates after at most len(authorizations) passes.
    for _ in range(max(1, len(current))):
        conflicts = detect_conflicts(current, include_adjacent=include_adjacent)
        if not conflicts:
            break
        all_conflicts.extend(conflicts)
        conflict = conflicts[0]
        survivors = [
            auth
            for auth in current
            if auth.auth_id not in (conflict.first.auth_id, conflict.second.auth_id)
        ]
        if strategy is ResolutionStrategy.MERGE:
            survivors.append(merge_pair(conflict.first, conflict.second))
        elif strategy is ResolutionStrategy.KEEP_FIRST:
            survivors.append(_earlier(conflict.first, conflict.second))
        elif strategy is ResolutionStrategy.PREFER_EXPLICIT:
            survivors.append(_prefer_explicit(conflict.first, conflict.second))
        else:  # pragma: no cover - defensive
            raise ConflictError(f"unknown resolution strategy {strategy!r}")
        current = survivors
    return current, all_conflicts


def _earlier(
    first: LocationTemporalAuthorization, second: LocationTemporalAuthorization
) -> LocationTemporalAuthorization:
    if second.created_at < first.created_at:
        return second
    return first


def _prefer_explicit(
    first: LocationTemporalAuthorization, second: LocationTemporalAuthorization
) -> LocationTemporalAuthorization:
    if first.is_derived and not second.is_derived:
        return second
    if second.is_derived and not first.is_derived:
        return first
    return _earlier(first, second)
