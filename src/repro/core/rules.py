"""Authorization rules (Section 4, Definition 5).

An authorization rule ``⟨t_r : (a, OP)⟩`` derives new authorizations from a
**base authorization** *a* through a tuple of operators
``OP = (op_entry, op_exit, op_subject, op_location, exp_n)``:

* ``op_entry`` and ``op_exit`` are temporal operators applied to the base
  entry and exit durations;
* ``op_subject`` derives the subjects of the derived authorizations from the
  base subject (querying the user profile database);
* ``op_location`` derives the primitive locations from the base location
  (querying the location layout);
* ``exp_n`` derives the entry count.

Unspecified rule elements default to copying the corresponding value from the
base authorization.  One derived authorization is produced for every
combination of derived entry interval, exit interval, subject and location;
combinations that would violate Definition 4's constraints (exit before
entry) are skipped and reported rather than silently produced.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Tuple, Union

from repro.errors import RuleError
from repro.core.authorization import LocationTemporalAuthorization
from repro.core.operators.location import LocationOperator, SAME_LOCATION
from repro.core.operators.numeric import EntryExpression, SAME_ENTRIES
from repro.core.operators.subject import SubjectOperator, SAME_SUBJECT
from repro.core.operators.temporal import TemporalOperator, WHENEVER
from repro.core.subjects import SubjectDirectory
from repro.locations.multilevel import LocationHierarchy
from repro.temporal.interval import TimeInterval

__all__ = ["OperatorTuple", "RuleContext", "DerivedBatch", "SkippedCombination", "AuthorizationRule"]

_rule_id_counter = itertools.count(1)


@dataclass(frozen=True)
class OperatorTuple:
    """The operator tuple ``OP`` of Definition 5.

    Every element is optional; omitted elements default to the identity
    operators, which reproduces the paper's rule that unspecified elements
    are copied from the base authorization.
    """

    op_entry: TemporalOperator = WHENEVER
    op_exit: TemporalOperator = WHENEVER
    op_subject: SubjectOperator = SAME_SUBJECT
    op_location: LocationOperator = SAME_LOCATION
    exp_n: EntryExpression = SAME_ENTRIES

    def __post_init__(self) -> None:
        if not isinstance(self.op_entry, TemporalOperator):
            raise RuleError(f"op_entry must be a TemporalOperator, got {self.op_entry!r}")
        if not isinstance(self.op_exit, TemporalOperator):
            raise RuleError(f"op_exit must be a TemporalOperator, got {self.op_exit!r}")
        if not isinstance(self.op_subject, SubjectOperator):
            raise RuleError(f"op_subject must be a SubjectOperator, got {self.op_subject!r}")
        if not isinstance(self.op_location, LocationOperator):
            raise RuleError(f"op_location must be a LocationOperator, got {self.op_location!r}")
        if not isinstance(self.exp_n, EntryExpression):
            raise RuleError(f"exp_n must be an EntryExpression, got {self.exp_n!r}")

    def __str__(self) -> str:
        return (
            f"({self.op_entry!r}, {self.op_exit!r}, {self.op_subject!r}, "
            f"{self.op_location!r}, {self.exp_n!r})"
        )


@dataclass
class RuleContext:
    """Everything a rule needs to evaluate its operators.

    Parameters
    ----------
    directory:
        The user profile directory queried by subject operators.
    hierarchy:
        The protected location hierarchy queried by location operators.
    now:
        The evaluation time; a rule only fires when ``now >= valid_from``.
    """

    directory: SubjectDirectory
    hierarchy: LocationHierarchy
    now: int = 0


@dataclass(frozen=True)
class SkippedCombination:
    """A derived combination rejected because it violates Definition 4."""

    subject: str
    location: str
    entry_duration: TimeInterval
    exit_duration: TimeInterval
    reason: str


@dataclass(frozen=True)
class DerivedBatch:
    """The outcome of applying one rule to its base authorization."""

    rule_id: str
    base: LocationTemporalAuthorization
    derived: Tuple[LocationTemporalAuthorization, ...]
    skipped: Tuple[SkippedCombination, ...] = ()

    def __len__(self) -> int:
        return len(self.derived)

    def __iter__(self):
        return iter(self.derived)


class AuthorizationRule:
    """The rule ``⟨valid_from : (base, operators)⟩`` of Definition 5.

    Parameters
    ----------
    valid_from:
        Time ``t_r`` from which the rule is valid.  When the rule is
        evaluated earlier (``context.now < valid_from``) it derives nothing.
    base:
        The base authorization the rule applies to.  It may also be given as
        an authorization id (string) and resolved later via
        :meth:`bind_base` (the derivation engine does this against the
        authorization database).
    operators:
        The operator tuple ``OP``.  A plain tuple/sequence of up to five
        operators in the paper's order is also accepted.
    rule_id:
        Stable identifier; generated when omitted.
    description:
        Optional human-readable intent of the rule.
    """

    def __init__(
        self,
        valid_from: int,
        base: Union[LocationTemporalAuthorization, str],
        operators: Union[OperatorTuple, Sequence, None] = None,
        *,
        rule_id: Optional[str] = None,
        description: str = "",
    ) -> None:
        if not isinstance(valid_from, int) or isinstance(valid_from, bool) or valid_from < 0:
            raise RuleError(f"valid_from must be a non-negative integer, got {valid_from!r}")
        self.valid_from = valid_from
        self.description = description
        self.rule_id = rule_id or f"rule-{next(_rule_id_counter)}"
        if isinstance(base, LocationTemporalAuthorization):
            self._base: Optional[LocationTemporalAuthorization] = base
            self._base_id: str = base.auth_id
        elif isinstance(base, str) and base:
            self._base = None
            self._base_id = base
        else:
            raise RuleError(
                f"base must be a LocationTemporalAuthorization or an authorization id, got {base!r}"
            )
        self.operators = _coerce_operators(operators)

    # ------------------------------------------------------------------ #
    # Base resolution
    # ------------------------------------------------------------------ #
    @property
    def base(self) -> Optional[LocationTemporalAuthorization]:
        """The bound base authorization, or ``None`` when only an id is known."""
        return self._base

    @property
    def base_id(self) -> str:
        """Identifier of the base authorization."""
        return self._base_id

    def bind_base(self, base: LocationTemporalAuthorization) -> None:
        """Bind the concrete base authorization (used by the derivation engine)."""
        if base.auth_id != self._base_id and self._base is not None:
            raise RuleError(
                f"rule {self.rule_id} is bound to base {self._base_id!r}, cannot rebind to {base.auth_id!r}"
            )
        self._base = base
        self._base_id = base.auth_id

    # ------------------------------------------------------------------ #
    # Derivation
    # ------------------------------------------------------------------ #
    def is_active(self, now: int) -> bool:
        """Return ``True`` if the rule is valid at time *now*."""
        return now >= self.valid_from

    def derive(self, context: RuleContext) -> DerivedBatch:
        """Apply the rule, producing the derived authorizations.

        Raises
        ------
        RuleError
            If the base authorization has not been bound.
        """
        if self._base is None:
            raise RuleError(
                f"rule {self.rule_id} has an unresolved base authorization {self._base_id!r}"
            )
        base = self._base
        if not self.is_active(context.now):
            return DerivedBatch(self.rule_id, base, ())

        entry_intervals = self.operators.op_entry.apply(base.entry_duration, self.valid_from)
        exit_intervals = self.operators.op_exit.apply(base.exit_duration, self.valid_from)
        subjects = self.operators.op_subject.apply(base.subject, context.directory)
        locations = self.operators.op_location.apply(base.location, context.hierarchy)
        entries = self.operators.exp_n(base.max_entries)

        derived: List[LocationTemporalAuthorization] = []
        skipped: List[SkippedCombination] = []
        for entry, exit_, subject, location in itertools.product(
            entry_intervals, exit_intervals, subjects, locations
        ):
            try:
                derived.append(
                    LocationTemporalAuthorization(
                        (subject, location),
                        entry,
                        exit_,
                        entries,
                        created_at=base.created_at,
                        # Deterministic id: re-running the same rule on the same
                        # base yields the same derived id, which lets rules chain
                        # (a rule may name a derived authorization as its base)
                        # and makes re-derivation idempotent.
                        auth_id=f"{self.rule_id}({base.auth_id})/{subject}@{location}/{entry}",
                        derived_from=base.auth_id,
                        rule_id=self.rule_id,
                    )
                )
            except Exception as exc:  # Definition 4 violation for this combination
                skipped.append(
                    SkippedCombination(subject, location, entry, exit_, str(exc))
                )
        return DerivedBatch(self.rule_id, base, tuple(derived), tuple(skipped))

    def __repr__(self) -> str:
        return (
            f"AuthorizationRule(id={self.rule_id!r}, valid_from={self.valid_from}, "
            f"base={self._base_id!r}, operators={self.operators})"
        )

    def __str__(self) -> str:
        return f"⟨{self.valid_from}: {self._base_id}, {self.operators}⟩"


def _coerce_operators(operators: Union[OperatorTuple, Sequence, None]) -> OperatorTuple:
    if operators is None:
        return OperatorTuple()
    if isinstance(operators, OperatorTuple):
        return operators
    if isinstance(operators, (list, tuple)):
        if len(operators) > 5:
            raise RuleError(f"an operator tuple has at most five elements, got {len(operators)}")
        defaults = [WHENEVER, WHENEVER, SAME_SUBJECT, SAME_LOCATION, SAME_ENTRIES]
        resolved = list(operators) + defaults[len(operators):]
        resolved = [default if item is None else item for item, default in zip(resolved, defaults)]
        return OperatorTuple(*resolved)
    raise RuleError(f"cannot interpret {operators!r} as an operator tuple")
