"""The derivation engine: applying authorization rules to the authorization set.

Section 5 assigns this job to the access control engine: *"When the
administrator specifies new rules, the access control engine will evaluate
the new rules on the existing authorizations and user profiles.  The derived
authorizations are then added to the authorization database."*  Example 1
additionally requires re-derivation when the profile database changes
("if Alice is assigned a different supervisor … the authorization for Bob
will be revoked").

:class:`DerivationEngine` therefore keeps provenance: every derived
authorization remembers its base authorization and rule, so that revoking a
base authorization (or re-running derivation after a profile change) removes
exactly the derived authorizations that no longer hold.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.errors import RuleError
from repro.core.authorization import LocationTemporalAuthorization
from repro.core.rules import AuthorizationRule, DerivedBatch, RuleContext, SkippedCombination
from repro.core.subjects import SubjectDirectory
from repro.locations.multilevel import LocationHierarchy

__all__ = ["DerivationResult", "DerivationEngine"]


@dataclass(frozen=True)
class DerivationResult:
    """Outcome of a derivation run across a rule set."""

    derived: Tuple[LocationTemporalAuthorization, ...]
    batches: Tuple[DerivedBatch, ...]
    skipped: Tuple[SkippedCombination, ...]

    @property
    def count(self) -> int:
        """Number of derived authorizations."""
        return len(self.derived)

    def derived_by_rule(self, rule_id: str) -> Tuple[LocationTemporalAuthorization, ...]:
        """The authorizations derived by one rule."""
        for batch in self.batches:
            if batch.rule_id == rule_id:
                return batch.derived
        return ()


class DerivationEngine:
    """Evaluate authorization rules against base authorizations.

    Parameters
    ----------
    directory:
        The subject directory (user profile database) queried by subject
        operators.
    hierarchy:
        The protected location hierarchy queried by location operators.
    """

    def __init__(self, directory: SubjectDirectory, hierarchy: LocationHierarchy) -> None:
        self._directory = directory
        self._hierarchy = hierarchy
        self._rules: Dict[str, AuthorizationRule] = {}
        #: rule id -> auth ids of the authorizations it derived in the last run
        self._provenance: Dict[str, Tuple[str, ...]] = {}

    # ------------------------------------------------------------------ #
    # Rule management
    # ------------------------------------------------------------------ #
    def add_rule(self, rule: AuthorizationRule) -> AuthorizationRule:
        """Register a rule, rejecting duplicate rule ids."""
        if rule.rule_id in self._rules:
            raise RuleError(f"a rule with id {rule.rule_id!r} is already registered")
        self._rules[rule.rule_id] = rule
        return rule

    def remove_rule(self, rule_id: str) -> Optional[AuthorizationRule]:
        """Unregister a rule; returns it, or ``None`` when unknown."""
        self._provenance.pop(rule_id, None)
        return self._rules.pop(rule_id, None)

    @property
    def rules(self) -> Tuple[AuthorizationRule, ...]:
        """All registered rules."""
        return tuple(self._rules.values())

    def get_rule(self, rule_id: str) -> AuthorizationRule:
        """Return the rule with the given id."""
        try:
            return self._rules[rule_id]
        except KeyError:
            raise RuleError(f"no rule with id {rule_id!r} is registered") from None

    # ------------------------------------------------------------------ #
    # Derivation
    # ------------------------------------------------------------------ #
    def derive(
        self,
        base_authorizations: Iterable[LocationTemporalAuthorization],
        *,
        now: int = 0,
        rules: Optional[Iterable[AuthorizationRule]] = None,
    ) -> DerivationResult:
        """Run every (active) rule against the base authorizations it references.

        Rules whose base authorization id is not present among
        *base_authorizations* (and that are not already bound to a concrete
        base) derive nothing.  Structurally duplicate derived authorizations
        are reported once.
        """
        by_id: Dict[str, LocationTemporalAuthorization] = {
            auth.auth_id: auth for auth in base_authorizations
        }
        context = RuleContext(self._directory, self._hierarchy, now)
        selected = list(rules) if rules is not None else list(self._rules.values())

        batches: List[DerivedBatch] = []
        derived: List[LocationTemporalAuthorization] = []
        seen: Set[LocationTemporalAuthorization] = set()
        skipped: List[SkippedCombination] = []

        for rule in selected:
            base = rule.base
            if base is None or base.auth_id not in by_id:
                resolved = by_id.get(rule.base_id)
                if resolved is None and base is None:
                    continue
                if resolved is not None:
                    rule.bind_base(resolved)
            batch = rule.derive(context)
            batches.append(batch)
            skipped.extend(batch.skipped)
            fresh: List[str] = []
            for auth in batch.derived:
                fresh.append(auth.auth_id)
                if auth not in seen:
                    seen.add(auth)
                    derived.append(auth)
            self._provenance[rule.rule_id] = tuple(fresh)

        return DerivationResult(tuple(derived), tuple(batches), tuple(skipped))

    def derive_closure(
        self,
        base_authorizations: Iterable[LocationTemporalAuthorization],
        *,
        now: int = 0,
        max_rounds: int = 10,
    ) -> DerivationResult:
        """Iterate derivation until no new authorizations appear.

        Rules can chain — a rule may name as its base an authorization that is
        itself derived by another rule.  The closure repeatedly re-runs
        :meth:`derive` on the growing authorization set until a fixpoint,
        guarding against runaway chains with *max_rounds*.
        """
        if max_rounds < 1:
            raise RuleError(f"max_rounds must be at least 1, got {max_rounds}")
        universe: List[LocationTemporalAuthorization] = list(base_authorizations)
        known: Set[LocationTemporalAuthorization] = set(universe)
        all_batches: List[DerivedBatch] = []
        all_skipped: List[SkippedCombination] = []
        derived_total: List[LocationTemporalAuthorization] = []

        for _ in range(max_rounds):
            result = self.derive(universe, now=now)
            all_batches.extend(result.batches)
            all_skipped.extend(result.skipped)
            new = [auth for auth in result.derived if auth not in known]
            if not new:
                break
            for auth in new:
                known.add(auth)
                universe.append(auth)
                derived_total.append(auth)
        return DerivationResult(tuple(derived_total), tuple(all_batches), tuple(all_skipped))

    # ------------------------------------------------------------------ #
    # Provenance
    # ------------------------------------------------------------------ #
    def derived_auth_ids(self, rule_id: str) -> Tuple[str, ...]:
        """Ids of the authorizations produced by *rule_id* in the last run."""
        return self._provenance.get(rule_id, ())

    def revocation_set(self, base_auth_id: str, authorizations: Iterable[LocationTemporalAuthorization]) -> Tuple[LocationTemporalAuthorization, ...]:
        """Authorizations (from the given pool) that were derived from *base_auth_id*.

        When a base authorization is revoked, these are the derived
        authorizations that must be revoked with it.
        """
        return tuple(auth for auth in authorizations if auth.derived_from == base_auth_id)
