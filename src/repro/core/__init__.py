"""Core LTAM model: authorizations, rules, derivation, conflicts, accessibility.

This package is the paper's primary contribution (Sections 3–6): subjects,
location and location-temporal authorizations, access requests, the
authorization-rule machinery with its operator families, the derivation
engine, conflict detection/resolution, grant/departure durations, the
authorized-route check and Algorithm 1 for finding inaccessible locations.
"""

from repro.core.accessibility import AccessibilityReport, LocationTimes, TraceRow, find_inaccessible
from repro.core.authorization import (
    UNLIMITED_ENTRIES,
    LocationAuthorization,
    LocationTemporalAuthorization,
    departure_duration,
    grant_duration,
)
from repro.core.conflicts import (
    Conflict,
    ConflictKind,
    ResolutionStrategy,
    detect_conflicts,
    merge_pair,
    resolve_conflicts,
)
from repro.core.derivation import DerivationEngine, DerivationResult
from repro.core.grant import (
    AuthorizationIndex,
    RouteAuthorization,
    RouteStep,
    authorize_route,
    step_durations,
)
from repro.core.requests import AccessDecision, AccessRequest, DenialReason
from repro.core.rules import AuthorizationRule, DerivedBatch, OperatorTuple, RuleContext
from repro.core.subjects import Subject, SubjectDirectory, subject_name
from repro.core import operators

__all__ = [
    "Subject",
    "SubjectDirectory",
    "subject_name",
    "LocationAuthorization",
    "LocationTemporalAuthorization",
    "UNLIMITED_ENTRIES",
    "grant_duration",
    "departure_duration",
    "AccessRequest",
    "AccessDecision",
    "DenialReason",
    "OperatorTuple",
    "AuthorizationRule",
    "RuleContext",
    "DerivedBatch",
    "DerivationEngine",
    "DerivationResult",
    "Conflict",
    "ConflictKind",
    "ResolutionStrategy",
    "detect_conflicts",
    "resolve_conflicts",
    "merge_pair",
    "AuthorizationIndex",
    "RouteAuthorization",
    "RouteStep",
    "authorize_route",
    "step_durations",
    "AccessibilityReport",
    "LocationTimes",
    "TraceRow",
    "find_inaccessible",
    "operators",
]
