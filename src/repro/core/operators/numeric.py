"""Entry-count expressions for authorization rules (Section 4).

``exp_n`` *"specifies a numeric expression on the number of entries"* of the
derived authorizations.  The paper's examples simply write a constant (``2``),
so the constant expression is the workhorse; the module also provides the
identity (copy the base count, the default for unspecified rule elements) and
simple arithmetic adjustments, plus a wrapper for custom callables.

Expressions return either a positive integer or
:data:`~repro.core.authorization.UNLIMITED_ENTRIES`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Union

from repro.errors import RuleError
from repro.core.authorization import UNLIMITED_ENTRIES
from repro.temporal.chronon import FOREVER, TimePoint

__all__ = [
    "EntryExpression",
    "SameEntries",
    "ConstantEntries",
    "AddEntries",
    "ScaleEntries",
    "UnlimitedEntries",
    "CustomEntryExpression",
    "SAME_ENTRIES",
]


class EntryExpression:
    """Base class for entry-count expressions.

    Subclasses implement :meth:`apply`, receiving the base authorization's
    entry count and returning the derived entry count.
    """

    name = "entries"

    def apply(self, base_entries: TimePoint) -> TimePoint:
        raise NotImplementedError

    def __call__(self, base_entries: TimePoint) -> TimePoint:
        result = self.apply(base_entries)
        return _validate(result)

    def __repr__(self) -> str:
        return self.name


def _validate(value: TimePoint) -> TimePoint:
    if value is UNLIMITED_ENTRIES or value is FOREVER:
        return UNLIMITED_ENTRIES
    if isinstance(value, int) and not isinstance(value, bool) and value >= 1:
        return value
    raise RuleError(
        f"an entry expression must produce a positive integer or UNLIMITED_ENTRIES, got {value!r}"
    )


class SameEntries(EntryExpression):
    """Identity: the derived authorization keeps the base entry count (the default)."""

    name = "SAME_ENTRIES"

    def apply(self, base_entries: TimePoint) -> TimePoint:
        return base_entries

    def __eq__(self, other: object) -> bool:
        return isinstance(other, SameEntries)

    def __hash__(self) -> int:
        return hash(self.name)


SAME_ENTRIES = SameEntries()


@dataclass(frozen=True)
class ConstantEntries(EntryExpression):
    """A fixed entry count, the form the paper's examples use (``…, 2)``)."""

    value: int

    def __post_init__(self) -> None:
        _validate(self.value)

    @property
    def name(self) -> str:  # type: ignore[override]
        return f"entries={self.value}"

    def apply(self, base_entries: TimePoint) -> TimePoint:
        return self.value


class UnlimitedEntries(EntryExpression):
    """Grant an unlimited number of entries regardless of the base count."""

    name = "UNLIMITED"

    def apply(self, base_entries: TimePoint) -> TimePoint:
        return UNLIMITED_ENTRIES

    def __eq__(self, other: object) -> bool:
        return isinstance(other, UnlimitedEntries)

    def __hash__(self) -> int:
        return hash(self.name)


@dataclass(frozen=True)
class AddEntries(EntryExpression):
    """Add a (possibly negative) delta to the base count, flooring at one entry.

    Unlimited base counts stay unlimited.
    """

    delta: int

    @property
    def name(self) -> str:  # type: ignore[override]
        return f"entries+{self.delta}" if self.delta >= 0 else f"entries{self.delta}"

    def apply(self, base_entries: TimePoint) -> TimePoint:
        if base_entries is UNLIMITED_ENTRIES or base_entries is FOREVER:
            return UNLIMITED_ENTRIES
        return max(1, int(base_entries) + self.delta)


@dataclass(frozen=True)
class ScaleEntries(EntryExpression):
    """Multiply the base count by a positive factor, flooring at one entry."""

    factor: float

    def __post_init__(self) -> None:
        if self.factor <= 0:
            raise RuleError(f"scale factor must be positive, got {self.factor!r}")

    @property
    def name(self) -> str:  # type: ignore[override]
        return f"entries*{self.factor:g}"

    def apply(self, base_entries: TimePoint) -> TimePoint:
        if base_entries is UNLIMITED_ENTRIES or base_entries is FOREVER:
            return UNLIMITED_ENTRIES
        return max(1, int(int(base_entries) * self.factor))


@dataclass(frozen=True)
class CustomEntryExpression(EntryExpression):
    """Wrap an arbitrary callable ``f(base_entries) -> entries``."""

    func: Callable[[TimePoint], TimePoint]
    label: str = "CUSTOM"

    @property
    def name(self) -> str:  # type: ignore[override]
        return self.label

    def apply(self, base_entries: TimePoint) -> TimePoint:
        return self.func(base_entries)
