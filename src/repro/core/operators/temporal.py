"""Temporal operators for authorization rules (Section 4, Definition 5).

An authorization rule maps the entry and exit durations of its base
authorization to the durations of the derived authorizations through
*temporal operators*.  The paper defines four:

* **WHENEVER** — unary; returns the same time interval as the input.
* **WHENEVERNOT** — unary; given ``[t0, t1]`` returns ``[t_r, t0 - 1]`` and
  ``[t1 + 1, ∞]``, where ``t_r`` is the time from which the rule is valid.
* **UNION** — binary; given ``[t0, t1]`` and ``[t2, t3]`` returns ``[t0, t3]``
  when ``t2 ≤ t1`` and the two inputs otherwise.
* **INTERSECTION** — binary; given ``[t0, t1]`` and ``[t2, t3]`` returns
  ``[t2, t1]`` when ``t2 ≤ t1`` and NULL otherwise.

Custom operators may be defined as well ("which leads to greater degree of
flexibility"); :class:`CustomTemporalOperator` wraps any callable.

Because WHENEVERNOT can return two intervals, every operator returns a *list*
of intervals; rule derivation produces one derived authorization per
resulting interval combination.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple, Union

from repro.errors import RuleError
from repro.temporal.chronon import FOREVER
from repro.temporal.interval import TimeInterval

__all__ = [
    "TemporalOperator",
    "Whenever",
    "WheneverNot",
    "Union_",
    "Intersection",
    "CustomTemporalOperator",
    "WHENEVER",
]

IntervalLike = Union[TimeInterval, Tuple[int, int]]


def _coerce(interval: IntervalLike) -> TimeInterval:
    if isinstance(interval, TimeInterval):
        return interval
    if isinstance(interval, tuple) and len(interval) == 2:
        return TimeInterval(interval[0], interval[1])
    raise RuleError(f"cannot interpret {interval!r} as a time interval")


class TemporalOperator:
    """Base class for temporal operators.

    Subclasses implement :meth:`apply`, which receives the base
    authorization's interval (entry or exit duration) and the rule's validity
    start ``t_r`` and returns the derived intervals (possibly empty).
    """

    name = "temporal"

    def apply(self, base_interval: TimeInterval, rule_valid_from: int) -> List[TimeInterval]:
        raise NotImplementedError

    def __call__(self, base_interval: IntervalLike, rule_valid_from: int = 0) -> List[TimeInterval]:
        return self.apply(_coerce(base_interval), rule_valid_from)

    def __repr__(self) -> str:
        return self.name


class Whenever(TemporalOperator):
    """WHENEVER: the derived interval equals the base interval."""

    name = "WHENEVER"

    def apply(self, base_interval: TimeInterval, rule_valid_from: int) -> List[TimeInterval]:
        return [base_interval]

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Whenever)

    def __hash__(self) -> int:
        return hash(self.name)


#: Shared instance of the most common operator, used as the rule default.
WHENEVER = Whenever()


class WheneverNot(TemporalOperator):
    """WHENEVERNOT: the complement of the base interval from the rule's validity on.

    Given the base interval ``[t0, t1]``, returns ``[t_r, t0 - 1]`` (omitted
    when empty, e.g. when the base starts at or before ``t_r``) and
    ``[t1 + 1, ∞]`` (omitted when the base interval is unbounded).
    """

    name = "WHENEVERNOT"

    def apply(self, base_interval: TimeInterval, rule_valid_from: int) -> List[TimeInterval]:
        results: List[TimeInterval] = []
        if base_interval.start - 1 >= rule_valid_from:
            results.append(TimeInterval(rule_valid_from, base_interval.start - 1))
        if not base_interval.is_unbounded:
            results.append(TimeInterval(int(base_interval.end) + 1, FOREVER))
        return results

    def __eq__(self, other: object) -> bool:
        return isinstance(other, WheneverNot)

    def __hash__(self) -> int:
        return hash(self.name)


@dataclass(frozen=True)
class Union_(TemporalOperator):
    """UNION: merge the base interval with *other* when they meet, else keep both.

    The second operand is fixed when the rule is written (the paper's binary
    operators take one input from the base authorization and one from the
    rule definition).
    """

    other: TimeInterval
    name = "UNION"

    def __init__(self, other: IntervalLike) -> None:
        object.__setattr__(self, "other", _coerce(other))

    def apply(self, base_interval: TimeInterval, rule_valid_from: int) -> List[TimeInterval]:
        return base_interval.union(self.other)

    def __repr__(self) -> str:
        return f"UNION({self.other})"


@dataclass(frozen=True)
class Intersection(TemporalOperator):
    """INTERSECTION: restrict the base interval to *other*; empty when disjoint.

    Example 2 of the paper uses ``INTERSECTION([10, 30])`` on the base entry
    duration ``[5, 20]`` to derive ``[10, 20]``.
    """

    other: TimeInterval
    name = "INTERSECTION"

    def __init__(self, other: IntervalLike) -> None:
        object.__setattr__(self, "other", _coerce(other))

    def apply(self, base_interval: TimeInterval, rule_valid_from: int) -> List[TimeInterval]:
        overlap = base_interval.intersect(self.other)
        return [overlap] if overlap is not None else []

    def __repr__(self) -> str:
        return f"INTERSECTION({self.other})"


@dataclass(frozen=True)
class CustomTemporalOperator(TemporalOperator):
    """Wrap an arbitrary callable ``f(base_interval, rule_valid_from) -> intervals``.

    The callable may return a single interval, ``None`` (no derived interval),
    or a sequence of intervals.
    """

    func: Callable[[TimeInterval, int], Union[None, TimeInterval, Sequence[TimeInterval]]]
    label: str = "CUSTOM"

    @property
    def name(self) -> str:  # type: ignore[override]
        return self.label

    def apply(self, base_interval: TimeInterval, rule_valid_from: int) -> List[TimeInterval]:
        result = self.func(base_interval, rule_valid_from)
        if result is None:
            return []
        if isinstance(result, TimeInterval):
            return [result]
        return [_coerce(item) for item in result]

    def __repr__(self) -> str:
        return self.label
