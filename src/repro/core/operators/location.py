"""Location operators for authorization rules (Section 4).

``op_location`` *"generates a set of primitive locations for the derived
authorizations, given the primitive location l of a."*  The paper's Example 3
uses ``all_route_from(SCE.GO)``, which grants access to every location on the
route from a source to the base authorization's location.

Every operator receives the base location and the protected
:class:`~repro.locations.multilevel.LocationHierarchy` and returns a list of
primitive location names; one derived authorization is produced per returned
location.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Union

from repro.errors import RuleError
from repro.locations.location import location_name
from repro.locations.multilevel import LocationHierarchy
from repro.locations.routes import find_route, locations_on_routes

__all__ = [
    "LocationOperator",
    "SameLocation",
    "AllRouteFrom",
    "NeighborsOf",
    "MembersOfComposite",
    "LocationsWithTag",
    "EntryLocationsOf",
    "CustomLocationOperator",
    "SAME_LOCATION",
]


class LocationOperator:
    """Base class for location operators.

    Subclasses implement :meth:`apply`, receiving the base authorization's
    location name and the location hierarchy, and returning the derived
    primitive location names.
    """

    name = "location"

    def apply(self, base_location: str, hierarchy: LocationHierarchy) -> List[str]:
        raise NotImplementedError

    def __call__(self, base_location: str, hierarchy: LocationHierarchy) -> List[str]:
        return self.apply(location_name(base_location), hierarchy)

    def __repr__(self) -> str:
        return self.name


class SameLocation(LocationOperator):
    """Identity operator: the derived authorization keeps the base location.

    The default when ``op_location`` is unspecified; also what the paper's
    Example 1 writes explicitly as ``CAIS`` (the base location itself).
    """

    name = "SAME_LOCATION"

    def apply(self, base_location: str, hierarchy: LocationHierarchy) -> List[str]:
        return [base_location]

    def __eq__(self, other: object) -> bool:
        return isinstance(other, SameLocation)

    def __hash__(self) -> int:
        return hash(self.name)


SAME_LOCATION = SameLocation()


@dataclass(frozen=True)
class AllRouteFrom(LocationOperator):
    """The paper's ``all_route_from(source)``.

    Returns the locations on the route from *source* to the base
    authorization's location.  With ``shortest_only=True`` (default) a single
    shortest route is used; with ``shortest_only=False`` the union over all
    simple-path routes (optionally bounded by *max_length*) is returned.
    The base location itself is always included — a grant to reach a
    destination must include the destination.
    """

    source: str
    shortest_only: bool = True
    max_length: Optional[int] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "source", location_name(self.source))

    @property
    def name(self) -> str:  # type: ignore[override]
        return f"all_route_from({self.source})"

    def apply(self, base_location: str, hierarchy: LocationHierarchy) -> List[str]:
        covered = locations_on_routes(
            hierarchy,
            self.source,
            base_location,
            shortest_only=self.shortest_only,
            max_length=self.max_length,
        )
        covered.add(base_location)
        return sorted(covered)


@dataclass(frozen=True)
class NeighborsOf(LocationOperator):
    """The base location together with its direct neighbours.

    *include_base* controls whether the base location itself is part of the
    result (it is by default, matching the intuition that a grant to the
    surroundings includes the room itself).
    """

    include_base: bool = True

    @property
    def name(self) -> str:  # type: ignore[override]
        return f"neighbors_of(include_base={self.include_base})"

    def apply(self, base_location: str, hierarchy: LocationHierarchy) -> List[str]:
        derived = set(hierarchy.neighbors(base_location))
        if self.include_base:
            derived.add(base_location)
        return sorted(derived)


@dataclass(frozen=True)
class MembersOfComposite(LocationOperator):
    """All primitive locations of a named composite (ignores the base location).

    With ``composite=None`` the composite is the location graph that directly
    contains the base location — i.e. *"the whole school the room belongs
    to"*.
    """

    composite: Optional[str] = None

    @property
    def name(self) -> str:  # type: ignore[override]
        return f"members_of({self.composite or '<containing graph>'})"

    def apply(self, base_location: str, hierarchy: LocationHierarchy) -> List[str]:
        composite = self.composite or hierarchy.graph_of(base_location).name
        return sorted(hierarchy.members_of(composite))


@dataclass(frozen=True)
class LocationsWithTag(LocationOperator):
    """All primitive locations carrying a given tag (e.g. every ``"lab"``)."""

    tag: str

    @property
    def name(self) -> str:  # type: ignore[override]
        return f"locations_with_tag({self.tag})"

    def apply(self, base_location: str, hierarchy: LocationHierarchy) -> List[str]:
        return sorted(
            name
            for name, primitive in hierarchy.primitive_locations.items()
            if primitive.has_tag(self.tag)
        )


@dataclass(frozen=True)
class EntryLocationsOf(LocationOperator):
    """The entry locations of a composite (default: the root hierarchy).

    Handy for rules that always grant access to the building's entrances in
    addition to the destination itself.
    """

    composite: Optional[str] = None

    @property
    def name(self) -> str:  # type: ignore[override]
        return f"entry_locations_of({self.composite or '<root>'})"

    def apply(self, base_location: str, hierarchy: LocationHierarchy) -> List[str]:
        if self.composite is None:
            return sorted(hierarchy.entry_locations)
        return sorted(hierarchy.entry_locations_of(self.composite))


@dataclass(frozen=True)
class CustomLocationOperator(LocationOperator):
    """Wrap an arbitrary callable ``f(base_location, hierarchy) -> locations``."""

    func: Callable[[str, LocationHierarchy], Union[None, str, Sequence[str]]]
    label: str = "CUSTOM"

    @property
    def name(self) -> str:  # type: ignore[override]
        return self.label

    def apply(self, base_location: str, hierarchy: LocationHierarchy) -> List[str]:
        result = self.func(base_location, hierarchy)
        if result is None:
            return []
        if isinstance(result, str):
            return [location_name(result)]
        return [location_name(item) for item in result]
