"""Subject operators for authorization rules (Section 4).

``op_subject`` *"takes subject s of a, and derives the subjects for the
derived authorizations based on some relationships between subjects."*
The paper's Example 1 uses ``Supervisor_Of``, which queries the user profile
database.  This module provides that operator plus the obvious companions and
a wrapper for custom callables.

Every operator returns a (possibly empty) list of subject names; one derived
authorization is produced per returned subject.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence, Union

from repro.errors import RuleError
from repro.core.subjects import Subject, SubjectDirectory, subject_name

__all__ = [
    "SubjectOperator",
    "SameSubject",
    "SupervisorOf",
    "SubordinatesOf",
    "ManagementChainOf",
    "MembersOfGroup",
    "SubjectsWithRole",
    "CustomSubjectOperator",
    "SAME_SUBJECT",
]


class SubjectOperator:
    """Base class for subject operators.

    Subclasses implement :meth:`apply`, receiving the base authorization's
    subject name and the subject directory (the paper's user profile
    database) and returning the derived subject names.
    """

    name = "subject"

    def apply(self, base_subject: str, directory: SubjectDirectory) -> List[str]:
        raise NotImplementedError

    def __call__(self, base_subject: str, directory: SubjectDirectory) -> List[str]:
        return self.apply(subject_name(base_subject), directory)

    def __repr__(self) -> str:
        return self.name


class SameSubject(SubjectOperator):
    """Identity operator: the derived authorization keeps the base subject.

    This is the default when a rule leaves ``op_subject`` unspecified
    (Definition 5: unspecified rule elements are copied from the base).
    """

    name = "SAME_SUBJECT"

    def apply(self, base_subject: str, directory: SubjectDirectory) -> List[str]:
        return [base_subject]

    def __eq__(self, other: object) -> bool:
        return isinstance(other, SameSubject)

    def __hash__(self) -> int:
        return hash(self.name)


SAME_SUBJECT = SameSubject()


class SupervisorOf(SubjectOperator):
    """The paper's ``Supervisor_Of``: the direct supervisor of the base subject.

    Returns an empty list when the subject has no supervisor on record, in
    which case the rule simply derives nothing (Example 1's behaviour when
    Alice is between supervisors).
    """

    name = "Supervisor_Of"

    def apply(self, base_subject: str, directory: SubjectDirectory) -> List[str]:
        supervisor = directory.supervisor_of(base_subject)
        return [supervisor.name] if supervisor is not None else []

    def __eq__(self, other: object) -> bool:
        return isinstance(other, SupervisorOf)

    def __hash__(self) -> int:
        return hash(self.name)


class SubordinatesOf(SubjectOperator):
    """All subjects directly supervised by the base subject."""

    name = "Subordinates_Of"

    def apply(self, base_subject: str, directory: SubjectDirectory) -> List[str]:
        return [subject.name for subject in directory.subordinates_of(base_subject)]

    def __eq__(self, other: object) -> bool:
        return isinstance(other, SubordinatesOf)

    def __hash__(self) -> int:
        return hash(self.name)


class ManagementChainOf(SubjectOperator):
    """The whole supervision chain above the base subject (nearest first)."""

    name = "Management_Chain_Of"

    def apply(self, base_subject: str, directory: SubjectDirectory) -> List[str]:
        return [subject.name for subject in directory.management_chain_of(base_subject)]

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ManagementChainOf)

    def __hash__(self) -> int:
        return hash(self.name)


@dataclass(frozen=True)
class MembersOfGroup(SubjectOperator):
    """All members of a named group (ignores the base subject).

    Useful for rules of the form *"everyone in the cleaning crew gets the
    same access as the facilities manager"*.
    """

    group: str

    @property
    def name(self) -> str:  # type: ignore[override]
        return f"Members_Of_Group({self.group})"

    def apply(self, base_subject: str, directory: SubjectDirectory) -> List[str]:
        return [subject.name for subject in directory.members_of(self.group)]


@dataclass(frozen=True)
class SubjectsWithRole(SubjectOperator):
    """All subjects carrying a given role (ignores the base subject)."""

    role: str

    @property
    def name(self) -> str:  # type: ignore[override]
        return f"Subjects_With_Role({self.role})"

    def apply(self, base_subject: str, directory: SubjectDirectory) -> List[str]:
        return [subject.name for subject in directory.with_role(self.role)]


@dataclass(frozen=True)
class CustomSubjectOperator(SubjectOperator):
    """Wrap an arbitrary callable ``f(base_subject, directory) -> subjects``."""

    func: Callable[[str, SubjectDirectory], Union[None, str, Subject, Sequence[Union[str, Subject]]]]
    label: str = "CUSTOM"

    @property
    def name(self) -> str:  # type: ignore[override]
        return self.label

    def apply(self, base_subject: str, directory: SubjectDirectory) -> List[str]:
        result = self.func(base_subject, directory)
        if result is None:
            return []
        if isinstance(result, (str, Subject)):
            return [subject_name(result)]
        return [subject_name(item) for item in result]
