"""Operator library for authorization rules (Definition 5).

The tuple of operators ``OP = (op_entry, op_exit, op_subject, op_location,
exp_n)`` is assembled from the four operator families defined here:

* temporal operators (:mod:`repro.core.operators.temporal`) for the entry and
  exit durations,
* subject operators (:mod:`repro.core.operators.subject`),
* location operators (:mod:`repro.core.operators.location`), and
* entry-count expressions (:mod:`repro.core.operators.numeric`).
"""

from repro.core.operators.location import (
    AllRouteFrom,
    CustomLocationOperator,
    EntryLocationsOf,
    LocationOperator,
    LocationsWithTag,
    MembersOfComposite,
    NeighborsOf,
    SAME_LOCATION,
    SameLocation,
)
from repro.core.operators.numeric import (
    AddEntries,
    ConstantEntries,
    CustomEntryExpression,
    EntryExpression,
    SAME_ENTRIES,
    SameEntries,
    ScaleEntries,
    UnlimitedEntries,
)
from repro.core.operators.subject import (
    CustomSubjectOperator,
    ManagementChainOf,
    MembersOfGroup,
    SAME_SUBJECT,
    SameSubject,
    SubjectOperator,
    SubjectsWithRole,
    SubordinatesOf,
    SupervisorOf,
)
from repro.core.operators.temporal import (
    CustomTemporalOperator,
    Intersection,
    TemporalOperator,
    Union_,
    WHENEVER,
    Whenever,
    WheneverNot,
)

__all__ = [
    # temporal
    "TemporalOperator",
    "Whenever",
    "WheneverNot",
    "Union_",
    "Intersection",
    "CustomTemporalOperator",
    "WHENEVER",
    # subject
    "SubjectOperator",
    "SameSubject",
    "SupervisorOf",
    "SubordinatesOf",
    "ManagementChainOf",
    "MembersOfGroup",
    "SubjectsWithRole",
    "CustomSubjectOperator",
    "SAME_SUBJECT",
    # location
    "LocationOperator",
    "SameLocation",
    "AllRouteFrom",
    "NeighborsOf",
    "MembersOfComposite",
    "LocationsWithTag",
    "EntryLocationsOf",
    "CustomLocationOperator",
    "SAME_LOCATION",
    # numeric
    "EntryExpression",
    "SameEntries",
    "ConstantEntries",
    "AddEntries",
    "ScaleEntries",
    "UnlimitedEntries",
    "CustomEntryExpression",
    "SAME_ENTRIES",
]
