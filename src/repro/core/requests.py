"""Access requests and access-control decisions (Definitions 6 & 7).

An **access request** is the triple ``(t, s, l)``: at time *t*, subject *s*
requests access to location *l*.  The request is **authorized** when there is
at least one location-temporal authorization for ``(s, l)`` whose entry
duration contains *t* and whose entry budget has not been exhausted
(Definition 7).  The decision object produced by the access-control engine
records the outcome together with the matching authorization and a
machine-readable denial reason, which the audit log and the benchmarks use.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Optional, Tuple

from repro.errors import EnforcementError
from repro.core.authorization import LocationTemporalAuthorization
from repro.core.subjects import SubjectName, subject_name
from repro.locations.location import LocationName, location_name

__all__ = ["AccessRequest", "AccessDecision", "DenialReason"]

_request_id_counter = itertools.count(1)


@dataclass(frozen=True)
class AccessRequest:
    """Definition 6: at time *time*, *subject* requests access to *location*."""

    time: int
    subject: SubjectName
    location: LocationName
    request_id: str = field(default_factory=lambda: f"req-{next(_request_id_counter)}")

    def __post_init__(self) -> None:
        if not isinstance(self.time, int) or isinstance(self.time, bool) or self.time < 0:
            raise EnforcementError(f"request time must be a non-negative integer, got {self.time!r}")
        object.__setattr__(self, "subject", subject_name(self.subject))
        object.__setattr__(self, "location", location_name(self.location))

    def as_triple(self) -> Tuple[int, SubjectName, LocationName]:
        """Return the paper's ``(t, s, l)`` triple."""
        return (self.time, self.subject, self.location)

    def __str__(self) -> str:
        return f"({self.time}, {self.subject}, {self.location})"


class DenialReason(str, Enum):
    """Machine-readable reasons an access request may be denied."""

    #: No authorization at all exists for the (subject, location) pair.
    NO_AUTHORIZATION = "no_authorization"
    #: Authorizations exist but none has an entry duration containing the request time.
    OUTSIDE_ENTRY_DURATION = "outside_entry_duration"
    #: A matching authorization exists but its entry budget is exhausted.
    ENTRY_LIMIT_EXHAUSTED = "entry_limit_exhausted"
    #: The subject is already inside the requested location.
    ALREADY_INSIDE = "already_inside"
    #: The location is not a primitive location of the protected hierarchy.
    UNKNOWN_LOCATION = "unknown_location"
    #: The location is at its occupancy limit (CapacityStage extension).
    OVER_CAPACITY = "over_capacity"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class AccessDecision:
    """Outcome of evaluating an access request (Definition 7).

    Parameters
    ----------
    request:
        The evaluated access request.
    granted:
        Whether the request is authorized.
    authorization:
        The matching authorization when granted, else ``None``.
    reason:
        The denial reason when not granted, else ``None``.
    entries_used:
        Number of entries the subject had already used under the matching
        authorization at decision time (0 when denied without a match).
    """

    request: AccessRequest
    granted: bool
    authorization: Optional[LocationTemporalAuthorization] = None
    reason: Optional[DenialReason] = None
    entries_used: int = 0

    def __post_init__(self) -> None:
        if self.granted and self.authorization is None:
            raise EnforcementError("a granted decision must carry the matching authorization")
        if self.granted and self.reason is not None:
            raise EnforcementError("a granted decision cannot carry a denial reason")
        if not self.granted and self.reason is None:
            raise EnforcementError("a denied decision must carry a denial reason")

    @classmethod
    def grant(
        cls,
        request: AccessRequest,
        authorization: LocationTemporalAuthorization,
        *,
        entries_used: int = 0,
    ) -> "AccessDecision":
        """Build a granting decision."""
        return cls(request, True, authorization, None, entries_used)

    @classmethod
    def deny(
        cls,
        request: AccessRequest,
        reason: DenialReason,
        *,
        entries_used: int = 0,
    ) -> "AccessDecision":
        """Build a denying decision."""
        return cls(request, False, None, reason, entries_used)

    def __bool__(self) -> bool:
        return self.granted

    def __str__(self) -> str:
        if self.granted:
            return f"GRANT {self.request} via {self.authorization.auth_id}"
        return f"DENY {self.request} ({self.reason})"
