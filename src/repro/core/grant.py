"""Grant/departure durations of routes and the authorized-route check (Section 6).

Given an access-request duration ``[t_p, t_q]``, a subject and a route
``⟨l1, …, lk⟩``, the route is **authorized** when (Section 6):

* the grant duration and departure duration of the subject for ``l1`` in
  ``[t_p, t_q]`` are not null;
* for every intermediate location ``l_i`` (``2 ≤ i < k``), the grant duration
  and departure duration of ``l_i`` *within the departure duration of
  ``l_{i-1}``* are not null; and
* the grant duration of the destination ``l_k`` within the departure duration
  of ``l_{k-1}`` is not null.

The paper states these conditions for a single authorization per location;
real authorization databases hold several, so the implementation generalizes
by unioning the per-authorization grant and departure durations into interval
sets — exactly what Algorithm 1 does for the whole graph — and the route is
authorized when those sets are non-empty at every step.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from repro.errors import AuthorizationError
from repro.core.authorization import LocationTemporalAuthorization, departure_duration, grant_duration
from repro.core.subjects import subject_name
from repro.locations.location import location_name
from repro.locations.routes import Route
from repro.temporal.chronon import FOREVER
from repro.temporal.interval import TimeInterval
from repro.temporal.interval_set import IntervalSet

__all__ = [
    "AuthorizationIndex",
    "RouteStep",
    "RouteAuthorization",
    "step_durations",
    "authorize_route",
]


class AuthorizationIndex:
    """Group authorizations by ``(subject, location)`` for fast lookup.

    The grant-duration machinery and Algorithm 1 both need "all
    authorizations of subject *s* for location *l*"; this small index avoids
    rescanning the full authorization list at every step.  The persistent
    authorization database (:mod:`repro.storage.authorization_db`) offers the
    same ``for_subject_location`` interface.
    """

    def __init__(self, authorizations: Iterable[LocationTemporalAuthorization] = ()) -> None:
        self._by_key: Dict[Tuple[str, str], List[LocationTemporalAuthorization]] = {}
        for auth in authorizations:
            self.add(auth)

    def add(self, authorization: LocationTemporalAuthorization) -> None:
        """Index one authorization."""
        key = (authorization.subject, authorization.location)
        self._by_key.setdefault(key, []).append(authorization)

    def for_subject_location(self, subject: str, location: str) -> List[LocationTemporalAuthorization]:
        """All authorizations of *subject* for *location*."""
        return list(self._by_key.get((subject_name(subject), location_name(location)), ()))

    def for_subject(self, subject: str) -> List[LocationTemporalAuthorization]:
        """All authorizations of *subject*."""
        name = subject_name(subject)
        result: List[LocationTemporalAuthorization] = []
        for (subj, _), auths in self._by_key.items():
            if subj == name:
                result.extend(auths)
        return result

    def __len__(self) -> int:
        return sum(len(v) for v in self._by_key.values())


AuthSource = Union[AuthorizationIndex, Iterable[LocationTemporalAuthorization]]


def _as_index(source: AuthSource) -> "AuthorizationIndex | object":
    if hasattr(source, "for_subject_location"):
        return source
    return AuthorizationIndex(source)  # type: ignore[arg-type]


@dataclass(frozen=True)
class RouteStep:
    """Grant and departure durations computed for one location along a route."""

    location: str
    window: IntervalSet
    grant: IntervalSet
    departure: IntervalSet

    @property
    def reachable(self) -> bool:
        """``True`` when the location can be entered within its window."""
        return not self.grant.is_empty


@dataclass(frozen=True)
class RouteAuthorization:
    """Result of checking a route for a subject within a request duration."""

    route: Route
    subject: str
    request_duration: TimeInterval
    authorized: bool
    steps: Tuple[RouteStep, ...]

    @property
    def grant_duration(self) -> IntervalSet:
        """The route's grant duration: the grant set of its first location."""
        return self.steps[0].grant if self.steps else IntervalSet.empty()

    @property
    def departure_duration(self) -> IntervalSet:
        """The route's departure duration: the departure set of its destination."""
        return self.steps[-1].departure if self.steps else IntervalSet.empty()

    @property
    def blocking_location(self) -> Optional[str]:
        """The first location that cannot be entered, or ``None`` when authorized."""
        for step in self.steps:
            if not step.reachable:
                return step.location
        return None


def step_durations(
    authorizations: Sequence[LocationTemporalAuthorization],
    window: IntervalSet,
) -> Tuple[IntervalSet, IntervalSet]:
    """Union of grant and departure durations of *authorizations* over *window*.

    For every interval ``[t_p, t_q]`` of the window and every authorization,
    the grant duration ``[max(t_p, t_i_s), min(t_q, t_i_e)]`` and (when the
    grant is non-null) the departure duration ``[max(t_p, t_o_s), t_o_e]`` are
    accumulated — the same inner loop as lines 19–26 of Algorithm 1.
    """
    grant_set = IntervalSet.empty()
    departure_set = IntervalSet.empty()
    for piece in window:
        for auth in authorizations:
            grant = grant_duration(auth, piece)
            if grant is None:
                continue
            grant_set = grant_set.union(grant)
            departure = departure_duration(auth, piece)
            if departure is not None:
                departure_set = departure_set.union(departure)
    return grant_set, departure_set


def authorize_route(
    route: "Route | Sequence[str]",
    subject: str,
    authorizations: AuthSource,
    *,
    request_duration: Optional[TimeInterval] = None,
) -> RouteAuthorization:
    """Check whether *route* is authorized for *subject* within *request_duration*.

    Parameters
    ----------
    route:
        The route to check (a :class:`Route` or a sequence of location names).
    subject:
        The requesting subject.
    authorizations:
        Either an :class:`AuthorizationIndex`-like object (anything with
        ``for_subject_location``) or a plain iterable of authorizations.
    request_duration:
        The access-request duration ``[t_p, t_q]``; defaults to ``[0, ∞)`` as
        in Definition 8.
    """
    resolved_route = route if isinstance(route, Route) else Route(tuple(route))
    subject = subject_name(subject)
    window_interval = request_duration if request_duration is not None else TimeInterval(0, FOREVER)
    index = _as_index(authorizations)

    steps: List[RouteStep] = []
    window = IntervalSet([window_interval])
    authorized = True
    for position, location in enumerate(resolved_route):
        if window.is_empty:
            # The previous location cannot be left: everything further is
            # unreachable along this route.
            steps.append(RouteStep(location, window, IntervalSet.empty(), IntervalSet.empty()))
            authorized = False
            continue
        auths = index.for_subject_location(subject, location)
        grant_set, departure_set = step_durations(auths, window)
        steps.append(RouteStep(location, window, grant_set, departure_set))
        if grant_set.is_empty:
            authorized = False
        is_last = position == len(resolved_route) - 1
        if not is_last and departure_set.is_empty:
            authorized = False
        window = departure_set

    return RouteAuthorization(resolved_route, subject, window_interval, authorized, tuple(steps))
