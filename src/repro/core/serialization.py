"""JSON (de)serialization of authorizations and authorization databases.

Deployments need to version and exchange their authorization sets (the
administrator writes them, auditors review them, the CLI loads them).  The
document format is a plain JSON list of authorization objects::

    [
      {
        "auth_id": "A1",
        "subject": "Alice",
        "location": "CAIS",
        "entry_duration": [10, 20],
        "exit_duration": [10, 50],
        "max_entries": 2,
        "created_at": 0,
        "derived_from": null,
        "rule_id": null
      },
      ...
    ]

``null`` stands for an unbounded interval end and for an unlimited entry
budget, mirroring the SQLite schema.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional

from repro.errors import InvalidAuthorizationError
from repro.core.authorization import UNLIMITED_ENTRIES, LocationTemporalAuthorization
from repro.temporal.chronon import FOREVER
from repro.temporal.interval import TimeInterval

__all__ = [
    "authorization_to_dict",
    "authorization_from_dict",
    "dumps_authorizations",
    "loads_authorizations",
    "save_authorizations",
    "load_authorizations",
]


def _interval_to_pair(interval: TimeInterval) -> List[Optional[int]]:
    return [interval.start, None if interval.is_unbounded else int(interval.end)]


def _interval_from_pair(pair: Any, *, what: str) -> TimeInterval:
    if not isinstance(pair, (list, tuple)) or len(pair) != 2:
        raise InvalidAuthorizationError(f"{what} must be a [start, end] pair, got {pair!r}")
    start, end = pair
    return TimeInterval(start, FOREVER if end is None else end)


def authorization_to_dict(authorization: LocationTemporalAuthorization) -> Dict[str, Any]:
    """Convert one authorization to its JSON-compatible dictionary form."""
    return {
        "auth_id": authorization.auth_id,
        "subject": authorization.subject,
        "location": authorization.location,
        "entry_duration": _interval_to_pair(authorization.entry_duration),
        "exit_duration": _interval_to_pair(authorization.exit_duration),
        "max_entries": None
        if authorization.max_entries is UNLIMITED_ENTRIES
        else int(authorization.max_entries),
        "created_at": authorization.created_at,
        "derived_from": authorization.derived_from,
        "rule_id": authorization.rule_id,
    }


def authorization_from_dict(document: Dict[str, Any]) -> LocationTemporalAuthorization:
    """Rebuild one authorization from its dictionary form."""
    if not isinstance(document, dict):
        raise InvalidAuthorizationError(f"authorization document must be an object, got {document!r}")
    try:
        subject = document["subject"]
        location = document["location"]
    except KeyError as exc:
        raise InvalidAuthorizationError(f"authorization document misses field {exc}") from None
    max_entries = document.get("max_entries")
    return LocationTemporalAuthorization(
        (subject, location),
        _interval_from_pair(document.get("entry_duration", [0, None]), what="entry_duration"),
        _interval_from_pair(document.get("exit_duration", [0, None]), what="exit_duration")
        if document.get("exit_duration") is not None
        else None,
        UNLIMITED_ENTRIES if max_entries is None else max_entries,
        created_at=document.get("created_at", 0),
        auth_id=document.get("auth_id"),
        derived_from=document.get("derived_from"),
        rule_id=document.get("rule_id"),
    )


def dumps_authorizations(
    authorizations: Iterable[LocationTemporalAuthorization], *, indent: int = 2
) -> str:
    """Serialize authorizations to a JSON string (stable ordering by id)."""
    documents = sorted(
        (authorization_to_dict(auth) for auth in authorizations), key=lambda d: str(d["auth_id"])
    )
    return json.dumps(documents, indent=indent, sort_keys=True)


def loads_authorizations(text: str) -> List[LocationTemporalAuthorization]:
    """Deserialize authorizations from a JSON string."""
    documents = json.loads(text)
    if not isinstance(documents, list):
        raise InvalidAuthorizationError("an authorization file must contain a JSON list")
    return [authorization_from_dict(document) for document in documents]


def save_authorizations(
    authorizations: Iterable[LocationTemporalAuthorization], path: str
) -> None:
    """Write the JSON document for *authorizations* to *path*."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(dumps_authorizations(authorizations))


def load_authorizations(path: str) -> List[LocationTemporalAuthorization]:
    """Read authorizations from the JSON document at *path*."""
    with open(path, "r", encoding="utf-8") as handle:
        return loads_authorizations(handle.read())
