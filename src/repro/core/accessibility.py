"""Finding inaccessible locations (Section 6, Algorithm 1).

A location is **inaccessible** to a subject (Definition 8) when there is no
authorized route, with access request duration ``[0, ∞)``, that covers it
from every entry location of the graph — i.e. no way to legally walk from an
entrance to the location, entering every intermediate location during its
entry duration and leaving it during its exit duration.

Algorithm 1 computes the inaccessible set by fixpoint propagation:

1. every location gets an *overall grant time* ``T_g`` and an *overall
   departure time* ``T_d`` (interval sets), initially null;
2. entry locations seed their ``T_g``/``T_d`` directly from their
   authorizations;
3. whenever a location's ``T_d`` changes, its neighbours recompute their
   ``T_g``/``T_d`` from the union of their neighbours' departure times;
4. on convergence, the inaccessible locations are exactly those with a null
   ``T_g``.

The implementation below follows the paper's pseudo-code line by line
(including the ``flag`` bookkeeping) and additionally records a step-by-step
trace so that Table 2 of the paper can be regenerated.  A brute-force
route-enumeration oracle for cross-checking lives in
:mod:`repro.baselines.brute_force`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from repro.errors import AuthorizationError
from repro.core.authorization import LocationTemporalAuthorization
from repro.core.grant import AuthorizationIndex, AuthSource, _as_index, step_durations
from repro.core.subjects import subject_name
from repro.locations.graph import LocationGraph
from repro.locations.location import LocationName
from repro.locations.multilevel import LocationHierarchy
from repro.temporal.interval_set import IntervalSet

__all__ = ["LocationTimes", "TraceRow", "AccessibilityReport", "find_inaccessible"]


@dataclass(frozen=True)
class LocationTimes:
    """The overall grant and departure times of one location."""

    location: LocationName
    grant: IntervalSet
    departure: IntervalSet

    @property
    def accessible(self) -> bool:
        """``True`` when the overall grant time is non-null."""
        return not self.grant.is_empty


@dataclass(frozen=True)
class TraceRow:
    """One row of the Table 2 style trace: the state after updating *updated*."""

    step: int
    updated: LocationName
    flags: Mapping[LocationName, bool]
    grants: Mapping[LocationName, IntervalSet]
    departures: Mapping[LocationName, IntervalSet]

    def describe(self) -> str:
        """Render the row roughly the way Table 2 of the paper does."""
        cells = []
        for location in sorted(self.flags):
            flag = "T" if self.flags[location] else "F"
            grant = self.grants[location]
            departure = self.departures[location]
            cells.append(f"{location}: flag={flag} Tg={grant} Td={departure}")
        return f"Update {self.updated}: " + " | ".join(cells)


@dataclass(frozen=True)
class AccessibilityReport:
    """Result of running Algorithm 1 for one subject over one hierarchy."""

    subject: str
    inaccessible: FrozenSet[LocationName]
    accessible: FrozenSet[LocationName]
    times: Mapping[LocationName, LocationTimes]
    trace: Tuple[TraceRow, ...]
    iterations: int

    def is_inaccessible(self, location: str) -> bool:
        """Return ``True`` if *location* is inaccessible to the subject."""
        return location in self.inaccessible

    def grant_time(self, location: str) -> IntervalSet:
        """The overall grant time ``T_g`` computed for *location*."""
        return self.times[location].grant

    def departure_time(self, location: str) -> IntervalSet:
        """The overall departure time ``T_d`` computed for *location*."""
        return self.times[location].departure


HierarchyLike = Union[LocationHierarchy, LocationGraph]


def _as_hierarchy(graph: HierarchyLike) -> LocationHierarchy:
    if isinstance(graph, LocationHierarchy):
        return graph
    return LocationHierarchy(graph)


def find_inaccessible(
    graph: HierarchyLike,
    subject: str,
    authorizations: AuthSource,
    *,
    trace: bool = False,
    order_key: Optional[Callable[[LocationName], object]] = None,
) -> AccessibilityReport:
    """Run Algorithm 1: find every location inaccessible to *subject*.

    Parameters
    ----------
    graph:
        The protected location graph, multilevel location graph (wrapped in a
        :class:`LocationHierarchy`) or hierarchy.
    subject:
        The subject whose authorizations are considered.
    authorizations:
        An authorization source (anything with ``for_subject_location`` — the
        authorization database qualifies — or a plain iterable of
        authorizations).  Authorizations of other subjects are ignored.
    trace:
        Record a Table 2 style trace row after every location update.
    order_key:
        Optional sort key deciding the order in which flagged locations are
        processed within a sweep (the result does not depend on it; the trace
        does).  Defaults to alphabetical order.
    """
    hierarchy = _as_hierarchy(graph)
    subject = subject_name(subject)
    index = _as_index(authorizations)
    key = order_key or (lambda name: name)

    locations = sorted(hierarchy.primitive_names)
    grant: Dict[LocationName, IntervalSet] = {l: IntervalSet.empty() for l in locations}
    departure: Dict[LocationName, IntervalSet] = {l: IntervalSet.empty() for l in locations}
    flag: Dict[LocationName, bool] = {l: False for l in locations}

    rows: List[TraceRow] = []
    step = 0

    def record(updated: LocationName) -> None:
        nonlocal step
        if not trace:
            return
        step += 1
        rows.append(
            TraceRow(
                step,
                updated,
                dict(flag),
                {l: grant[l] for l in locations},
                {l: departure[l] for l in locations},
            )
        )

    # Lines 2-13: seed the entry locations directly from their authorizations.
    for entry in sorted(hierarchy.entry_locations, key=key):
        for auth in index.for_subject_location(subject, entry):
            grant[entry] = grant[entry].union(auth.entry_duration)
            departure[entry] = departure[entry].union(auth.exit_duration)
        flag[entry] = False  # their admissible time will not change further
        if not departure[entry].is_empty:
            for neighbor in hierarchy.neighbors(entry):
                flag[neighbor] = True
        record(entry)

    # Lines 14-34: propagate until no location is flagged.
    iterations = 0
    while any(flag.values()):
        iterations += 1
        flagged = sorted((l for l in locations if flag[l]), key=key)
        for location in flagged:
            if not flag[location]:
                # The flag may have been cleared by an earlier update in this sweep.
                continue
            flag[location] = False
            old_departure = departure[location]
            neighbor_departures = IntervalSet.empty()
            for neighbor in hierarchy.neighbors(location):
                neighbor_departures = neighbor_departures.union(departure[neighbor])
            auths = index.for_subject_location(subject, location)
            new_grant, new_departure = step_durations(auths, neighbor_departures)
            grant[location] = grant[location].union(new_grant)
            departure[location] = departure[location].union(new_departure)
            if departure[location] != old_departure:
                # Lines 28-32: a changed departure time wakes up every
                # neighbour, entry locations included (the paper's Table 2
                # re-examines the entry location A after B changes).
                for neighbor in hierarchy.neighbors(location):
                    flag[neighbor] = True
            record(location)

    times = {
        location: LocationTimes(location, grant[location], departure[location])
        for location in locations
    }
    inaccessible = frozenset(l for l in locations if grant[l].is_empty)
    accessible = frozenset(locations) - inaccessible
    return AccessibilityReport(
        subject,
        inaccessible,
        accessible,
        times,
        tuple(rows),
        iterations,
    )
