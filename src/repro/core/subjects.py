"""Subjects (users) and the organizational relationships between them.

Authorizations are granted to *subjects* (Definition 3).  Authorization rules
derive new authorizations through relationships between subjects — the paper's
Example 1 uses a ``Supervisor_Of`` operator that *"returns the supervisor of a
user by querying the user profile database"*.  This module defines the subject
objects and the in-memory organizational directory those operators query; the
persistent user-profile database of Figure 3 lives in
:mod:`repro.storage.profile_db` and wraps a :class:`SubjectDirectory`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Iterator, List, Mapping, Optional, Set, Union

from repro.errors import UnknownSubjectError, AuthorizationError

__all__ = ["Subject", "SubjectName", "subject_name", "SubjectDirectory"]

SubjectName = str


def subject_name(value: "Subject | str") -> str:
    """Return the plain string identifier of a subject-like value."""
    if isinstance(value, Subject):
        return value.name
    if not isinstance(value, str) or not value or value.strip() != value:
        raise AuthorizationError(f"subject name must be a non-empty trimmed string, got {value!r}")
    return value


@dataclass(frozen=True)
class Subject:
    """A user who requests access to locations.

    Parameters
    ----------
    name:
        Unique identifier (``"Alice"``).
    display_name:
        Optional human-readable name.
    roles:
        Role names, usable by subject operators (e.g. ``"visitor"``,
        ``"security_officer"``).
    attributes:
        Free-form profile attributes as an immutable mapping; stored as a
        sorted tuple of pairs so subjects stay hashable.
    """

    name: SubjectName
    display_name: str = ""
    roles: FrozenSet[str] = field(default_factory=frozenset)
    attributes: tuple = field(default_factory=tuple)

    def __post_init__(self) -> None:
        subject_name(self.name)
        object.__setattr__(self, "roles", frozenset(self.roles))
        if isinstance(self.attributes, Mapping):
            object.__setattr__(self, "attributes", tuple(sorted(self.attributes.items())))
        else:
            object.__setattr__(self, "attributes", tuple(self.attributes))

    def has_role(self, role: str) -> bool:
        """Return ``True`` if the subject carries *role*."""
        return role in self.roles

    def attribute(self, key: str, default: object = None) -> object:
        """Return the profile attribute *key*, or *default*."""
        for attr_key, value in self.attributes:
            if attr_key == key:
                return value
        return default

    def __str__(self) -> str:
        return self.name


class SubjectDirectory:
    """Registry of subjects plus supervisor and group relationships.

    The directory is the source the subject operators of Section 4 query:
    ``Supervisor_Of``, ``Subordinates_Of`` and ``Members_Of_Group`` all
    resolve against it.
    """

    def __init__(self) -> None:
        self._subjects: Dict[SubjectName, Subject] = {}
        #: subject -> supervisor (at most one supervisor per subject)
        self._supervisor: Dict[SubjectName, SubjectName] = {}
        #: group name -> member subject names
        self._groups: Dict[str, Set[SubjectName]] = {}

    # ------------------------------------------------------------------ #
    # Registration
    # ------------------------------------------------------------------ #
    def add_subject(self, subject: Union[Subject, str], **kwargs) -> Subject:
        """Register a subject (idempotent for identical re-registration).

        Plain strings are wrapped in :class:`Subject`; keyword arguments are
        forwarded to the constructor in that case.
        """
        resolved = subject if isinstance(subject, Subject) else Subject(subject_name(subject), **kwargs)
        existing = self._subjects.get(resolved.name)
        if existing is not None and existing != resolved:
            raise AuthorizationError(
                f"subject {resolved.name!r} is already registered with a different profile"
            )
        self._subjects[resolved.name] = resolved
        return resolved

    def set_supervisor(self, subordinate: Union[Subject, str], supervisor: Union[Subject, str]) -> None:
        """Record that *supervisor* supervises *subordinate* (both auto-registered).

        Cycles in the supervision chain are rejected because operators such
        as ``ManagementChainOf`` walk the chain upwards.
        """
        sub = self.add_subject(subordinate) if subject_name(subordinate) not in self._subjects else self._subjects[subject_name(subordinate)]
        sup = self.add_subject(supervisor) if subject_name(supervisor) not in self._subjects else self._subjects[subject_name(supervisor)]
        if sub.name == sup.name:
            raise AuthorizationError(f"subject {sub.name!r} cannot supervise itself")
        # reject cycles: walking up from the supervisor must not reach the subordinate
        current: Optional[str] = sup.name
        while current is not None:
            if current == sub.name:
                raise AuthorizationError(
                    f"setting {sup.name!r} as supervisor of {sub.name!r} would create a cycle"
                )
            current = self._supervisor.get(current)
        self._supervisor[sub.name] = sup.name

    def add_to_group(self, group: str, *members: Union[Subject, str]) -> None:
        """Add subjects to a named group, registering them if needed."""
        if not group or group.strip() != group:
            raise AuthorizationError(f"group name must be a non-empty trimmed string, got {group!r}")
        bucket = self._groups.setdefault(group, set())
        for member in members:
            name = subject_name(member)
            if name not in self._subjects:
                self.add_subject(name)
            bucket.add(name)

    # ------------------------------------------------------------------ #
    # Lookup
    # ------------------------------------------------------------------ #
    def get(self, name: Union[Subject, str]) -> Subject:
        """Return the subject called *name*."""
        key = subject_name(name)
        try:
            return self._subjects[key]
        except KeyError:
            raise UnknownSubjectError(f"unknown subject {key!r}") from None

    def __contains__(self, name: object) -> bool:
        try:
            return subject_name(name) in self._subjects  # type: ignore[arg-type]
        except Exception:
            return False

    def __iter__(self) -> Iterator[Subject]:
        return iter(self._subjects.values())

    def __len__(self) -> int:
        return len(self._subjects)

    @property
    def subject_names(self) -> FrozenSet[SubjectName]:
        """Names of all registered subjects."""
        return frozenset(self._subjects)

    def supervisor_of(self, subject: Union[Subject, str]) -> Optional[Subject]:
        """The direct supervisor of *subject*, or ``None``."""
        name = subject_name(subject)
        if name not in self._subjects:
            raise UnknownSubjectError(f"unknown subject {name!r}")
        supervisor = self._supervisor.get(name)
        return self._subjects[supervisor] if supervisor is not None else None

    def subordinates_of(self, subject: Union[Subject, str]) -> List[Subject]:
        """All subjects directly supervised by *subject*."""
        name = subject_name(subject)
        if name not in self._subjects:
            raise UnknownSubjectError(f"unknown subject {name!r}")
        return sorted(
            (self._subjects[sub] for sub, sup in self._supervisor.items() if sup == name),
            key=lambda s: s.name,
        )

    def management_chain_of(self, subject: Union[Subject, str]) -> List[Subject]:
        """The supervision chain above *subject*, nearest supervisor first."""
        chain: List[Subject] = []
        current = self.supervisor_of(subject)
        while current is not None:
            chain.append(current)
            current = self.supervisor_of(current)
        return chain

    def groups(self) -> FrozenSet[str]:
        """Names of all registered groups."""
        return frozenset(self._groups)

    def members_of(self, group: str) -> List[Subject]:
        """Members of *group* (empty list for an unknown group)."""
        return sorted((self._subjects[name] for name in self._groups.get(group, ())), key=lambda s: s.name)

    def groups_of(self, subject: Union[Subject, str]) -> FrozenSet[str]:
        """Groups the subject belongs to."""
        name = subject_name(subject)
        if name not in self._subjects:
            raise UnknownSubjectError(f"unknown subject {name!r}")
        return frozenset(group for group, members in self._groups.items() if name in members)

    def with_role(self, role: str) -> List[Subject]:
        """All subjects carrying *role*."""
        return sorted((s for s in self._subjects.values() if s.has_role(role)), key=lambda s: s.name)
