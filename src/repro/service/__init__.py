"""repro.service — the PDP/PEP over a network boundary.

Architecture note
-----------------

Everything before this package runs the engine *embedded*: trackers, policy
clients and administrators share one process with the
:class:`~repro.api.builder.Ltam` engine.  The XACML-style deployment the
PR 1 redesign was built for puts the PDP behind a **service boundary**
instead — one authorization server, a fleet of remote enforcement points —
and this package is that boundary, closing the ROADMAP's "multi-process
ingest" item:

.. code-block:: text

    tracker proc A ──observe_batch──▶ ┌──────────────────────────────┐
    tracker proc B ──observe_batch──▶ │  LtamServer  (asyncio, TCP)  │
                                      │   ├─ MovementIngestor ──────▶│ one writer,
    gate client ──decide/decide_many▶ │   ├─ DecisionCache           │ group commits,
    admin client ──query/checkpoint─▶ │   └─ Ltam (PDP/PEP/monitor)  │ scheduled
                                      └──────────────────────────────┘ checkpoints

* :mod:`repro.service.protocol` — the baseline wire codec:
  newline-delimited JSON frames round-tripping requests,
  :class:`~repro.api.decision.Decision` objects (per-stage traces on
  request), movement records, alerts, query results, checkpoint receipts,
  and **typed errors** (a remote ``StorageError`` raises as
  ``StorageError``, a rejected ingest batch comes back with its records
  for retry/dead-lettering).
* :mod:`repro.service.wire` — the negotiated **compact binary format**:
  stdlib ``struct``-packed, length-prefixed frames with per-connection
  string interning (subject/location/action ids shrink to 3-byte refs on
  repetition).  A connection starts as NDJSON and upgrades through one
  ``hello`` op; peers that never ask keep speaking NDJSON, and a binary
  client in front of a JSON-only server falls back transparently — no
  flag day.  Decision responses are **trace-elided by default** (outcome,
  reason, entries used, admitting authorization; per-stage traces only on
  ``trace=true``), and ``decide_many`` is vectorized end to end: one
  frame in, one batched cache pass over pre-serialized fragments (JSON
  and binary forms both cached), one frame out — on the server and on the
  fabric router's scatter-gather alike.  The decisions/sec/core budget is
  asserted by ``benchmarks/test_bench_wire.py``.
* :mod:`repro.service.server` — :class:`LtamServer`, a stdlib-only asyncio
  server over an embedded engine.  Ops: ``decide``, ``decide_many``,
  ``observe``, ``observe_batch`` (feeding the existing
  :class:`~repro.storage.ingest.MovementIngestor`; ``monitor`` and raw
  ``record`` sinks), ``query``, ``checkpoint``, ``health``.
* :mod:`repro.service.cache` — :class:`DecisionCache`: decisions keyed by
  (subject, location, action, time bucket), served without re-running the
  pipeline or re-encoding the response; **event-wise invalidation** via the
  movement database's mutation notifications evicts only the locations a
  movement can affect, so hot read traffic stays parity-correct under
  interleaved ingest.
* :mod:`repro.service.client` — the blocking :class:`ServiceClient`, a
  :class:`ConnectionPool`, and :class:`RemotePdp`/:class:`RemotePep`
  mirroring the embedded APIs; ``RemotePep.ingestor()`` gives tracker
  adapters the same streaming interface they had in-process.

Replicated serving (the invalidation bus)
-----------------------------------------

One server saturates one process; replicated serving runs **several**
``LtamServer`` replicas over one SQLite file, with :mod:`repro.service.bus`
keeping their decision caches coherent:

.. code-block:: text

    gate fleet ──decide/enforce──▶ replica A ──┐ publish/subscribe
    tracker fleet ──observe_batch▶ (writer)    ├──▶ InvalidationBus
    gate fleet ──decide/enforce──▶ replica B ──┘    (seq-stamped fan-out,
                                       │             bounded replay buffer)
                                       ▼ pickup()
                                one SQLite file

* every replica **publishes** its movement-store mutation notices and its
  cache's administrative evictions to the bus, and **applies** the other
  replicas' events by evicting its own cache and calling the movement
  store's ``pickup()`` (folding the file's committed rows into the local
  projection);
* events carry a monotonic bus ``seq``; a replica that detects a gap
  requests a replay from the hub's bounded buffer, and an uncoverable gap
  or a reconnect triggers a **full resync** (pickup to the file's high
  water + cache clear) — so lost frames degrade coherence to a wider
  window, never to serving stale state forever;
* per-replica **generation fencing** (the cache's invalidation tokens)
  guarantees a decide that raced a bus eviction can never store — and a
  later hit can never resurrect — a pre-mutation decision;
* the ``sync`` op is the **barrier** that closes the coherence window on
  demand; a background sync tick bounds it even under total bus loss.

Durable tiering (the cache sidecar)
-----------------------------------

Everything above keeps the decision cache in RAM, so every restart starts
from a cold cache and the first seconds of traffic pay full-pipeline
latency.  :mod:`repro.service.cache_store` removes that cliff with a
**SQLite sidecar** under the cache (``repro serve --cache-path``):

* :class:`~repro.service.cache_store.TieredDecisionCache` writes every
  admitted entry **through** to the sidecar — the pre-serialized JSON and
  binary wire fragments verbatim, stamped with the movement store's
  applied position at admission.  LRU eviction becomes *demotion*: the row
  is already on disk, and a later request for it promotes it back into RAM
  and serves the stored fragments without re-running the pipeline **or**
  re-encoding the response.
* Correctness rides one invariant: **every invalidation tombstones its
  disk rows synchronously, under the same lock, on every path** — per
  location, per (location, subject) pair, per subject, movement-driven or
  bus-driven (:class:`~repro.service.bus.CoherentDecisionCache` delegates
  to the same hooks).  A disk row that still exists was therefore never
  invalidated, so promotion can attach the cache's *current* generation
  token without re-validating anything.
* **Warm restart** re-admits what survived the downtime:
  :meth:`~repro.service.cache_store.TieredDecisionCache.warm` checks the
  persisted engine fingerprint (authorizations, capacities, location set —
  config drift purges wholesale), then validates each row against the
  movement store — a row is dropped if any movement touching its location
  landed after the row's stamped position (foreign writers included, via
  the same ``pickup()`` bookkeeping the bus uses), or if the store cannot
  prove there was none.  Survivors re-enter RAM newest-first; the rest
  stay spilled.  ``benchmarks/test_bench_cache_restart.py`` asserts the
  payoff (warmed restart ≥3x cold first-window throughput), and ``repro
  cache stats|warm|purge`` operates on sidecar files directly.

The ``enforce`` op routes remote decisions through the
:class:`~repro.api.pep.EnforcementPoint`, so audited deployments get one
audit entry per enforcement over the wire too; a decision served from the
cache is re-audited with a ``CACHED`` note carrying the entry's originating
cache generation (see :meth:`~repro.api.pep.EnforcementPoint.attest`).

Partitioned serving (the fabric)
--------------------------------

Replication scales *reads* of one log; the fabric scales the log itself by
sharding **subjects** across server processes.  :mod:`repro.service.fabric`
holds the two pieces:

.. code-block:: text

    gate fleet ──decide/enforce──▶ ┌──────────────┐ ──▶ partition "east"
    tracker fleet ──observe_batch▶ │ FabricRouter │ ──▶ partition "west"
    admin ──query/checkpoint/sync▶ │ PartitionMap │ ──▶ partition "north"
                                   └──────────────┘      (repro serve
                                    (client-side or       --partition NAME
                                     'repro route')       --map fabric.json)

* :class:`~repro.service.fabric.PartitionMap` — a versioned consistent-hash
  assignment of subjects to named partitions.  Same CRC32/virtual-node ring
  as the in-process :class:`~repro.storage.sharding.HashRing`, so growing
  the fleet remaps only ``~1/n`` of the subjects; explicit per-subject pins
  move a hot subject without touching the ring.  Serializes to a JSON file
  every ``repro serve --map`` / ``repro route --map`` process shares.
* :class:`~repro.service.fabric.FabricRouter` — routes point ops to the
  owning partition, scatter-gathers batches with per-partition order
  preserved, answers cross-partition queries (``WHO IS IN``, global
  ``VIOLATIONS``) by fan-out + deterministic merge, and reshards **live**:
  only remapped subjects move (archive handoff via ``import_archive``, the
  live slice through ordinary ingest, a ``sync`` cutover barrier on the
  destination before the new map serves traffic).
* :class:`~repro.service.fabric.RouterServer` — the router behind a socket
  speaking the ordinary protocol, so an unmodified
  :class:`~repro.service.client.ServiceClient` sees one logical server.

**Global capacity** (:mod:`repro.service.capacity`) closes the fabric's
one semantic gap versus embedded serving: a location's occupancy limit
must count occupants *fleet-wide* even though each partition's movement
store only tracks its own subjects.  Each partition derives a per-location
occupancy vector from its authoritative projection whenever a movement
lands, publishes it over the same invalidation bus that carries cache
evictions, and folds peers' vectors into a
:class:`~repro.service.capacity.CapacityLedger`.  The serving engine's
``occupancy_of`` is overlaid with *local projection + remote ledger*, so
:class:`~repro.api.stages.CapacityStage` decides against the global count;
a fold that changes a location's remote count evicts that location's
cached decisions, exactly like a local movement would.  Counts are
**absolute** (last-write-wins per origin), so replays and resyncs are
idempotent; the router's two-phase ``sync`` fan-out is the convergence
barrier, and a reshard ends with the same barrier so a moved subject's
stay is counted exactly once.  While the bus is down, a partition serves
from its last-folded vectors — capacity degrades to *stale-global* (never
to per-partition blindness), and the background sync tick re-converges it.

Observability (telemetry)
-------------------------

:mod:`repro.service.telemetry` is the stdlib-only observability fabric the
whole package shares — a metrics registry plus a span model:

* **Metrics** are always on and cheap enough for the lean decide path:
  every server and router owns a :class:`~repro.service.telemetry.
  MetricsRegistry` whose hot-path objects (per-op latency
  :class:`~repro.service.telemetry.Histogram`\\ s, the decide/cache
  counters) are resolved once at construction — an ``observe()`` is a
  bisect over a precomputed boundary tuple plus three adds under the
  metric's own lock, no allocation.  Everything else (cache sizes, bus
  lag, ingest queue depth, connection counts) is a callback
  :class:`~repro.service.telemetry.Gauge` read at scrape time, so the hot
  paths pay nothing for it.  Exposed three ways: the ``metrics`` wire op
  (structured JSON), ``--metrics-port`` (Prometheus text exposition over a
  stdlib HTTP listener), and ``repro top`` (a live per-partition table
  polled over the ``metrics`` op).
* **Spans** have a zero-overhead-when-disabled contract: tracing activates
  per-request only when the request carries a ``tctx`` envelope key (a
  ``[trace_id, parent_span_id]`` pair, ignored by old peers on both wire
  formats) or when the process samples slow requests (``--slow-ms``).
  With no active trace, every instrumentation point —
  :func:`~repro.service.telemetry.trace_span` around router dispatch,
  server op dispatch, pipeline evaluation, store pickup/checkpoint;
  :func:`~repro.service.telemetry.trace_event` at cache hit/miss/flight,
  ingest group-commit, bus publish/apply — is one thread-local read
  returning a shared no-op.  With a trace active, spans parent-link
  automatically through a thread-local stack (activation survives the
  executor hop), downstream processes **echo** their spans in the response
  envelope, and the caller grafts them under its calling span: one
  connected tree per request across router and partitions.  Requests
  slower than the threshold get that tree dumped to the
  ``repro.service.requests`` logger.

Run a server with ``repro serve --layout campus.json --auths auths.json``
(hosting a bus with ``--bus PORT``, joining one with ``--peers HOST:PORT``)
or in-process::

    from repro.service import DecisionCache, LtamServer, RemotePdp

    with LtamServer(engine, cache=DecisionCache()) as server:
        host, port = server.address
        pdp = RemotePdp(host, port)
        decision = pdp.decide((10, "alice", "meeting-room"))
"""

from repro.service.bus import (
    DEFAULT_BUS_PORT,
    BusLink,
    CoherentDecisionCache,
    InvalidationBus,
    ReplicaCoherence,
)
from repro.service.cache import CachedDecision, DecisionCache
from repro.service.cache_store import (
    CacheStore,
    TieredDecisionCache,
    engine_fingerprint,
)
from repro.service.capacity import CapacityLedger
from repro.service.client import ConnectionPool, RemotePdp, RemotePep, ServiceClient
from repro.service.errors import (
    ProtocolError,
    RemoteServiceError,
    ServiceAuthError,
    ServiceBusyError,
    ServiceConnectionError,
    ServiceError,
)
from repro.service.fabric import (
    DEFAULT_ROUTER_PORT,
    FabricRouter,
    PartitionMap,
    RouterServer,
)
from repro.service.server import DEFAULT_PORT, LtamServer
from repro.service.telemetry import (
    MetricsExporter,
    MetricsRegistry,
    Span,
    Trace,
    trace_event,
    trace_span,
)

__all__ = [
    "CachedDecision",
    "DecisionCache",
    "CacheStore",
    "TieredDecisionCache",
    "engine_fingerprint",
    "ServiceClient",
    "ConnectionPool",
    "RemotePdp",
    "RemotePep",
    "LtamServer",
    "InvalidationBus",
    "BusLink",
    "CoherentDecisionCache",
    "ReplicaCoherence",
    "PartitionMap",
    "FabricRouter",
    "RouterServer",
    "CapacityLedger",
    "MetricsRegistry",
    "MetricsExporter",
    "Trace",
    "Span",
    "trace_span",
    "trace_event",
    "DEFAULT_PORT",
    "DEFAULT_BUS_PORT",
    "DEFAULT_ROUTER_PORT",
    "ServiceError",
    "ProtocolError",
    "ServiceAuthError",
    "ServiceBusyError",
    "ServiceConnectionError",
    "RemoteServiceError",
]
