"""repro.service — the PDP/PEP over a network boundary.

Architecture note
-----------------

Everything before this package runs the engine *embedded*: trackers, policy
clients and administrators share one process with the
:class:`~repro.api.builder.Ltam` engine.  The XACML-style deployment the
PR 1 redesign was built for puts the PDP behind a **service boundary**
instead — one authorization server, a fleet of remote enforcement points —
and this package is that boundary, closing the ROADMAP's "multi-process
ingest" item:

.. code-block:: text

    tracker proc A ──observe_batch──▶ ┌──────────────────────────────┐
    tracker proc B ──observe_batch──▶ │  LtamServer  (asyncio, TCP)  │
                                      │   ├─ MovementIngestor ──────▶│ one writer,
    gate client ──decide/decide_many▶ │   ├─ DecisionCache           │ group commits,
    admin client ──query/checkpoint─▶ │   └─ Ltam (PDP/PEP/monitor)  │ scheduled
                                      └──────────────────────────────┘ checkpoints

* :mod:`repro.service.protocol` — the wire codec: newline-delimited JSON
  frames round-tripping requests, :class:`~repro.api.decision.Decision`
  objects (per-stage traces included), movement records, alerts, query
  results, checkpoint receipts, and **typed errors** (a remote
  ``StorageError`` raises as ``StorageError``, a rejected ingest batch
  comes back with its records for retry/dead-lettering).
* :mod:`repro.service.server` — :class:`LtamServer`, a stdlib-only asyncio
  server over an embedded engine.  Ops: ``decide``, ``decide_many``,
  ``observe``, ``observe_batch`` (feeding the existing
  :class:`~repro.storage.ingest.MovementIngestor`; ``monitor`` and raw
  ``record`` sinks), ``query``, ``checkpoint``, ``health``.
* :mod:`repro.service.cache` — :class:`DecisionCache`: decisions keyed by
  (subject, location, action, time bucket), served without re-running the
  pipeline or re-encoding the response; **event-wise invalidation** via the
  movement database's mutation notifications evicts only the locations a
  movement can affect, so hot read traffic stays parity-correct under
  interleaved ingest.
* :mod:`repro.service.client` — the blocking :class:`ServiceClient`, a
  :class:`ConnectionPool`, and :class:`RemotePdp`/:class:`RemotePep`
  mirroring the embedded APIs; ``RemotePep.ingestor()`` gives tracker
  adapters the same streaming interface they had in-process.

Run a server with ``repro serve --layout campus.json --auths auths.json``
(see the CLI) or in-process::

    from repro.service import DecisionCache, LtamServer, RemotePdp

    with LtamServer(engine, cache=DecisionCache()) as server:
        host, port = server.address
        pdp = RemotePdp(host, port)
        decision = pdp.decide((10, "alice", "meeting-room"))
"""

from repro.service.cache import CachedDecision, DecisionCache
from repro.service.client import ConnectionPool, RemotePdp, RemotePep, ServiceClient
from repro.service.errors import (
    ProtocolError,
    RemoteServiceError,
    ServiceConnectionError,
    ServiceError,
)
from repro.service.server import DEFAULT_PORT, LtamServer

__all__ = [
    "CachedDecision",
    "DecisionCache",
    "ServiceClient",
    "ConnectionPool",
    "RemotePdp",
    "RemotePep",
    "LtamServer",
    "DEFAULT_PORT",
    "ServiceError",
    "ProtocolError",
    "ServiceConnectionError",
    "RemoteServiceError",
]
