"""The replica invalidation bus: cache coherence across server replicas.

PR 4's :class:`~repro.service.cache.DecisionCache` invalidates from
**in-process** mutation notifications.  Run several
:class:`~repro.service.server.LtamServer` replicas over one SQLite file and
that breaks silently: replica A's observes evict A's cache but leave B's
untouched, so B keeps serving decisions computed from a world that no longer
exists.  This module makes the replicated topology safe:

* :class:`InvalidationBus` — a tiny stdlib-asyncio hub speaking the same
  newline-delimited JSON framing as the server.  Replicas connect, publish
  invalidation events (serialized
  :class:`~repro.storage.movement_db.MovementNotice` batches and admin
  mutations), and receive every event back stamped with a **monotonic bus
  sequence number**.  A bounded replay buffer lets a replica that detected a
  frame gap request exactly the frames it missed; when the buffer cannot
  reach back far enough the hub says so and the replica falls back to a full
  resync.
* :class:`BusLink` — one replica's blocking connection to the hub: a reader
  thread applying events in sequence order, gap detection (``seq`` fencing),
  replay requests, automatic reconnect, and re-publication of events that
  raced a dead connection.
* :class:`ReplicaCoherence` — the glue an :class:`LtamServer` (or embedded
  engine) attaches: it publishes the local movement store's mutation notices
  and the cache's administrative invalidation to the bus, and applies remote
  events by evicting the local :class:`DecisionCache` **and** calling
  :meth:`~repro.storage.movement_db.MovementDatabase.pickup` so the local
  projection follows the shared SQLite file.

Coherence guarantees (and their limits)
---------------------------------------

The design leans on one invariant: **pickup evicts everything it applies**.
Every foreign row folded into the local projection flows through the normal
mutation-notification path, evicting its affected locations and bumping
their invalidation generations — so a cached entry is never *older* than the
local projection, and the projection converges to the shared log.  On top of
that invariant:

* bus events make eviction *prompt* (one event round-trip instead of the
  next sync tick);
* generation fencing makes eviction *race-free per replica*: a decide that
  captured its token before a bus eviction landed can never store its stale
  result afterwards (same mechanism that fences in-process races);
* gap/reconnect recovery makes lost frames *safe*: a replica that missed
  frames replays them from the hub's buffer, or — when the buffer cannot
  cover, or after a reconnect — performs a full resync: ``pickup()`` to the
  file's high water plus a cache clear (admin events are not reconstructible
  from the movement log, so the clear over-evicts on purpose).

Between a writer's commit and the receiving replica's pickup there is a
**coherence window** during which the receiver may still serve
pre-mutation decisions — replicated serving is eventually coherent, not
linearizable.  :meth:`ReplicaCoherence.sync` is the barrier that closes the
window on demand (the ``sync`` wire op exposes it remotely), and a periodic
sync tick bounds it even when every bus frame is lost: coherence degrades to
correctness, never to unbounded staleness.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import socket
import threading
import time
from collections import Counter, deque
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.storage.movement_db import MovementNotice
from repro.service.errors import ProtocolError, ServiceError
from repro.service.runtime import AsyncServiceHost
from repro.service.telemetry import trace_event

__all__ = [
    "DEFAULT_BUS_PORT",
    "InvalidationBus",
    "BusLink",
    "CoherentDecisionCache",
    "ReplicaCoherence",
    "resolve_bus_address",
]

#: Default bus port: one above the service's default.
DEFAULT_BUS_PORT = 7472

#: How many broadcast frames the hub keeps for gap replay.
DEFAULT_REPLAY_BUFFER = 4096

#: Maximum bus frame size (bytes) — matches the service's frame limit.
DEFAULT_FRAME_LIMIT = 1 << 24

#: Notices per published movement event: one giant ingest batch becomes a
#: run of bounded frames instead of one frame the transports choke on.
PUBLISH_CHUNK = 1024

#: Per-peer write-buffer cap (bytes) on the hub.  The broadcast path never
#: awaits drain (one stalled replica must not slow the fleet), so a peer
#: whose buffer backs up past this stops receiving frames instead of
#: growing the hub's memory — its own gap detection replays the missed
#: range once it catches up.
PEER_BUFFER_LIMIT = 4 << 20

#: Default interval (seconds) of the coherence layer's background sync tick.
DEFAULT_SYNC_INTERVAL = 0.25


def resolve_bus_address(value: Union[str, Tuple[str, int]]) -> Tuple[str, int]:
    """Normalize a ``(host, port)`` tuple or a ``"host:port"`` string."""
    if isinstance(value, tuple) and len(value) == 2:
        return (str(value[0]), int(value[1]))
    if isinstance(value, str):
        host, _, port = value.rpartition(":")
        if host and port.isdigit():
            return (host, int(port))
        if value.isdigit():  # bare port: localhost
            return ("127.0.0.1", int(value))
    raise ProtocolError(
        f"cannot interpret {value!r} as a bus address; expected (host, port) or 'host:port'"
    )


def _encode(message: Dict[str, Any]) -> bytes:
    return json.dumps(message, separators=(",", ":"), ensure_ascii=False).encode("utf-8") + b"\n"


class _BusPeer:
    """One connected replica, as the hub sees it."""

    __slots__ = ("writer", "replica", "authed")

    def __init__(self, writer: asyncio.StreamWriter) -> None:
        self.writer = writer
        self.replica: Optional[str] = None
        self.authed = False


class InvalidationBus(AsyncServiceHost):
    """The invalidation hub: seq-stamped fan-out with a bounded replay buffer.

    Parameters
    ----------
    host, port:
        Bind address; ``port=0`` picks a free port (see :attr:`address`).
    replay_buffer:
        How many broadcast frames to keep for gap replay; a replica whose
        gap reaches further back is told to perform a full resync instead.
    drop:
        Optional testing hook ``(replica_id, seq) -> bool``; returning
        ``True`` makes the hub *not* deliver that frame to that replica
        (the seq still advances, so the replica later detects the gap).
        This is how the chaos suite injects frame loss.
    max_connections:
        Per-listener cap on concurrently attached replicas; an over-cap
        connection is told ``busy`` (a typed refusal frame) and closed —
        its :class:`BusLink` backs off and retries.  ``None`` (default) is
        uncapped.
    auth_token:
        Optional shared secret.  When set, a replica's hello must carry the
        matching ``auth`` field or the hub answers a typed
        ``ServiceAuthError`` refusal frame and closes the connection;
        publish/ping frames from a connection that never authenticated are
        ignored.  ``None`` (default) accepts everyone.

    One replica typically hosts the bus in-process (``repro serve --bus``);
    the hub carries no authorization state, so losing it only widens the
    coherence window until it is back — the replicas' periodic sync keeps
    correctness in the meantime.
    """

    def __init__(
        self,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        replay_buffer: int = DEFAULT_REPLAY_BUFFER,
        drop=None,
        max_connections: Optional[int] = None,
        auth_token: Optional[str] = None,
    ) -> None:
        if replay_buffer < 1:
            raise ServiceError(f"replay buffer must be positive, got {replay_buffer!r}")
        super().__init__(
            host, port, frame_limit=DEFAULT_FRAME_LIMIT, max_connections=max_connections
        )
        self._drop = drop
        self._auth_token = auth_token
        self._seq = 0
        self._buffer: "deque[Tuple[int, Optional[str], List[Dict[str, Any]]]]" = deque(
            maxlen=replay_buffer
        )
        self._peers: List[_BusPeer] = []
        self._state_lock = threading.Lock()
        self._stats = {
            "published": 0,
            "delivered": 0,
            "dropped": 0,
            "replayed": 0,
            "resyncs": 0,
            "auth_refusals": 0,
        }

    # ------------------------------------------------------------------ #
    # Lifecycle: the shared AsyncServiceHost thread/loop shape.
    # ------------------------------------------------------------------ #
    _what = "the invalidation bus"
    _thread_name = "ltam-bus"

    @property
    def seq(self) -> int:
        """The newest sequence number the hub has assigned."""
        with self._state_lock:
            return self._seq

    @property
    def stats(self) -> Dict[str, int]:
        """Counters: published, delivered, dropped, replayed, resyncs,
        auth_refusals."""
        with self._state_lock:
            return dict(self._stats)

    # ------------------------------------------------------------------ #
    # Peer handling
    # ------------------------------------------------------------------ #
    async def _refuse_busy(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        # The typed refusal on the bus's own framing: a BusLink that reads
        # it counts the refusal and falls into its reconnect backoff
        # instead of treating the close as a hub crash.
        writer.write(
            _encode(
                {
                    "busy": True,
                    "error": {
                        "type": "ServiceBusyError",
                        "message": (
                            f"the invalidation bus is at its connection cap "
                            f"({self._max_connections}); retry later"
                        ),
                    },
                }
            )
        )
        await writer.drain()

    async def _handle_connection(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        peer = _BusPeer(writer)
        with self._state_lock:
            self._peers.append(peer)
        try:
            while True:
                try:
                    line = await reader.readline()
                except ValueError:
                    break  # over-limit frame: the stream is beyond repair
                if not line:
                    break
                try:
                    message = json.loads(line)
                except ValueError:
                    break  # a desynchronized peer cannot be trusted further
                if not isinstance(message, dict):
                    break
                op = message.get("op")
                if op == "hello":
                    if not self._on_hello(peer, message):
                        await writer.drain()
                        break  # typed auth refusal written; drop the peer
                elif op == "publish":
                    self._on_publish(peer, message)
                elif op == "ping":
                    self._on_ping(peer, message)
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
            pass
        finally:
            with self._state_lock:
                if peer in self._peers:
                    self._peers.remove(peer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
                # Loop shutdown cancels peer tasks mid-close; ending cleanly
                # keeps asyncio's stream callback from logging the cancel.
                pass

    def _replay_to(self, peer: _BusPeer, last_seen: int) -> None:
        """Write the buffered frames past *last_seen*, or a full-resync order.

        Called with the state lock held.  The oldest buffered frame bounds
        how far back a gap can be healed frame-by-frame; anything older
        forces ``{"resync": seq}`` — the replica then pickups to the shared
        store's high water and clears its cache.
        """
        if last_seen >= self._seq:
            return
        oldest_covered = self._buffer[0][0] if self._buffer else self._seq + 1
        if last_seen + 1 < oldest_covered:
            peer.writer.write(_encode({"resync": self._seq}))
            self._stats["resyncs"] += 1
            return
        # No backpressure truncation here, deliberately: the pong that
        # follows a replay is the barrier's proof that everything up to it
        # was delivered, so a partial replay would make sync() lie.  The
        # write is bounded by the replay buffer's size, and a peer that
        # pinged is alive and draining (the unbounded-growth concern is the
        # broadcast path to a stalled peer, which keeps its guard).
        for seq, origin, events in self._buffer:
            if seq > last_seen:
                peer.writer.write(_encode({"seq": seq, "origin": origin, "events": events}))
                self._stats["replayed"] += 1

    def _on_hello(self, peer: _BusPeer, message: Dict[str, Any]) -> bool:
        with self._state_lock:
            if self._auth_token is not None and message.get("auth") != self._auth_token:
                # The typed refusal mirrors the busy frame's shape so a
                # BusLink can tell "you may not" from "not right now".
                self._stats["auth_refusals"] += 1
                peer.writer.write(
                    _encode(
                        {
                            "denied": True,
                            "error": {
                                "type": "ServiceAuthError",
                                "message": (
                                    "the invalidation bus requires a shared auth "
                                    "token and the hello did not carry it"
                                ),
                            },
                        }
                    )
                )
                return False
            peer.authed = True
            peer.replica = message.get("replica")
            last_seen = message.get("last_seen")
            if isinstance(last_seen, int):
                self._replay_to(peer, last_seen)
            peer.writer.write(_encode({"hello": True, "seq": self._seq}))
        return True

    @staticmethod
    def _peer_backed_up(peer: _BusPeer) -> bool:
        transport = peer.writer.transport
        try:
            return (
                transport is not None
                and transport.get_write_buffer_size() > PEER_BUFFER_LIMIT
            )
        except (AttributeError, RuntimeError):
            return False

    def _on_publish(self, peer: _BusPeer, message: Dict[str, Any]) -> None:
        events = message.get("events")
        if not isinstance(events, list) or not events:
            return
        if self._auth_token is not None and not peer.authed:
            return  # never sequence frames from a connection that skipped hello
        with self._state_lock:
            self._seq += 1
            seq = self._seq
            origin = peer.replica
            self._buffer.append((seq, origin, events))
            self._stats["published"] += 1
            frame = _encode({"seq": seq, "origin": origin, "events": events})
            for other in self._peers:
                if self._drop is not None and self._drop(other.replica, seq):
                    self._stats["dropped"] += 1
                    continue
                if self._peer_backed_up(other):
                    # A stalled replica must not grow the hub's memory; it
                    # will gap-detect and replay once it drains.
                    self._stats["dropped"] += 1
                    continue
                other.writer.write(frame)
                self._stats["delivered"] += 1

    def _on_ping(self, peer: _BusPeer, message: Dict[str, Any]) -> None:
        if self._auth_token is not None and not peer.authed:
            return  # an unauthenticated ping must not read the seq or replay
        with self._state_lock:
            last_seen = message.get("last_seen")
            if isinstance(last_seen, int):
                self._replay_to(peer, last_seen)
            # The echoed id lets the link match this pong to ITS ping —
            # without it, a pong answering an earlier gap-recovery ping
            # could satisfy a sync barrier whose replay had not run yet.
            peer.writer.write(_encode({"pong": self._seq, "id": message.get("id")}))


class BusLink:
    """One replica's connection to the invalidation bus.

    A background reader thread applies incoming frames **in sequence
    order**: an in-order frame is handed to *on_events*; a frame that skips
    ahead is still applied (eviction is idempotent) but triggers a replay
    request for the missed range; a hub answer of ``resync`` — or any
    reconnect — invokes *on_resync* (full recovery).  Publishing is
    thread-safe, and events that raced a dead connection are re-published
    after the next successful hello.
    """

    def __init__(
        self,
        address: Union[str, Tuple[str, int]],
        *,
        replica_id: str,
        on_events,
        on_resync,
        reconnect_delay: float = 0.2,
        timeout: float = 10.0,
        auth_token: Optional[str] = None,
    ) -> None:
        self._address = resolve_bus_address(address)
        self._replica_id = replica_id
        self._auth_token = auth_token
        self._on_events = on_events
        self._on_resync = on_resync
        self._reconnect_delay = reconnect_delay
        self._timeout = timeout
        self._sock: Optional[socket.socket] = None
        self._send_lock = threading.Lock()
        self._state = threading.Condition()
        self._last_seen = 0
        self._ping_ids = itertools.count(1)
        self._last_pong_id = 0
        self._connected = False
        self._closed = False
        self._unsent: List[List[Dict[str, Any]]] = []
        #: frames queued for the sender thread as (bytes, durable events or
        #: None).  Publishing never touches the socket directly: a stalled
        #: hub blocks only the sender, while publishers — which may hold the
        #: movement store's transaction lock — enqueue and move on.
        self._outbox: "deque[Tuple[bytes, Optional[List[Dict[str, Any]]]]]" = deque()
        self._stats = {
            "received": 0,
            "published": 0,
            "gaps": 0,
            "resyncs": 0,
            "reconnects": 0,
            "busy_refusals": 0,
            "auth_refusals": 0,
        }
        self._thread = threading.Thread(target=self._run, name="ltam-bus-link", daemon=True)
        self._thread.start()
        self._sender = threading.Thread(
            target=self._send_loop, name="ltam-bus-send", daemon=True
        )
        self._sender.start()

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def replica_id(self) -> str:
        """This replica's identity on the bus."""
        return self._replica_id

    @property
    def connected(self) -> bool:
        """Whether the link currently holds a live bus connection."""
        with self._state:
            return self._connected

    @property
    def last_seen(self) -> int:
        """The newest in-order bus seq this link has applied."""
        with self._state:
            return self._last_seen

    @property
    def stats(self) -> Dict[str, int]:
        """Counters: received, published, gaps, resyncs, reconnects,
        busy_refusals, auth_refusals."""
        with self._state:
            return dict(self._stats)

    # ------------------------------------------------------------------ #
    # Producer API
    # ------------------------------------------------------------------ #
    #: Cap on event batches buffered across an outage; beyond it the buffer
    #: collapses to one ``clear`` event (bounded memory, over-eviction).
    UNSENT_CAP = 1024

    #: Cap on frames awaiting the sender thread; beyond it (a hub stalled
    #: mid-connection) publishes fail over to the unsent buffer instead.
    OUTBOX_CAP = 8192

    def publish(self, events: Sequence[Dict[str, Any]], *, durable: bool = True) -> bool:
        """Queue *events* for the hub; returns whether they were accepted.

        The actual send happens on the link's sender thread — publishers
        are often inside the movement store's transaction lock (mutation
        listeners), and a blocking send to a stalled hub there would freeze
        the replica's whole write path.

        With ``durable`` (the default), events that cannot be queued (link
        down, outbox full) — or whose send later fails — are buffered and
        re-published after the next reconnect: subscribers get the eviction
        late rather than never.  The buffer is bounded: a sustained outage
        under heavy publishing collapses it into a single ``clear`` event,
        trading the peers' cache contents for bounded memory.  Publishers
        whose events are recoverable by other means (movement notices — the
        peers' pickup() re-derives them from the shared store) pass
        ``durable=False`` and the outage drops them.
        """
        events = list(events)
        if not events:
            return True
        # No-op unless the publisher runs under a traced request (e.g. an
        # observe whose mutation notices fan out) — then the publish shows
        # up in that request's span tree.
        trace_event("bus.publish", events=len(events))
        frame = _encode({"op": "publish", "events": events})
        with self._state:
            if (
                not self._closed
                and self._connected
                and len(self._outbox) < self.OUTBOX_CAP
            ):
                self._outbox.append((frame, events if durable else None))
                self._stats["published"] += 1
                self._state.notify_all()
                return True
        if durable:
            self._buffer_unsent(events)
        return False

    def _buffer_unsent(self, events: List[Dict[str, Any]]) -> None:
        with self._send_lock:
            self._unsent.append(events)
            if len(self._unsent) > self.UNSENT_CAP:
                self._unsent = [[{"kind": "clear"}]]

    def _send_ping(self, last_seen: int, ping_id: int) -> bool:
        frame = _encode({"op": "ping", "last_seen": last_seen, "id": ping_id})
        with self._state:
            if self._closed or not self._connected or len(self._outbox) >= self.OUTBOX_CAP:
                return False
            self._outbox.append((frame, None))
            self._state.notify_all()
        return True

    def _send_loop(self) -> None:
        while True:
            with self._state:
                while not self._outbox and not self._closed:
                    self._state.wait()
                if self._closed:
                    return
                frame, durable_events = self._outbox.popleft()
            with self._send_lock:
                sock = self._sock
            sent = False
            if sock is not None:
                try:
                    sock.sendall(frame)
                    sent = True
                except OSError:
                    pass
            if not sent and durable_events is not None:
                self._buffer_unsent(durable_events)

    def request_sync(self, timeout: float = 5.0) -> bool:
        """Ask the hub to replay anything this link missed; block until done.

        Sends a ping carrying the link's last applied seq; the hub replays
        the missed frames (processed by the reader thread before the pong
        that answers the ping).  Pings carry an id echoed in the pong, so a
        pong answering someone else's earlier ping (a gap-recovery ping the
        reader sent) can never satisfy this barrier before *its* replay
        ran.  Returns ``False`` when the link is down or the pong did not
        arrive in time — the caller should fall back to a full resync.
        """
        with self._state:
            if not self._connected:
                return False
            ping_id = next(self._ping_ids)
            last_seen = self._last_seen
        if not self._send_ping(last_seen, ping_id):
            return False
        deadline = time.monotonic() + timeout
        with self._state:
            while self._last_pong_id < ping_id:
                remaining = deadline - time.monotonic()
                if remaining <= 0 or self._closed:
                    return False
                self._state.wait(remaining)
        return True

    def close(self) -> None:
        """Stop the reader thread and drop the connection."""
        with self._state:
            self._closed = True
            self._state.notify_all()
        with self._send_lock:
            if self._sock is not None:
                try:
                    # shutdown() (not just close()) wakes the reader thread
                    # blocked in readline() with EOF immediately.
                    self._sock.shutdown(socket.SHUT_RDWR)
                except OSError:
                    pass
                try:
                    self._sock.close()
                except OSError:
                    pass
                self._sock = None
        self._thread.join(timeout=5)
        self._sender.join(timeout=5)

    # ------------------------------------------------------------------ #
    # Reader thread
    # ------------------------------------------------------------------ #
    def _run(self) -> None:
        first_attempt = True
        while True:
            with self._state:
                if self._closed:
                    return
                if not first_attempt:
                    self._stats["reconnects"] += 1
            first_attempt = False
            try:
                self._connect_and_read()
            except OSError:
                pass
            with self._state:
                self._connected = False
                self._state.notify_all()
                if self._closed:
                    return
            time.sleep(self._reconnect_delay)

    def _connect_and_read(self) -> None:
        sock = socket.create_connection(self._address, timeout=self._timeout)
        try:
            sock.settimeout(None)
            reader = sock.makefile("rb")
            hello: Dict[str, Any] = {
                "op": "hello",
                "replica": self._replica_id,
                "last_seen": None,
            }
            if self._auth_token is not None:
                hello["auth"] = self._auth_token
            sock.sendall(_encode(hello))
            with self._send_lock:
                self._sock = sock
            hello_seen = False
            while True:
                line = reader.readline()
                if not line:
                    return
                try:
                    frame = json.loads(line)
                except ValueError:
                    return
                if not isinstance(frame, dict):
                    return
                if not hello_seen:
                    if "busy" in frame:
                        # The hub's cap refused us (typed busy frame): back
                        # off into the ordinary reconnect loop rather than
                        # treating the close as a crash.
                        with self._state:
                            self._stats["busy_refusals"] += 1
                        return
                    if "denied" in frame:
                        # Wrong/missing auth token: counted separately from
                        # busy — retrying cannot help until the operator
                        # fixes the token, but the reconnect loop keeps the
                        # link alive so a rotated token heals in place.
                        with self._state:
                            self._stats["auth_refusals"] += 1
                        return
                    if "hello" not in frame:
                        continue  # only the hello reply establishes the seq floor
                    hello_seen = True
                    with self._state:
                        self._last_seen = int(frame.get("seq", 0))
                        self._connected = True
                        self._state.notify_all()
                    # Every (re)connect is a potential gap of unknown width:
                    # recover fully, then flow the events that raced the
                    # outage.  The unsent buffer is swapped out only now —
                    # after the hello reply proved this connection works —
                    # so a connection that dies earlier keeps the buffered
                    # events for the next attempt (and a failing republish
                    # below re-buffers through publish() itself).
                    self._safe_resync()
                    with self._send_lock:
                        unsent, self._unsent = self._unsent, []
                    for events in unsent:
                        self.publish(events)
                    continue
                self._handle_frame(frame)
        finally:
            with self._send_lock:
                if self._sock is sock:
                    self._sock = None
            try:
                sock.close()
            except OSError:
                pass

    def _handle_frame(self, frame: Dict[str, Any]) -> None:
        if "pong" in frame:
            with self._state:
                pong_id = frame.get("id")
                if isinstance(pong_id, int) and pong_id > self._last_pong_id:
                    # Pongs arrive in ping order on the one connection, so a
                    # high-water id is enough for every waiter.
                    self._last_pong_id = pong_id
                self._state.notify_all()
            return
        if "resync" in frame:
            with self._state:
                self._last_seen = int(frame["resync"])
                self._stats["resyncs"] += 1
            self._safe_resync()
            return
        seq = frame.get("seq")
        if not isinstance(seq, int):
            return
        request_replay = False
        with self._state:
            if seq <= self._last_seen:
                return  # replay overlap; already applied
            if seq == self._last_seen + 1:
                self._last_seen = seq
            else:
                # A gap: apply this frame (eviction is idempotent and
                # over-eviction is safe) but keep last_seen pinned so the
                # hub's replay of the missed range is not ignored.
                self._stats["gaps"] += 1
                request_replay = True
            self._stats["received"] += 1
            last_seen = self._last_seen
        try:
            self._on_events(frame.get("origin"), frame.get("events") or [])
        except Exception:  # noqa: BLE001 - the link must outlive handler bugs
            pass
        if request_replay:
            self._send_ping(last_seen, next(self._ping_ids))

    def _safe_resync(self) -> None:
        try:
            self._on_resync()
        except Exception:  # noqa: BLE001 - the link must outlive handler bugs
            pass


class CoherentDecisionCache:
    """A :class:`DecisionCache` front that publishes admin invalidation.

    Movement-driven eviction is published by the coherence layer's own
    movement-store subscription; this wrapper covers the *administrative*
    paths — grant/revoke/derive/set_capacity reach the cache through the
    PDP's ``invalidate_pair``/``invalidate_location``/``clear`` hooks, and
    those must fan out to the other replicas too.  Remote events are applied
    to the **inner** cache directly, so nothing echoes back onto the bus.
    """

    def __init__(self, inner, publish) -> None:
        self._inner = inner
        self._publish = publish

    @property
    def inner(self):
        """The wrapped :class:`DecisionCache`."""
        return self._inner

    # -- delegated read/write path (the server's decide path) ----------- #
    def get(self, *args, **kwargs):
        return self._inner.get(*args, **kwargs)

    def put(self, *args, **kwargs):
        return self._inner.put(*args, **kwargs)

    def generation(self, location):
        return self._inner.generation(location)

    def lookup(self, request):
        return self._inner.lookup(request)

    def store(self, request, decision, **kwargs):
        return self._inner.store(request, decision, **kwargs)

    def on_movements(self, notices):
        return self._inner.on_movements(notices)

    def connect(self, movement_db):
        return self._inner.connect(movement_db)

    # -- publishing admin hooks ------------------------------------------ #
    def invalidate_location(self, location: str) -> int:
        evicted = self._inner.invalidate_location(location)
        self._publish([{"kind": "admin", "location": location, "subject": None}])
        return evicted

    def invalidate_pair(self, subject: str, location: str) -> int:
        evicted = self._inner.invalidate_pair(subject, location)
        self._publish([{"kind": "admin", "location": location, "subject": subject}])
        return evicted

    def invalidate_subject(self, subject: str) -> int:
        """Subject-wise eviction (the fabric's reshard hook), fanned out.

        Peers apply it with their own ``invalidate_subject`` — including
        the persistent tier's disk-row tombstones — or fall back to a
        clear when their cache predates the hook.
        """
        evicted = self._inner.invalidate_subject(subject)
        self._publish([{"kind": "admin", "location": None, "subject": subject}])
        return evicted

    def clear(self) -> int:
        evicted = self._inner.clear()
        self._publish([{"kind": "clear"}])
        return evicted

    def __getattr__(self, name):
        # The persistent tier's surface (warm/flight/close/store/...) —
        # and anything else additive — passes straight through to the
        # wrapped cache; only the invalidation hooks above need to publish.
        if name.startswith("_"):  # never resolve internals via the inner cache
            raise AttributeError(name)
        return getattr(self._inner, name)

    # -- delegated introspection ----------------------------------------- #
    @property
    def bucket(self):
        return self._inner.bucket

    @property
    def maxsize(self):
        return self._inner.maxsize

    @property
    def stats(self):
        return self._inner.stats

    def __len__(self) -> int:
        return len(self._inner)


class ReplicaCoherence:
    """Wire one replica's engine + cache to the invalidation bus.

    Parameters
    ----------
    engine:
        The replica's :class:`~repro.api.builder.Ltam` (duck-typed: only
        ``movement_db`` is required).
    cache:
        The replica's :class:`~repro.service.cache.DecisionCache`, or
        ``None`` for an uncached replica (projection pickup still runs).
    bus:
        Where the bus lives: a ``(host, port)`` tuple / ``"host:port"``
        string of a running hub, or an :class:`InvalidationBus` instance to
        host in-process (started/stopped with this coherence object).
    replica_id:
        This replica's identity on the bus; generated when omitted.
    sync_interval:
        Period (seconds) of the background sync tick bounding the coherence
        window even under total bus loss; ``None`` disables the tick
        (gap/reconnect recovery and explicit :meth:`sync` calls remain).
    ledger:
        Optional :class:`~repro.service.capacity.CapacityLedger`.  When
        given, this coherence layer additionally publishes the local
        store's per-location occupancy (absolute counts, derived at
        publish time from the projection the notices just updated) and
        folds peers' vectors into the ledger — evicting the affected
        locations from the cache so cached capacity decisions never
        outlive a *remote* occupancy change.  Partitioned-fabric servers
        pass one; replicas sharing a SQLite file must not (each replica
        already sees every stay locally — a ledger would double-count).
    auth_token:
        Optional shared secret forwarded to the :class:`BusLink` hello;
        required when the hub was started with one.
    """

    _ids = itertools.count(1)

    def __init__(
        self,
        engine,
        cache=None,
        *,
        bus: Union[str, Tuple[str, int], InvalidationBus],
        replica_id: Optional[str] = None,
        sync_interval: Optional[float] = DEFAULT_SYNC_INTERVAL,
        ledger=None,
        auth_token: Optional[str] = None,
    ) -> None:
        if sync_interval is not None and not sync_interval > 0:
            # Event.wait(0) returns immediately: a zero interval would spin
            # the sync thread at 100% CPU.  Disabling the tick is spelled
            # ``None``, explicitly.
            raise ServiceError(
                f"sync_interval must be positive (or None to disable the tick), "
                f"got {sync_interval!r}"
            )
        self._engine = engine
        self._inner_cache = cache
        self._ledger = ledger
        self._auth_token = auth_token
        self._replica_id = (
            replica_id
            if replica_id is not None
            else f"replica-{socket.gethostname()}-{next(self._ids)}"
        )
        self._owned_bus = bus if isinstance(bus, InvalidationBus) else None
        self._bus_address = None if self._owned_bus is not None else resolve_bus_address(bus)
        self._sync_interval = sync_interval
        self._cache = (
            CoherentDecisionCache(cache, self._publish_admin) if cache is not None else None
        )
        self._link: Optional[BusLink] = None
        self._unsubscribe = None
        self._in_pickup = threading.local()
        self._sync_lock = threading.Lock()
        self._stats_lock = threading.Lock()
        self._stats = {"pickups": 0, "picked_up": 0, "applied_events": 0, "recoveries": 0}
        self._ticker: Optional[threading.Thread] = None
        self._ticker_stop = threading.Event()
        self._started = False

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def replica_id(self) -> str:
        """This replica's identity on the bus."""
        return self._replica_id

    @property
    def cache(self):
        """The cache the owning server should attach: the publishing wrapper
        (or ``None`` for an uncached replica)."""
        return self._cache

    @property
    def link(self) -> Optional[BusLink]:
        """The bus link (``None`` before :meth:`start`)."""
        return self._link

    @property
    def bus(self) -> Optional[InvalidationBus]:
        """The in-process-hosted hub, when this replica hosts one."""
        return self._owned_bus

    @property
    def ledger(self):
        """The attached :class:`CapacityLedger` (``None`` outside the fabric)."""
        return self._ledger

    @property
    def stats(self) -> Dict[str, Any]:
        """Coherence counters plus the link's, for the health document."""
        with self._stats_lock:
            stats: Dict[str, Any] = dict(self._stats)
        stats["replica"] = self._replica_id
        if self._link is not None:
            stats["link"] = self._link.stats
            stats["connected"] = self._link.connected
            stats["last_seen"] = self._link.last_seen
        stats["applied_position"] = self._engine.movement_db.applied_position
        if self._ledger is not None:
            stats["ledger"] = self._ledger.stats
        return stats

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> "ReplicaCoherence":
        """Host/join the bus, subscribe the publisher, start the sync tick."""
        if self._started:
            return self
        if self._owned_bus is not None:
            if not self._owned_bus.started:
                self._owned_bus.start()
            self._bus_address = self._owned_bus.address
        self._link = BusLink(
            self._bus_address,
            replica_id=self._replica_id,
            on_events=self._handle_events,
            on_resync=self._recover,
            auth_token=self._auth_token,
        )
        self._unsubscribe = self._engine.movement_db.subscribe(self._publish_movements)
        # Late join / warm restart: ask the peers for their vectors and
        # announce our own, so every ledger converges without waiting for
        # the next movement.  Durable publish — buffered until the hello.
        self._publish_occupancy_state(request_peers=True)
        if self._sync_interval is not None:
            self._ticker_stop.clear()
            self._ticker = threading.Thread(
                target=self._tick, name="ltam-coherence-sync", daemon=True
            )
            self._ticker.start()
        self._started = True
        return self

    def stop(self) -> None:
        """Unsubscribe, drop the link, stop the sync tick (and a hosted hub)."""
        if not self._started:
            return
        self._started = False
        if self._unsubscribe is not None:
            self._unsubscribe()
            self._unsubscribe = None
        # Link first: a tick blocked inside request_sync() returns promptly
        # once the link is closed, so the ticker join below cannot stall.
        self._ticker_stop.set()
        if self._link is not None:
            self._link.close()
        if self._ticker is not None:
            self._ticker.join(timeout=5)
            self._ticker = None
        self._link = None
        if self._owned_bus is not None:
            self._owned_bus.stop()

    def __enter__(self) -> "ReplicaCoherence":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    # ------------------------------------------------------------------ #
    # Publishing (local mutations -> bus)
    # ------------------------------------------------------------------ #
    def _publish_movements(self, notices) -> None:
        # Notices emitted by a pickup describe *foreign* writes we just
        # applied — re-publishing them would bounce every event around the
        # fleet forever (and evict the origin's fresh entries).  Two guards:
        # the thread-local covers our own sync/tick pickups, the store's
        # flag covers the pickup-before-write its local write paths run.
        if getattr(self._in_pickup, "active", False):
            return
        if getattr(self._engine.movement_db, "notifying_pickup", False):
            return
        if self._link is None:
            return
        # Bounded frames: a 100k-record ingest batch becomes a run of
        # PUBLISH_CHUNK-notice events, not one transport-choking line.
        # durable=False: during a bus outage these are dropped, not
        # buffered — the peers' pickup() re-derives movement evictions from
        # the shared store, so replaying them later buys nothing.
        for start in range(0, len(notices), PUBLISH_CHUNK):
            chunk = notices[start : start + PUBLISH_CHUNK]
            self._link.publish(
                [{"kind": "movement", "notices": [notice.to_wire() for notice in chunk]}],
                durable=False,
            )
        if self._ledger is not None:
            # The capacity ledger's feed: absolute occupancy for every
            # location these notices touched, read back from the projection
            # (which the store updates *before* notifying) — never folded
            # from the notices, so delivery order cannot skew the counts.
            # Durable, unlike the movement chunks: peers cannot re-derive a
            # partition-local count from their own stores.
            affected = set()
            for notice in notices:
                affected.update(notice.affected_locations)
            if affected:
                db = self._engine.movement_db
                counts = {location: db.occupancy(location) for location in sorted(affected)}
                self._link.publish([{"kind": "occupancy", "counts": counts}])

    def _publish_admin(self, events: List[Dict[str, Any]]) -> None:
        if self._link is not None:
            self._link.publish(events)

    def _occupancy_vector(self) -> Dict[str, int]:
        """This partition's full per-location occupancy, from the projection."""
        return dict(Counter(self._engine.movement_db.subjects_inside().values()))

    def _publish_occupancy_state(self, *, request_peers: bool) -> None:
        """Publish this partition's full occupancy vector (and optionally ask
        the peers for theirs) — the ledger's reconciliation primitive, used
        on start, on bus resync, and after a ``reshard()`` handoff."""
        if self._ledger is None:
            return
        events: List[Dict[str, Any]] = []
        if request_peers:
            events.append({"kind": "occupancy_resync"})
        events.append({"kind": "occupancy", "counts": self._occupancy_vector(), "full": True})
        self._publish_admin(events)

    def publish_occupancy(self, locations: Iterable[str]) -> None:
        """Publish current occupancy for *locations* right now.

        For mutation paths that bypass the movement store's subscriber
        notifications — the fabric's ``forget_subjects`` half of a reshard
        handoff drops stays without emitting notices, so the automatic
        publish in :meth:`_publish_movements` never fires for them.
        """
        if self._ledger is None:
            return
        affected = sorted({str(location) for location in locations})
        if not affected:
            return
        db = self._engine.movement_db
        counts = {location: db.occupancy(location) for location in affected}
        self._publish_admin([{"kind": "occupancy", "counts": counts}])

    # ------------------------------------------------------------------ #
    # Applying (bus -> local cache/projection)
    # ------------------------------------------------------------------ #
    def _handle_events(self, origin: Optional[str], events: List[Dict[str, Any]]) -> None:
        if origin == self._replica_id:
            return  # our own publication: already applied locally
        # The reader thread carries no trace, so this is a no-op today; it
        # marks the apply site for any future traced apply path.
        trace_event("bus.apply", events=len(events), origin=origin)
        with self._stats_lock:
            self._stats["applied_events"] += len(events)
        saw_movements = False
        cache = self._inner_cache
        for event in events:
            kind = event.get("kind")
            if kind == "movement":
                saw_movements = True
                if cache is not None:
                    # Evict straight off the notices: the writer's rows may
                    # not be committed/visible yet (bulk-scope notices fire
                    # pre-commit), and over-eviction is free.
                    for item in event.get("notices", ()):
                        try:
                            notice = MovementNotice.from_wire(item)
                        except Exception:  # noqa: BLE001 - skip malformed
                            continue
                        for location in notice.affected_locations:
                            cache.invalidate_location(location)
            elif kind == "admin":
                if cache is not None:
                    location = event.get("location")
                    subject = event.get("subject")
                    if location is None and subject is not None:
                        # Subject-wise eviction (fabric handoff).  A cache
                        # without the hook over-evicts with a clear — safe.
                        invalidate_subject = getattr(cache, "invalidate_subject", None)
                        if callable(invalidate_subject):
                            invalidate_subject(subject)
                        else:
                            cache.clear()
                    elif location is None:
                        cache.clear()
                    elif subject is None:
                        cache.invalidate_location(location)
                    else:
                        cache.invalidate_pair(subject, location)
            elif kind == "occupancy":
                if self._ledger is not None:
                    counts = event.get("counts")
                    if isinstance(counts, dict):
                        changed = self._ledger.apply(
                            str(origin), counts, full=bool(event.get("full"))
                        )
                        if cache is not None:
                            # The acceptance criterion of the capacity fix:
                            # a cached capacity decision on this partition
                            # must not survive an occupancy change ingested
                            # on a peer.
                            for location in changed:
                                cache.invalidate_location(location)
            elif kind == "occupancy_resync":
                if self._ledger is not None:
                    # A peer (re)joined or recovered: re-announce our vector
                    # (without asking back — that would ping-pong forever).
                    self._publish_occupancy_state(request_peers=False)
            elif kind == "clear":
                if cache is not None:
                    cache.clear()
        if saw_movements:
            # Catch the projection up to whatever is committed; rows still
            # in flight are caught by the next event or the sync tick.
            self._pickup()

    def _pickup(self) -> int:
        self._in_pickup.active = True
        try:
            notices = self._engine.movement_db.pickup()
        finally:
            self._in_pickup.active = False
        if notices:
            with self._stats_lock:
                self._stats["pickups"] += 1
                self._stats["picked_up"] += len(notices)
        return len(notices)

    def _recover(self) -> int:
        """Full resync: projection to high water, cache dropped wholesale.

        Runs on reconnect, on an uncoverable gap, and when a strict
        :meth:`sync` could not drain the bus.  Movement staleness is healed
        exactly by pickup; admin events cannot be reconstructed from the
        movement log, so the cache is cleared — over-eviction in exchange
        for never serving a decision a missed revoke invalidated.
        """
        with self._stats_lock:
            self._stats["recoveries"] += 1
        applied = self._pickup()
        if self._inner_cache is not None:
            self._inner_cache.clear()
        # Re-announce our occupancy and ask the peers for theirs: frames
        # the outage ate are absolute counts, so the full-vector exchange
        # restores the ledger exactly.  Stale remote vectors are kept (not
        # cleared) until the peers' answers replace them — a transiently
        # low remote count could admit an over-capacity ENTER.
        self._publish_occupancy_state(request_peers=True)
        return applied

    # ------------------------------------------------------------------ #
    # The barrier
    # ------------------------------------------------------------------ #
    def sync(self, *, strict: bool = True) -> int:
        """Close the coherence window now; returns how many records landed.

        Drains the bus (hub-side replay of anything this link missed —
        admin events included), then folds the shared store's committed
        rows into the local projection.  After ``sync()`` returns, every
        mutation that was **committed and published** before the call is
        reflected in this replica's decisions.

        When the drain fails (bus unreachable, pong timed out), a strict
        sync — the default; the wire ``sync`` op is one — falls back to a
        full recovery: pickup plus a cache clear, because admin evictions
        this replica missed cannot be reconstructed any other way.  The
        background tick syncs with ``strict=False``: it settles for the
        movement half (pickup) rather than nuking the cache every interval
        of a hub outage, and lets the reconnect recovery square the admin
        ledger.
        """
        with self._sync_lock:
            drained = self._link.request_sync() if self._link is not None else False
            if not drained and strict:
                return self._recover()
            return self._pickup()

    def _tick(self) -> None:
        # The tick is a full sync(), not a bare pickup: a frame the hub
        # dropped toward us (backpressure, chaos) followed by bus silence
        # would otherwise never be healed while the connection stays up —
        # pickup restores movement state but cannot reconstruct admin
        # evictions; only the hub's replay can.
        while not self._ticker_stop.wait(self._sync_interval):
            try:
                self.sync(strict=False)
            except Exception:  # noqa: BLE001 - the tick must survive races
                pass
