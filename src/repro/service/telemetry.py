"""Telemetry: the metrics registry and the cross-process trace layer.

Everything observable about a running fabric flows through this module —
stdlib only, no third-party client libraries.

**Metrics.**  A :class:`MetricsRegistry` holds named :class:`Counter`\\ s,
:class:`Gauge`\\ s and fixed-bucket streaming :class:`Histogram`\\ s.  The
hot-path cost model is strict: a counter increment is one lock acquire and
one integer add; a histogram observation is one lock acquire, one
:func:`bisect.bisect_left` over a precomputed boundary tuple and two adds —
**no allocation** once the metric object exists.  Callers on latency paths
pre-resolve their metric objects at construction time (the server keeps a
per-op histogram dict) so the per-request work never touches the registry's
name table.  Gauges may wrap a zero-argument callable, read at collection
time — the preferred shape for values another subsystem already maintains
(cache sizes, bus positions, live connection counts): scrapes pay the cost,
the hot path pays nothing.

Quantiles (p50/p95/p99) are estimated from the bucket counts by linear
interpolation inside the bucket that straddles the target rank — the
classic Prometheus ``histogram_quantile`` estimator, computed server-side
so the ``metrics`` wire op and ``repro top`` need no PromQL.

**Tracing.**  A :class:`Trace` is one request's identity (``trace_id``)
plus the spans recorded on its behalf in this process.  The active trace is
**thread-local** (:func:`activate` / :func:`active_trace`): the server
activates it on whichever thread actually executes a handler (event loop or
executor), and the router's scatter-gather re-activates it on each fan-out
thread — :class:`Trace` is internally locked, so concurrent fan-out spans
append safely.  Instrumentation sites call :func:`trace_span` /
:func:`trace_event`; with no active trace these cost one thread-local read
and return a shared no-op — the zero-overhead-when-disabled contract.

Context propagates over the wire as an optional ``tctx`` envelope field:
``[trace_id, parent_span_id]``.  Both framings carry it as an ordinary map
entry, so old peers simply ignore it; on the binary codec the repeated
``"tctx"`` key is interned per connection (3-byte refs after the first use)
while the one-shot id strings stay out of the intern table by design (a
string is only interned on its second occurrence).  Servers advertise
support through a ``telemetry`` capability list in the ``hello`` result.
A traced server returns its recorded spans in the response envelope
(``spans``), and the caller grafts them into its own trace — so the router
ends up holding one connected span tree for the whole scatter-gather, which
the slow-request sampler (:func:`dump_slow`) writes to the
``repro.service.requests`` log when a request exceeds its threshold.
"""

from __future__ import annotations

import json
import threading
import time
from bisect import bisect_left
from contextlib import contextmanager
import random as _random
from os import urandom
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsExporter",
    "Span",
    "Trace",
    "DEFAULT_LATENCY_BUCKETS",
    "activate",
    "deactivate",
    "activated",
    "active_trace",
    "trace_span",
    "trace_event",
    "dump_slow",
]

#: Default latency buckets, in seconds: 100 µs .. 10 s, roughly
#: logarithmic.  Decides on a warm cache land in the first few buckets;
#: anything past 25 ms is pipeline work or a stall worth a trace.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
    0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


def _label_key(labels: Dict[str, str]) -> Tuple[Tuple[str, str], ...]:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _render_labels(labels: Tuple[Tuple[str, str], ...]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        '%s="%s"' % (key, value.replace("\\", "\\\\").replace('"', '\\"'))
        for key, value in labels
    )
    return "{" + inner + "}"


class Counter:
    """A monotonically increasing integer.  ``inc`` is lock + add, nothing else."""

    __slots__ = ("name", "labels", "_value", "_lock")

    def __init__(self, name: str, labels: Tuple[Tuple[str, str], ...] = ()) -> None:
        self.name = name
        self.labels = labels
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        with self._lock:
            return self._value


class Gauge:
    """A point-in-time value: either :meth:`set` explicitly, or constructed
    around a zero-argument callable read at collection time (the cheap way
    to expose a value some other subsystem already maintains)."""

    __slots__ = ("name", "labels", "_value", "_fn", "_lock")

    def __init__(
        self,
        name: str,
        labels: Tuple[Tuple[str, str], ...] = (),
        fn: Optional[Callable[[], float]] = None,
    ) -> None:
        self.name = name
        self.labels = labels
        self._value = 0.0
        self._fn = fn
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    @property
    def value(self) -> float:
        if self._fn is not None:
            try:
                return float(self._fn())
            except Exception:
                return 0.0
        with self._lock:
            return self._value


class Histogram:
    """A fixed-bucket streaming histogram with server-side quantile estimation.

    Bucket boundaries are upper-inclusive (Prometheus ``le`` semantics) and
    fixed at construction; an implicit ``+Inf`` bucket catches the rest.
    :meth:`observe` allocates nothing: a bisect over the precomputed
    boundary tuple, one list-element increment, two adds — all under the
    histogram's own lock, so writers on the serving threads and readers on
    the scrape thread never tear a snapshot.
    """

    __slots__ = ("name", "labels", "_bounds", "_counts", "_count", "_sum", "_lock")

    def __init__(
        self,
        name: str,
        labels: Tuple[Tuple[str, str], ...] = (),
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> None:
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("a histogram needs at least one bucket boundary")
        self.name = name
        self.labels = labels
        self._bounds = bounds
        self._counts = [0] * (len(bounds) + 1)  # +1: the +Inf bucket
        self._count = 0
        self._sum = 0.0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        index = bisect_left(self._bounds, value)
        with self._lock:
            self._counts[index] += 1
            self._count += 1
            self._sum += value

    def snapshot(self) -> Dict[str, Any]:
        """Counts, sum, and estimated p50/p95/p99 — one consistent view."""
        with self._lock:
            counts = list(self._counts)
            count = self._count
            total = self._sum
        return {
            "count": count,
            "sum": total,
            "buckets": [[bound, counts[i]] for i, bound in enumerate(self._bounds)]
            + [["+Inf", counts[-1]]],
            "p50": self._quantile(counts, count, 0.50),
            "p95": self._quantile(counts, count, 0.95),
            "p99": self._quantile(counts, count, 0.99),
        }

    def _quantile(self, counts: List[int], count: int, q: float) -> float:
        """Linear interpolation inside the bucket straddling rank ``q*count``."""
        if count == 0:
            return 0.0
        rank = q * count
        cumulative = 0
        for index, bucket_count in enumerate(counts):
            if bucket_count == 0:
                continue
            previous = cumulative
            cumulative += bucket_count
            if cumulative >= rank:
                if index >= len(self._bounds):
                    # The +Inf bucket has no upper edge; report the last
                    # finite boundary (the estimate is a floor, like
                    # Prometheus's).
                    return self._bounds[-1]
                lower = self._bounds[index - 1] if index > 0 else 0.0
                upper = self._bounds[index]
                return lower + (upper - lower) * ((rank - previous) / bucket_count)
        return self._bounds[-1]


class MetricsRegistry:
    """The per-process (per-server, really) name table of metric objects.

    ``counter`` / ``gauge`` / ``histogram`` are idempotent get-or-create:
    the same (name, labels) pair always returns the same object, so call
    sites may re-resolve freely — but hot paths should resolve **once** and
    keep the object (registry access takes the registry lock and builds a
    label key).  :meth:`collect` returns the whole registry as plain
    JSON-compatible data (the ``metrics`` wire op's payload);
    :meth:`render_prometheus` renders the text exposition format.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[Tuple[str, Tuple], Counter] = {}
        self._gauges: Dict[Tuple[str, Tuple], Gauge] = {}
        self._histograms: Dict[Tuple[str, Tuple], Histogram] = {}

    # ------------------------------------------------------------------ #
    # Get-or-create
    # ------------------------------------------------------------------ #
    def counter(self, name: str, **labels: str) -> Counter:
        key = (name, _label_key(labels))
        with self._lock:
            metric = self._counters.get(key)
            if metric is None:
                metric = self._counters[key] = Counter(name, key[1])
            return metric

    def gauge(self, name: str, fn: Optional[Callable[[], float]] = None, **labels: str) -> Gauge:
        key = (name, _label_key(labels))
        with self._lock:
            metric = self._gauges.get(key)
            if metric is None:
                metric = self._gauges[key] = Gauge(name, key[1], fn)
            elif fn is not None:
                metric._fn = fn
            return metric

    def histogram(
        self,
        name: str,
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
        **labels: str,
    ) -> Histogram:
        key = (name, _label_key(labels))
        with self._lock:
            metric = self._histograms.get(key)
            if metric is None:
                metric = self._histograms[key] = Histogram(name, key[1], buckets)
            return metric

    # ------------------------------------------------------------------ #
    # Collection
    # ------------------------------------------------------------------ #
    def collect(self) -> Dict[str, Any]:
        """The registry as JSON-compatible data, quantiles precomputed."""
        with self._lock:
            counters = list(self._counters.values())
            gauges = list(self._gauges.values())
            histograms = list(self._histograms.values())
        return {
            "counters": [
                {"name": c.name, "labels": dict(c.labels), "value": c.value}
                for c in counters
            ],
            "gauges": [
                {"name": g.name, "labels": dict(g.labels), "value": g.value}
                for g in gauges
            ],
            "histograms": [
                dict(h.snapshot(), name=h.name, labels=dict(h.labels))
                for h in histograms
            ],
        }

    def counter_value(self, name: str, **labels: str) -> int:
        """Read one counter without creating it (0 when absent)."""
        key = (name, _label_key(labels))
        with self._lock:
            metric = self._counters.get(key)
        return metric.value if metric is not None else 0

    def render_prometheus(self) -> str:
        """The registry in Prometheus text exposition format (version 0.0.4)."""
        with self._lock:
            counters = list(self._counters.values())
            gauges = list(self._gauges.values())
            histograms = list(self._histograms.values())
        lines: List[str] = []
        seen_types: Dict[str, str] = {}

        def type_line(name: str, kind: str) -> None:
            if seen_types.get(name) != kind:
                seen_types[name] = kind
                lines.append(f"# TYPE {name} {kind}")

        for counter in sorted(counters, key=lambda m: (m.name, m.labels)):
            type_line(counter.name, "counter")
            lines.append(f"{counter.name}{_render_labels(counter.labels)} {counter.value}")
        for gauge in sorted(gauges, key=lambda m: (m.name, m.labels)):
            type_line(gauge.name, "gauge")
            lines.append(f"{gauge.name}{_render_labels(gauge.labels)} {gauge.value}")
        for histogram in sorted(histograms, key=lambda m: (m.name, m.labels)):
            type_line(histogram.name, "histogram")
            snap = histogram.snapshot()
            cumulative = 0
            for bound, bucket_count in snap["buckets"]:
                cumulative += bucket_count
                le = "+Inf" if bound == "+Inf" else repr(float(bound))
                labels = dict(histogram.labels)
                labels["le"] = le
                lines.append(
                    f"{histogram.name}_bucket{_render_labels(_label_key(labels))} {cumulative}"
                )
            lines.append(
                f"{histogram.name}_sum{_render_labels(histogram.labels)} {snap['sum']}"
            )
            lines.append(
                f"{histogram.name}_count{_render_labels(histogram.labels)} {snap['count']}"
            )
        return "\n".join(lines) + "\n"


# --------------------------------------------------------------------- #
# The Prometheus endpoint: a tiny stdlib HTTP listener
# --------------------------------------------------------------------- #
class MetricsExporter:
    """``GET /metrics`` → text exposition; ``GET /metrics.json`` → the
    :meth:`MetricsRegistry.collect` tree.  A daemon thread runs a stdlib
    :class:`~http.server.ThreadingHTTPServer`; scrapes never touch the
    serving event loop."""

    def __init__(self, registry: MetricsRegistry, *, host: str = "127.0.0.1", port: int = 0) -> None:
        self._registry = registry
        self._host = host
        self._port = port
        self._httpd = None
        self._thread: Optional[threading.Thread] = None

    def start(self) -> int:
        """Bind and serve in the background; returns the bound port."""
        from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

        registry = self._registry

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 (stdlib API name)
                path = self.path.split("?", 1)[0]
                if path in ("/metrics", "/"):
                    body = registry.render_prometheus().encode("utf-8")
                    content_type = "text/plain; version=0.0.4; charset=utf-8"
                elif path == "/metrics.json":
                    body = json.dumps(registry.collect(), separators=(",", ":")).encode("utf-8")
                    content_type = "application/json"
                else:
                    self.send_error(404)
                    return
                self.send_response(200)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, format: str, *args: Any) -> None:
                pass  # scrapes are not request-log events

        self._httpd = ThreadingHTTPServer((self._host, self._port), Handler)
        self._httpd.daemon_threads = True
        self._port = self._httpd.server_address[1]
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="ltam-metrics", daemon=True
        )
        self._thread.start()
        return self._port

    @property
    def port(self) -> int:
        return self._port

    def stop(self) -> None:
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None


# --------------------------------------------------------------------- #
# Tracing
# --------------------------------------------------------------------- #
class Span:
    """One timed (or instantaneous) operation inside a trace.

    ``start_us`` is wall-clock microseconds (comparable across processes,
    roughly); ``duration_us`` comes from the monotonic clock.  ``parent_id``
    links the tree — the root span of a forwarded request parents to the
    ``tctx`` span id it arrived with.
    """

    __slots__ = ("span_id", "parent_id", "name", "start_us", "duration_us", "meta", "_started")

    def __init__(self, name: str, span_id: str, parent_id: Optional[str], meta: Optional[Dict[str, Any]]) -> None:
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.start_us = int(time.time() * 1_000_000)
        self.duration_us = 0
        self.meta = meta
        self._started = time.perf_counter()

    def annotate(self, **meta: Any) -> None:
        """Attach key/value detail (cache outcome, partition name, ...)."""
        if self.meta is None:
            self.meta = {}
        self.meta.update(meta)

    def close(self) -> None:
        self.duration_us = int((time.perf_counter() - self._started) * 1_000_000)

    def to_wire(self) -> List[Any]:
        return [self.span_id, self.parent_id, self.name, self.start_us, self.duration_us, self.meta]

    @classmethod
    def from_wire(cls, item: Sequence[Any]) -> "Span":
        span = cls.__new__(cls)
        span.span_id, span.parent_id, span.name = item[0], item[1], item[2]
        span.start_us, span.duration_us = item[3], item[4]
        span.meta = item[5] if len(item) > 5 else None
        span._started = 0.0
        return span


# Ids need to be unique, not unguessable: span ids only disambiguate nodes
# within one trace tree, trace ids only correlate log lines.  A PRNG seeded
# once from the OS is ~2x faster per id than an os.urandom syscall, which
# matters because every recorded span draws one.  getrandbits on the shared
# Random is a single C call, so it is atomic under the GIL.
_rng = _random.Random(urandom(16))


def _new_id(nbytes: int) -> str:
    return "%0*x" % (nbytes * 2, _rng.getrandbits(nbytes * 8))


class Trace:
    """One request's identity plus the spans this process recorded for it.

    Internally locked: the router's scatter-gather activates the same trace
    on several fan-out threads at once, and each appends spans concurrently.
    """

    __slots__ = ("trace_id", "root_parent", "_spans", "_lock")

    def __init__(self, trace_id: Optional[str] = None, root_parent: Optional[str] = None) -> None:
        self.trace_id = trace_id or _new_id(8)
        self.root_parent = root_parent
        self._spans: List[Span] = []
        self._lock = threading.Lock()

    @classmethod
    def from_tctx(cls, tctx: Any) -> Optional["Trace"]:
        """Rebuild the caller's context from a ``tctx`` envelope field.

        Anything malformed yields ``None`` — a bad trace context must never
        fail the request it decorates.
        """
        if (
            isinstance(tctx, (list, tuple))
            and len(tctx) == 2
            and isinstance(tctx[0], str)
            and (tctx[1] is None or isinstance(tctx[1], str))
        ):
            return cls(tctx[0], tctx[1])
        return None

    def tctx(self, parent_span_id: Optional[str] = None) -> List[Optional[str]]:
        """The wire form to forward: ``[trace_id, parent_span_id]``."""
        return [self.trace_id, parent_span_id if parent_span_id is not None else self.root_parent]

    def begin(self, name: str, parent_id: Optional[str], meta: Optional[Dict[str, Any]] = None) -> Span:
        return Span(name, _new_id(4), parent_id, meta)

    def record(self, span: Span) -> None:
        with self._lock:
            self._spans.append(span)

    def event(self, name: str, parent_id: Optional[str], meta: Optional[Dict[str, Any]] = None) -> None:
        """An instantaneous span (cache outcome, bus apply, ...)."""
        self.record(Span(name, _new_id(4), parent_id, meta))

    def graft(self, wire_spans: Any) -> None:
        """Adopt spans a downstream server returned in its response envelope."""
        if not isinstance(wire_spans, (list, tuple)):
            return
        adopted = []
        for item in wire_spans:
            if isinstance(item, (list, tuple)) and len(item) >= 5:
                try:
                    adopted.append(Span.from_wire(item))
                except Exception:
                    continue
        with self._lock:
            self._spans.extend(adopted)

    def spans_to_wire(self) -> List[List[Any]]:
        with self._lock:
            spans = sorted(self._spans, key=lambda s: s.start_us)
        return [span.to_wire() for span in spans]

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)

    def __bool__(self) -> bool:
        # Without this, __len__ makes an empty (span-less) trace falsy and
        # any ``if trace`` guard silently treats it as absent.
        return True


# The active trace (and this thread's open-span stack) is thread-local:
# ``run_in_executor`` does not propagate contextvars, and the fan-out
# threads re-activate explicitly — so a plain ``threading.local`` is both
# simpler and faster than contextvars here.
_tls = threading.local()


def active_trace() -> Optional[Trace]:
    """The trace this thread is currently recording for, or ``None``.

    This is the whole disabled-path cost: one thread-local attribute read.
    """
    return getattr(_tls, "trace", None)


def activate(trace: Optional[Trace], parent_id: Optional[str] = None) -> None:
    """Make *trace* this thread's active trace (``None`` deactivates)."""
    _tls.trace = trace
    # ``trace is not None`` — Trace defines __len__, so an empty trace is
    # falsy and a plain truthiness test would drop the forwarded parent.
    _tls.stack = [
        parent_id
        if parent_id is not None
        else (trace.root_parent if trace is not None else None)
    ]


def deactivate() -> None:
    _tls.trace = None
    _tls.stack = [None]


@contextmanager
def activated(trace: Optional[Trace], parent_id: Optional[str] = None):
    """Activate *trace* for the duration of the block (save/restore nesting)."""
    previous_trace = getattr(_tls, "trace", None)
    previous_stack = getattr(_tls, "stack", None)
    activate(trace, parent_id)
    try:
        yield trace
    finally:
        _tls.trace = previous_trace
        _tls.stack = previous_stack if previous_stack is not None else [None]


def current_span_id() -> Optional[str]:
    """The innermost open span on this thread (parent for forwarded calls)."""
    stack = getattr(_tls, "stack", None)
    return stack[-1] if stack else None


class _NullSpan:
    """The shared no-op returned when tracing is off — one object, reused."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: Any) -> None:
        return None

    def annotate(self, **meta: Any) -> None:
        return None


_NULL_SPAN = _NullSpan()


class _OpenSpan:
    """Context manager recording one span on the active trace, maintaining
    this thread's parent stack so nested spans link automatically."""

    __slots__ = ("_trace", "_span")

    def __init__(self, trace: Trace, name: str, meta: Optional[Dict[str, Any]]) -> None:
        self._trace = trace
        self._span = trace.begin(name, current_span_id(), meta)

    def __enter__(self) -> Span:
        stack = getattr(_tls, "stack", None)
        if stack is None:
            stack = _tls.stack = [None]
        stack.append(self._span.span_id)
        return self._span

    def __exit__(self, *exc: Any) -> None:
        stack = getattr(_tls, "stack", None)
        if stack and stack[-1] == self._span.span_id:
            stack.pop()
        self._span.close()
        self._trace.record(self._span)


def trace_span(name: str, **meta: Any):
    """A context manager timing one span on the active trace — or the
    shared no-op when this thread is not tracing."""
    trace = active_trace()
    if trace is None:
        return _NULL_SPAN
    return _OpenSpan(trace, name, meta or None)


def trace_event(name: str, **meta: Any) -> None:
    """Record an instantaneous span on the active trace (no-op otherwise)."""
    trace = active_trace()
    if trace is not None:
        trace.event(name, current_span_id(), meta or None)


# --------------------------------------------------------------------- #
# Slow-request sampling
# --------------------------------------------------------------------- #
def dump_slow(
    logger: Any,
    *,
    op: str,
    trace: Trace,
    duration_ms: float,
    threshold_ms: float,
    wire: Optional[str] = None,
) -> None:
    """Write a request's full span tree to the request log.

    One NDJSON line on the ``repro.service.requests`` logger, shaped like
    the PR 8 access lines but flagged ``"slow": true`` and carrying the
    spans — a tail-latency decide is diagnosable after the fact.
    """
    payload = {
        "slow": True,
        "op": op,
        "trace_id": trace.trace_id,
        "duration_ms": round(duration_ms, 3),
        "threshold_ms": threshold_ms,
        "spans": trace.spans_to_wire(),
    }
    if wire is not None:
        payload["wire"] = wire
    logger.info(json.dumps(payload, separators=(",", ":"), default=str))
