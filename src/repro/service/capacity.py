"""The global capacity ledger: fabric-wide occupancy, replicated per partition.

Since PR 6 the partitioned fabric shipped with a documented correctness bug:
:class:`~repro.api.stages.CapacityStage` counted occupancy in the owner
partition's **local** projection only, so a location whose occupants span
partitions could be oversubscribed without a single denial.  This module is
the fix's passive half — the replicated counter itself:

* each partition **publishes** per-location absolute occupancy counts over
  the :class:`~repro.service.bus.InvalidationBus`, derived from the same
  :class:`~repro.storage.movement_db.MovementNotice` stream that already
  drives cache invalidation (the counts are read back from the movement
  store's O(1) occupancy projection at publish time, never folded from the
  notices themselves — out-of-order delivery can therefore never make the
  replicated value diverge from the publisher's truth);
* every partition **folds** its peers' vectors into a
  :class:`CapacityLedger` keyed by bus origin, and serves
  ``occupancy_of(location)`` as *local projection + remote ledger* — each
  subject's stay is counted by exactly one partition (its owner), so the
  sum is the global count whenever the vectors are current;
* the fabric router's two-phase ``sync`` fan-out is the convergence
  barrier: phase one flushes every partition's pending publishes to the
  hub (the bus link's outbox is FIFO, so a sync pong proves the frames
  before it arrived), phase two delivers every peer's phase-one publishes
  everywhere.  After it returns, every ledger agrees.

Absolute counts (not deltas) keep reconciliation trivial: a ``full``
vector replaces an origin's state wholesale (bus resync, late join,
``reshard()``), and replaying an old partial is idempotent — the last
write per location wins, and the publisher always writes the truth.

Standalone servers never construct a ledger; ``occupancy_of`` falls back
to the local projection, exactly the pre-fabric behavior.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Mapping, Optional

__all__ = ["CapacityLedger"]


class CapacityLedger:
    """Per-location occupancy replicated from the other partitions.

    The ledger stores one non-negative integer vector per bus *origin*
    (peer partition) plus a maintained per-location total, so
    :meth:`remote_occupancy` is O(1) on the decide hot path.  Zero counts
    are pruned — an origin's vector only names locations it currently has
    occupants in, which keeps the convergence comparison in ``repro route
    --status`` exact (publishers emit vectors with the same property).

    Thread safety: folds arrive on the bus link's reader thread while the
    decide path reads concurrently; one lock covers both.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._remote: Dict[str, Dict[str, int]] = {}
        self._totals: Dict[str, int] = {}
        self._applied = 0
        self._last_fold: Optional[float] = None

    # -- the decide hot path ------------------------------------------- #
    def remote_occupancy(self, location: str) -> int:
        """Peers' occupants currently inside *location* — O(1)."""
        with self._lock:
            return self._totals.get(location, 0)

    # -- folding peer publishes ---------------------------------------- #
    def apply(
        self, origin: str, counts: Mapping[str, int], *, full: bool = False
    ) -> List[str]:
        """Fold one peer publish; returns the locations whose remote total
        changed (the caller evicts those from the decision cache).

        A *partial* publish (``full=False``) merges only the named
        locations into *origin*'s vector; a *full* publish replaces the
        vector wholesale — the reconciliation form used on bus resync and
        after a reshard.  Counts are absolute, so re-applying is
        idempotent and ordering within one origin is last-write-wins.
        """
        changed: List[str] = []
        with self._lock:
            vector = self._remote.setdefault(str(origin), {})
            updates = {str(location): int(count) for location, count in counts.items()}
            if full:
                for location in list(vector):
                    if location not in updates:
                        updates[location] = 0
            for location, count in updates.items():
                previous = vector.get(location, 0)
                if count == previous:
                    continue
                if count > 0:
                    vector[location] = count
                else:
                    vector.pop(location, None)
                total = self._totals.get(location, 0) + (count - previous)
                if total > 0:
                    self._totals[location] = total
                else:
                    self._totals.pop(location, None)
                changed.append(location)
            if not vector:
                self._remote.pop(str(origin), None)
            self._applied += 1
            self._last_fold = time.monotonic()
        return sorted(changed)

    def drop_origin(self, origin: str) -> List[str]:
        """Forget one peer's vector entirely (a partition leaving the
        fabric); returns the locations whose total changed."""
        return self.apply(origin, {}, full=True)

    # -- introspection -------------------------------------------------- #
    def remote_vectors(self) -> Dict[str, Dict[str, int]]:
        """Per-origin vectors, deep-copied (health / convergence reports)."""
        with self._lock:
            return {origin: dict(vector) for origin, vector in self._remote.items()}

    def totals(self) -> Dict[str, int]:
        """The summed remote vector, copied."""
        with self._lock:
            return dict(self._totals)

    @property
    def origins(self) -> List[str]:
        with self._lock:
            return sorted(self._remote)

    @property
    def lag_seconds(self) -> float:
        """Seconds since the newest remote fold (0.0 before the first one).

        This is the ledger's staleness signal, not a delivery latency: a
        quiet fabric legitimately grows it, but a partition whose peers
        are publishing while this number climbs has a dead bus link.
        """
        with self._lock:
            if self._last_fold is None:
                return 0.0
            return max(0.0, time.monotonic() - self._last_fold)

    @property
    def stats(self) -> Dict[str, object]:
        with self._lock:
            return {
                "origins": sorted(self._remote),
                "locations": len(self._totals),
                "applied": self._applied,
                "remote_occupants": sum(self._totals.values()),
            }
