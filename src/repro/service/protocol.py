"""The wire codec of the authorization service.

One frame = one line of compact JSON, UTF-8, ``\\n``-terminated (NDJSON) —
or, after a per-connection ``hello`` negotiation, one length-prefixed
binary frame carrying the *same* message tree through the compact codec in
:mod:`repro.service.wire`.  Everything in this module is framing-agnostic:
it maps library objects to plain JSON-compatible trees and back, and both
framings ship those trees verbatim.
Requests are envelopes ``{"op": ..., "id": ..., **payload}``; responses are
``{"id": ..., "ok": true, "result": ...}`` or
``{"id": ..., "ok": false, "error": {...}}``.  The codec round-trips every
payload the protocol carries:

* access requests and :class:`~repro.api.decision.Decision` objects —
  including the full per-stage trace (stage, outcome, detail, denial
  reason, admitting authorization, entries used), so a remote caller can
  ``decision.explain()`` exactly like an embedded one;
* movement records (compact ``[time, subject, location, kind]`` arrays —
  the ingest hot path ships tens of thousands per frame);
* alerts, checkpoint receipts, and tabular query results;
* **typed errors**: the server serializes the error class name and the
  client re-raises the matching class from :mod:`repro.errors` /
  :mod:`repro.service.errors` — ``except StorageError`` works the same
  embedded and remote.  An :class:`~repro.errors.IngestError` additionally
  carries its rejected batches *with their records*, so remote submitters
  can retry or dead-letter exactly what was dropped.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional, Sequence

import repro.errors as _errors
from repro.core.requests import AccessRequest, DenialReason
from repro.core.serialization import authorization_from_dict, authorization_to_dict
from repro.engine.alerts import Alert, AlertKind
from repro.engine.query.ast import QueryResult
from repro.api.decision import Decision, StageOutcome, StageResult
from repro.storage.ingest import BatchFailure
from repro.storage.movement_db import Checkpoint, MovementRecord
from repro.service.errors import (
    ProtocolError,
    RemoteServiceError,
    ServiceAuthError,
    ServiceBusyError,
    ServiceConnectionError,
    ServiceError,
)

__all__ = [
    "OPS",
    "encode_frame",
    "decode_frame",
    "request_to_dict",
    "request_from_dict",
    "record_to_wire",
    "record_from_wire",
    "records_to_wire",
    "records_from_wire",
    "stage_result_to_dict",
    "stage_result_from_dict",
    "decision_to_dict",
    "decision_from_dict",
    "alert_to_dict",
    "alert_from_dict",
    "checkpoint_to_dict",
    "checkpoint_from_dict",
    "query_result_to_dict",
    "query_result_from_dict",
    "error_to_dict",
    "error_from_dict",
    "strip_trace",
    "elide_decision",
]

#: The operations the service understands.
OPS = (
    # wire-format negotiation (always answered in the current framing)
    "hello",
    "decide",
    "decide_many",
    "enforce",
    "observe",
    "observe_batch",
    "query",
    "checkpoint",
    "sync",
    "health",
    # the telemetry registry as structured JSON (see repro.service.telemetry)
    "metrics",
    # partition handoff (the fabric's reshard path)
    "export_subjects",
    "import_archive",
    "forget_subjects",
    "list_subjects",
    # router-only: install a new partition map (live migration)
    "reshard",
)


# --------------------------------------------------------------------- #
# Frames
# --------------------------------------------------------------------- #
def encode_frame(message: Dict[str, Any]) -> bytes:
    """Serialize one protocol message as a compact JSON line."""
    return json.dumps(message, separators=(",", ":"), ensure_ascii=False).encode("utf-8") + b"\n"


def decode_frame(line: bytes) -> Dict[str, Any]:
    """Parse one received line into a message dictionary."""
    try:
        message = json.loads(line)
    except (ValueError, UnicodeDecodeError) as exc:
        raise ProtocolError(f"malformed frame: {exc}") from None
    if not isinstance(message, dict):
        raise ProtocolError(f"a frame must be a JSON object, got {type(message).__name__}")
    return message


def _require(payload: Dict[str, Any], field: str) -> Any:
    try:
        return payload[field]
    except (KeyError, TypeError):
        raise ProtocolError(f"payload misses required field {field!r}") from None


# --------------------------------------------------------------------- #
# Access requests
# --------------------------------------------------------------------- #
def request_to_dict(request: AccessRequest) -> Dict[str, Any]:
    """The wire form of one access request."""
    return {
        "time": request.time,
        "subject": request.subject,
        "location": request.location,
        "request_id": request.request_id,
    }


def request_from_dict(payload: Dict[str, Any]) -> AccessRequest:
    """Rebuild an access request (the request id is preserved when present)."""
    if not isinstance(payload, dict):
        raise ProtocolError(f"an access request must be an object, got {payload!r}")
    request_id = payload.get("request_id")
    kwargs = {} if request_id is None else {"request_id": request_id}
    return AccessRequest(
        _require(payload, "time"),
        _require(payload, "subject"),
        _require(payload, "location"),
        **kwargs,
    )


# --------------------------------------------------------------------- #
# Movement records (compact arrays: the ingest hot path)
# --------------------------------------------------------------------- #
def record_to_wire(record: MovementRecord) -> List[Any]:
    """``[time, subject, location, kind]`` — compact, order-defined."""
    return [record.time, record.subject, record.location, record.kind.value]


def record_from_wire(item: Sequence[Any]) -> MovementRecord:
    """Rebuild (and re-validate) one movement record from its wire array."""
    if not isinstance(item, (list, tuple)) or len(item) != 4:
        raise ProtocolError(f"a movement record must be a [time, subject, location, kind] array, got {item!r}")
    time, subject, location, kind = item
    try:
        return MovementRecord(time, subject, location, kind)
    except (ValueError, _errors.LTAMError) as exc:
        raise ProtocolError(f"invalid movement record {item!r}: {exc}") from None


def records_to_wire(records: Iterable[MovementRecord]) -> List[List[Any]]:
    """Encode a whole batch of movement records."""
    return [[r.time, r.subject, r.location, r.kind.value] for r in records]


def records_from_wire(items: Sequence[Sequence[Any]]) -> List[MovementRecord]:
    """Decode a whole batch, validating every record."""
    return [record_from_wire(item) for item in items]


# --------------------------------------------------------------------- #
# Decisions and their traces
# --------------------------------------------------------------------- #
def stage_result_to_dict(result: StageResult) -> Dict[str, Any]:
    """The wire form of one trace entry."""
    return {
        "stage": result.stage,
        "outcome": result.outcome.value,
        "detail": result.detail,
        "reason": result.reason.value if result.reason is not None else None,
        "authorization": (
            authorization_to_dict(result.authorization) if result.authorization is not None else None
        ),
        "entries_used": result.entries_used,
    }


def stage_result_from_dict(payload: Dict[str, Any]) -> StageResult:
    """Rebuild one trace entry."""
    reason = payload.get("reason")
    authorization = payload.get("authorization")
    return StageResult(
        _require(payload, "stage"),
        StageOutcome(_require(payload, "outcome")),
        detail=payload.get("detail", ""),
        reason=DenialReason(reason) if reason is not None else None,
        authorization=authorization_from_dict(authorization) if authorization is not None else None,
        entries_used=payload.get("entries_used", 0),
    )


def decision_to_dict(decision: Decision, *, include_trace: bool = True) -> Dict[str, Any]:
    """The wire form of a decision, per-stage trace included by default."""
    payload: Dict[str, Any] = {
        "request": request_to_dict(decision.request),
        "granted": decision.granted,
        "authorization": (
            authorization_to_dict(decision.authorization)
            if decision.authorization is not None
            else None
        ),
        "reason": decision.reason.value if decision.reason is not None else None,
        "entries_used": decision.entries_used,
    }
    if include_trace:
        payload["trace"] = [stage_result_to_dict(result) for result in decision.trace]
    return payload


def decision_from_dict(
    payload: Dict[str, Any], *, request: Optional[AccessRequest] = None
) -> Decision:
    """Rebuild a decision (an absent trace yields an empty one).

    Trace-elided responses do not echo the request; callers that know which
    request they sent pass it as ``request`` and the decision is rebuilt
    around it.  A payload that carries an echo wins over the fallback.
    """
    if not isinstance(payload, dict):
        raise ProtocolError(f"a decision must be an object, got {payload!r}")
    reason = payload.get("reason")
    authorization = payload.get("authorization")
    echoed = payload.get("request")
    if echoed is not None:
        request = request_from_dict(echoed)
    elif request is None:
        request = request_from_dict(_require(payload, "request"))
    return Decision(
        request,
        bool(_require(payload, "granted")),
        authorization_from_dict(authorization) if authorization is not None else None,
        DenialReason(reason) if reason is not None else None,
        payload.get("entries_used", 0),
        tuple(stage_result_from_dict(entry) for entry in payload.get("trace", ())),
    )


# --------------------------------------------------------------------- #
# Alerts, checkpoint receipts, query results
# --------------------------------------------------------------------- #
def alert_to_dict(alert: Alert) -> Dict[str, Any]:
    """The wire form of one alert."""
    return {
        "time": alert.time,
        "kind": alert.kind.value,
        "subject": alert.subject,
        "location": alert.location,
        "message": alert.message,
        "authorization_id": alert.authorization_id,
    }


def alert_from_dict(payload: Dict[str, Any]) -> Alert:
    """Rebuild one alert."""
    return Alert(
        _require(payload, "time"),
        AlertKind(_require(payload, "kind")),
        _require(payload, "subject"),
        _require(payload, "location"),
        payload.get("message", ""),
        authorization_id=payload.get("authorization_id"),
    )


def checkpoint_to_dict(receipt: Checkpoint) -> Dict[str, Any]:
    """The wire form of a checkpoint receipt."""
    return {
        "position": receipt.position,
        "archived": receipt.archived,
        "subjects_inside": receipt.subjects_inside,
        "pairs": receipt.pairs,
    }


def checkpoint_from_dict(payload: Dict[str, Any]) -> Checkpoint:
    """Rebuild a checkpoint receipt."""
    return Checkpoint(
        _require(payload, "position"),
        _require(payload, "archived"),
        _require(payload, "subjects_inside"),
        _require(payload, "pairs"),
    )


def query_result_to_dict(result: QueryResult) -> Dict[str, Any]:
    """The wire form of a tabular query result."""
    return {
        "kind": result.kind,
        "columns": list(result.columns),
        "rows": [list(row) for row in result.rows],
        "scalar": result.scalar,
    }


def query_result_from_dict(payload: Dict[str, Any]) -> QueryResult:
    """Rebuild a query result (rows come back as tuples, like the original)."""
    return QueryResult(
        _require(payload, "kind"),
        tuple(_require(payload, "columns")),
        tuple(tuple(row) for row in payload.get("rows", ())),
        scalar=payload.get("scalar"),
    )


# --------------------------------------------------------------------- #
# Typed errors
# --------------------------------------------------------------------- #
def _error_registry() -> Dict[str, type]:
    registry: Dict[str, type] = {}
    for value in vars(_errors).values():
        if isinstance(value, type) and issubclass(value, _errors.LTAMError):
            registry[value.__name__] = value
    for value in (
        ServiceError,
        ProtocolError,
        ServiceAuthError,
        ServiceBusyError,
        ServiceConnectionError,
        RemoteServiceError,
    ):
        registry[value.__name__] = value
    return registry


_ERROR_REGISTRY = _error_registry()


def error_to_dict(error: BaseException) -> Dict[str, Any]:
    """Serialize an error: class name, message, and any failed ingest batches."""
    payload: Dict[str, Any] = {"type": type(error).__name__, "message": str(error)}
    failures = getattr(error, "failures", None)
    if failures:
        payload["failures"] = [
            {
                "error": {"type": type(f.error).__name__, "message": str(f.error)},
                "records": records_to_wire(f.records),
            }
            for f in failures
        ]
    return payload


def error_from_dict(payload: Dict[str, Any]) -> Exception:
    """Rebuild the typed error a server reported.

    Unknown error types (including server-side non-library exceptions)
    become :class:`RemoteServiceError` with the original type in the
    message.  Failed ingest batches are re-attached as ``.failures``
    (:class:`~repro.storage.ingest.BatchFailure` objects with their
    records), mirroring what a local flush would have raised.
    """
    name = payload.get("type", "RemoteServiceError")
    message = payload.get("message", "(no message)")
    cls = _ERROR_REGISTRY.get(name)
    if cls is None:
        error: Exception = RemoteServiceError(f"{name}: {message}")
    else:
        error = cls(message)
    raw_failures = payload.get("failures")
    if raw_failures:
        failures = []
        for item in raw_failures:
            inner = item.get("error", {})
            inner_cls = _ERROR_REGISTRY.get(inner.get("type", ""), RemoteServiceError)
            records = tuple(records_from_wire(item.get("records", ())))
            failures.append(
                BatchFailure(inner_cls(inner.get("message", "(no message)")), len(records), records)
            )
        error.failures = failures  # type: ignore[attr-defined]
    return error


def strip_trace(encoded_decision: Dict[str, Any]) -> Dict[str, Any]:
    """A copy of an encoded decision without its trace (bandwidth knob)."""
    return {key: value for key, value in encoded_decision.items() if key != "trace"}


def elide_decision(encoded_decision: Dict[str, Any]) -> Dict[str, Any]:
    """The trace-elided wire form: no trace, no request echo.

    Outcome, denial reason, entries used and the admitting authorization
    stay (a granted decision without its authorization would not be a valid
    :class:`~repro.core.requests.AccessDecision`); the caller knows which
    request it sent, so the echo is pure bandwidth.
    """
    return {
        key: value
        for key, value in encoded_decision.items()
        if key != "trace" and key != "request"
    }
