"""The negotiated compact binary wire format.

Every serving process in the repo speaks newline-delimited JSON by default —
one UTF-8 JSON object per line.  That framing is self-describing and
debuggable, but at fleet scale the codec *is* the hot path: C ``json`` wins
on raw byte crunching, yet NDJSON re-ships every subject name, location
name, op name and dict key on every frame, and (historically) every
response dragged a full per-stage decision trace with it.

This module is the compact alternative:

* **Length-prefixed frames** — a big-endian ``u32`` byte count followed by
  the frame body.  A reader always knows exactly how many bytes to wait
  for, so a truncated peer surfaces as a typed transport error instead of
  a hang, and a garbage *body* never desynchronizes the stream (the next
  frame boundary is still known).
* **A small tag-based value codec** (stdlib ``struct`` only) covering the
  JSON data model: ``None``/bools, ints (fixint/i8/i32/i64/bigint),
  float64, UTF-8 strings, lists and string-keyed maps.  Anything the
  NDJSON protocol can say, this codec can say — the decoded value is the
  *same* Python object tree, so every handler above the framing layer is
  format-blind.
* **Per-connection interning** — the request direction carries subject,
  location and action ids (and dict keys, op names, …) as 3-byte
  references after the string's second occurrence on the connection.  The
  encoder owns the table: an ``INTERN_DEF`` tag both defines and carries
  the string, so the decoder needs no negotiation beyond reading frames in
  order.  One-shot strings (``request_id`` counters and friends) never
  enter the table.
* **Splicable fragments** — :func:`encode_value` is intern-free and
  self-contained, so a pre-encoded fragment (a cached decision, say) can
  be wrapped in :class:`Raw` and spliced verbatim into any envelope on any
  connection.  This is what lets the decision cache keep *binary-ready*
  response fragments next to its JSON ones.

Negotiation is deliberately boring: a client that wants binary sends an
NDJSON ``hello`` op first.  A binary-capable server answers
``{"wire": "binary"}`` (still as NDJSON) and both sides switch framing for
every subsequent frame; a JSON-only server either answers
``{"wire": "json"}`` (new, ``--wire json``) or rejects the unknown op with
a typed :class:`~repro.service.errors.ProtocolError` (old), and the client
stays on NDJSON.  No flag day, no sniffing.
"""

from __future__ import annotations

import asyncio
import struct
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.service.errors import ProtocolError

__all__ = [
    "BINARY",
    "JSON",
    "WIRE_VERSION",
    "Decoder",
    "Encoder",
    "Raw",
    "encode_value",
    "pack_frame",
    "read_frame",
    "negotiate_hello",
]

WIRE_VERSION = 1
BINARY = "binary"
JSON = "json"

# ------------------------------------------------------------------ #
# Tags.  0x00..0x7F is the small non-negative int itself ("fixint");
# everything else is one of these.
# ------------------------------------------------------------------ #
_T_NONE = 0xC0
_T_FALSE = 0xC2
_T_TRUE = 0xC3
_T_INT8 = 0xC4
_T_INT32 = 0xC5
_T_INT64 = 0xC6
_T_BIGINT = 0xC7
_T_FLOAT64 = 0xC8
_T_STR8 = 0xC9
_T_STR32 = 0xCA
_T_INTERN_DEF = 0xCB
_T_INTERN_REF = 0xCC
_T_LIST32 = 0xCD
_T_MAP32 = 0xCE

_FIXINT_MAX = 0x7F
#: Only short strings are intern candidates; long ones are rare and the
#: 3-byte reference saves proportionally little.
INTERN_MAX_BYTES = 255
#: Per-connection intern table cap; beyond it strings ship plain.
INTERN_TABLE_MAX = 4096
#: Cap on the "seen once" promotion set so one-shot strings (request ids)
#: cannot grow per-connection state without bound.
_CANDIDATE_SET_MAX = 8192

_FRAME_HEADER = struct.Struct(">I")
_pack_i8 = struct.Struct(">Bb").pack
_pack_i32 = struct.Struct(">Bi").pack
_pack_i64 = struct.Struct(">Bq").pack
_pack_f64 = struct.Struct(">Bd").pack
_pack_len32 = struct.Struct(">BI").pack
_pack_str8 = struct.Struct(">BB").pack
_pack_def = struct.Struct(">BHB").pack
_pack_ref = struct.Struct(">BH").pack
_unpack_u16 = struct.Struct(">H").unpack_from
_unpack_u32 = struct.Struct(">I").unpack_from
_unpack_i8 = struct.Struct(">b").unpack_from
_unpack_i32 = struct.Struct(">i").unpack_from
_unpack_i64 = struct.Struct(">q").unpack_from
_unpack_f64 = struct.Struct(">d").unpack_from

_SMALL_INT = [bytes((value,)) for value in range(_FIXINT_MAX + 1)]
_B_NONE = bytes((_T_NONE,))
_B_FALSE = bytes((_T_FALSE,))
_B_TRUE = bytes((_T_TRUE,))

_INT8_MIN, _INT32_MIN, _INT32_MAX = -0x80, -(1 << 31), (1 << 31) - 1
_INT64_MIN, _INT64_MAX = -(1 << 63), (1 << 63) - 1


class Raw:
    """A pre-encoded, *intern-free* value fragment spliced in verbatim.

    The bytes must come from :func:`encode_value` (never from a stateful
    :class:`Encoder`): a fragment carrying connection-specific intern
    references would decode differently — or not at all — on another
    connection.
    """

    __slots__ = ("data",)

    def __init__(self, data: bytes) -> None:
        self.data = data


def _encode_int(value: int, out: List[bytes]) -> None:
    if 0 <= value <= _FIXINT_MAX:
        out.append(_SMALL_INT[value])
    elif _INT8_MIN <= value < 0:
        out.append(_pack_i8(_T_INT8, value))
    elif _INT32_MIN <= value <= _INT32_MAX:
        out.append(_pack_i32(_T_INT32, value))
    elif _INT64_MIN <= value <= _INT64_MAX:
        out.append(_pack_i64(_T_INT64, value))
    else:
        data = value.to_bytes((value.bit_length() + 8) // 8, "big", signed=True)
        out.append(_pack_len32(_T_BIGINT, len(data)))
        out.append(data)


def _encode_str(value: str, out: List[bytes], encoder: Optional["Encoder"]) -> None:
    if encoder is not None:
        packed_ref = encoder._seen.get(value)
        if packed_ref is not None:
            out.append(packed_ref)
            return
    try:
        data = value.encode("utf-8")
    except UnicodeEncodeError as exc:
        raise ProtocolError(f"string is not UTF-8 encodable: {exc}") from None
    length = len(data)
    if encoder is not None and 0 < length <= INTERN_MAX_BYTES:
        candidates = encoder._candidates
        if value in candidates:
            if len(encoder._seen) < INTERN_TABLE_MAX:
                ident = len(encoder._seen)
                encoder._seen[value] = _pack_ref(_T_INTERN_REF, ident)
                candidates.discard(value)
                out.append(_pack_def(_T_INTERN_DEF, ident, length))
                out.append(data)
                return
        else:
            if len(candidates) >= _CANDIDATE_SET_MAX:
                candidates.clear()
            candidates.add(value)
    if length <= 0xFF:
        out.append(_pack_str8(_T_STR8, length))
    else:
        out.append(_pack_len32(_T_STR32, length))
    out.append(data)


def _encode_into(value: Any, out: List[bytes], encoder: Optional["Encoder"]) -> None:
    if value is None:
        out.append(_B_NONE)
        return
    kind = type(value)
    if kind is bool:
        out.append(_B_TRUE if value else _B_FALSE)
    elif kind is int:
        _encode_int(value, out)
    elif kind is str:
        _encode_str(value, out, encoder)
    elif kind is dict:
        out.append(_pack_len32(_T_MAP32, len(value)))
        for key, item in value.items():
            if type(key) is not str:
                raise ProtocolError(
                    f"map keys must be strings, not {type(key).__name__}"
                )
            _encode_str(key, out, encoder)
            _encode_into(item, out, encoder)
    elif kind is list or kind is tuple:
        out.append(_pack_len32(_T_LIST32, len(value)))
        for item in value:
            _encode_into(item, out, encoder)
    elif kind is float:
        out.append(_pack_f64(_T_FLOAT64, value))
    elif kind is Raw:
        out.append(value.data)
    elif isinstance(value, bool):
        out.append(_B_TRUE if value else _B_FALSE)
    elif isinstance(value, int):
        _encode_int(int(value), out)
    elif isinstance(value, float):
        out.append(_pack_f64(_T_FLOAT64, float(value)))
    elif isinstance(value, str):
        _encode_str(str(value), out, encoder)
    elif isinstance(value, (list, tuple)):
        out.append(_pack_len32(_T_LIST32, len(value)))
        for item in value:
            _encode_into(item, out, encoder)
    elif isinstance(value, dict):
        _encode_into(dict(value), out, encoder)
    else:
        raise ProtocolError(
            f"the binary codec cannot encode {type(value).__name__} values"
        )


def encode_value(value: Any) -> bytes:
    """Encode one value without interning — self-contained, cacheable bytes."""
    out: List[bytes] = []
    try:
        _encode_into(value, out, None)
    except RecursionError:
        raise ProtocolError("value nests too deeply for the binary codec") from None
    return b"".join(out)


class Encoder:
    """A stateful per-connection, per-direction interning encoder.

    Frames produced by one encoder must be decoded **in order** by one
    :class:`Decoder` — the intern table is carried in the stream itself
    (``INTERN_DEF`` defines, ``INTERN_REF`` back-references).  A string
    enters the table on its *second* occurrence, so one-shot strings never
    consume table slots.
    """

    __slots__ = ("_seen", "_candidates")

    def __init__(self) -> None:
        self._seen: Dict[str, bytes] = {}
        self._candidates: Set[str] = set()

    def encode(self, value: Any) -> bytes:
        out: List[bytes] = []
        try:
            _encode_into(value, out, self)
        except RecursionError:
            raise ProtocolError("value nests too deeply for the binary codec") from None
        return b"".join(out)


class Decoder:
    """The matching stateful decoder (also decodes intern-free fragments)."""

    __slots__ = ("_table",)

    def __init__(self) -> None:
        self._table: Dict[int, str] = {}

    def decode(self, body: bytes) -> Any:
        try:
            value, offset = self._decode(body, 0)
        except ProtocolError:
            raise
        except (IndexError, struct.error) as exc:
            raise ProtocolError(f"truncated binary frame: {exc}") from None
        except UnicodeDecodeError as exc:
            raise ProtocolError(f"binary frame carries invalid UTF-8: {exc}") from None
        except RecursionError:
            raise ProtocolError("binary frame nests too deeply") from None
        if offset != len(body):
            raise ProtocolError(
                f"binary frame has {len(body) - offset} trailing byte(s)"
            )
        return value

    def _decode(self, buf: bytes, pos: int) -> Tuple[Any, int]:
        tag = buf[pos]
        pos += 1
        if tag <= _FIXINT_MAX:
            return tag, pos
        if tag == _T_STR8:
            length = buf[pos]
            pos += 1
            end = pos + length
            if end > len(buf):
                raise ProtocolError("truncated binary frame: short string body")
            return buf[pos:end].decode("utf-8"), end
        if tag == _T_INTERN_REF:
            (ident,) = _unpack_u16(buf, pos)
            try:
                return self._table[ident], pos + 2
            except KeyError:
                raise ProtocolError(f"unknown interned string id {ident}") from None
        if tag == _T_INTERN_DEF:
            (ident,) = _unpack_u16(buf, pos)
            length = buf[pos + 2]
            pos += 3
            end = pos + length
            if end > len(buf):
                raise ProtocolError("truncated binary frame: short interned string")
            text = buf[pos:end].decode("utf-8")
            self._table[ident] = text
            return text, end
        if tag == _T_MAP32:
            (count,) = _unpack_u32(buf, pos)
            pos += 4
            if count > len(buf) - pos:
                raise ProtocolError("binary map header exceeds the frame")
            result: Dict[str, Any] = {}
            decode = self._decode
            for _ in range(count):
                key, pos = decode(buf, pos)
                if type(key) is not str:
                    raise ProtocolError("binary map keys must be strings")
                result[key], pos = decode(buf, pos)
            return result, pos
        if tag == _T_LIST32:
            (count,) = _unpack_u32(buf, pos)
            pos += 4
            if count > len(buf) - pos:
                raise ProtocolError("binary list header exceeds the frame")
            items: List[Any] = []
            append = items.append
            decode = self._decode
            for _ in range(count):
                item, pos = decode(buf, pos)
                append(item)
            return items, pos
        if tag == _T_NONE:
            return None, pos
        if tag == _T_TRUE:
            return True, pos
        if tag == _T_FALSE:
            return False, pos
        if tag == _T_INT8:
            return _unpack_i8(buf, pos)[0], pos + 1
        if tag == _T_INT32:
            return _unpack_i32(buf, pos)[0], pos + 4
        if tag == _T_INT64:
            return _unpack_i64(buf, pos)[0], pos + 8
        if tag == _T_FLOAT64:
            return _unpack_f64(buf, pos)[0], pos + 8
        if tag == _T_BIGINT:
            (length,) = _unpack_u32(buf, pos)
            pos += 4
            end = pos + length
            if end > len(buf):
                raise ProtocolError("truncated binary frame: short bigint body")
            return int.from_bytes(buf[pos:end], "big", signed=True), end
        if tag == _T_STR32:
            (length,) = _unpack_u32(buf, pos)
            pos += 4
            end = pos + length
            if end > len(buf):
                raise ProtocolError("truncated binary frame: short string body")
            return buf[pos:end].decode("utf-8"), end
        raise ProtocolError(f"unknown binary wire tag 0x{tag:02x}")


# ------------------------------------------------------------------ #
# Framing
# ------------------------------------------------------------------ #
def pack_frame(body: bytes) -> bytes:
    """Prefix a frame body with its big-endian u32 byte count."""
    return _FRAME_HEADER.pack(len(body)) + body


def frame_length(header: bytes, frame_limit: int) -> int:
    """Validate a 4-byte frame header; returns the body length."""
    (length,) = _FRAME_HEADER.unpack(header)
    if length == 0:
        raise ProtocolError("zero-length binary frame")
    if length > frame_limit:
        raise ProtocolError(
            f"binary frame of {length} bytes exceeds the {frame_limit}-byte limit"
        )
    return length


async def read_frame(reader: asyncio.StreamReader, frame_limit: int) -> Optional[bytes]:
    """Read one length-prefixed frame body; ``None`` once the peer is gone.

    A peer that disappears mid-frame is indistinguishable from one that
    closed cleanly as far as a *server* cares — both return ``None`` and the
    connection is dropped.  An over-limit or zero length raises
    :class:`ProtocolError` (the body was not consumed, so the caller must
    close the connection after reporting it).
    """
    try:
        header = await reader.readexactly(4)
    except asyncio.IncompleteReadError:
        return None
    length = frame_length(header, frame_limit)
    try:
        return await reader.readexactly(length)
    except asyncio.IncompleteReadError:
        return None


# ------------------------------------------------------------------ #
# Negotiation
# ------------------------------------------------------------------ #
def negotiate_hello(message: Dict[str, Any], *, binary_enabled: bool) -> Tuple[str, Dict[str, Any]]:
    """Handle a ``hello`` op: pick the best mutually supported wire format.

    Returns ``(chosen_format, result_payload)``.  The response itself always
    travels in the *current* (JSON) framing; the switch — if any — applies
    to every frame after it.
    """
    offered = message.get("wire", [])
    if isinstance(offered, str):
        offered = [offered]
    if not isinstance(offered, list) or not all(isinstance(name, str) for name in offered):
        raise ProtocolError("hello 'wire' must be a format name or a list of names")
    chosen = BINARY if (binary_enabled and BINARY in offered) else JSON
    formats = [JSON, BINARY] if binary_enabled else [JSON]
    # Capability advertisement: this server understands the optional `tctx`
    # trace-context envelope field (on both framings) and echoes recorded
    # spans back in traced responses.  Old clients ignore the key; old
    # servers simply never send it — `tctx` itself is an ordinary map entry
    # peers without the capability skip, so no handshake gating is needed.
    # On the binary codec the repeated "tctx" key interns per connection
    # (3-byte refs from its second use) while the one-shot id strings stay
    # out of the intern table (a string is only interned on its second
    # occurrence), keeping the extension INTERN-friendly by construction.
    return chosen, {
        "wire": chosen,
        "formats": formats,
        "version": WIRE_VERSION,
        "telemetry": ["tctx"],
    }
