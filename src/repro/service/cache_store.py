"""The durable decision-cache tier: disk spill + warm restart.

PRs 4–7 made the cached decide path the fleet's hot path, but the
:class:`~repro.service.cache.DecisionCache` is RAM-only: every server
restart, reshard or replica recovery starts cold exactly when the fleet is
most fragile, and the hot set is bounded by memory.  This module adds the
persistence layer underneath it:

* :class:`CacheStore` — a SQLite **sidecar file** holding cache entries
  keyed ``(subject, location, action, time_bucket)`` with their originating
  generation, the movement-log *position* they were valid at, and the
  **pre-serialized wire fragments verbatim** (JSON eagerly, binary when it
  was ever computed) — a disk hit skips the pipeline *and* re-encoding;
* :class:`TieredDecisionCache` — a drop-in ``DecisionCache`` whose LRU
  evictions *demote* (the row is already on disk via write-through, so the
  hot set is no longer bounded by RAM), whose RAM misses *promote* spilled
  rows back, and whose every invalidation — movement notices, admin
  mutations, bus-driven evictions through the
  :class:`~repro.service.bus.CoherentDecisionCache` wrapper, fabric
  ``forget_subjects`` — synchronously **tombstones** the disk rows too.
  The resulting invariant carries the whole design: *a row that is still
  on disk was never invalidated*, so promotion needs no re-validation;
* the **warm-restart path** (:meth:`TieredDecisionCache.warm`) — on
  startup, re-admit persisted entries whose position survives a
  ``pickup()``-style validation against the movement store's current state
  (:meth:`~repro.storage.movement_db.MovementDatabase.touch_marks_since`),
  dropping anything a foreign write invalidated while the server was down.
  Configuration drift (edited authorizations, changed capacities or
  layout) is caught by an engine **fingerprint** stamped into the sidecar:
  a mismatch purges rather than risks a stale decision.

Generation-token fencing (PR 4/5) stays the correctness backbone: a store
racing an invalidation is dropped *before* the write-through, so the disk
tier can never resurrect what the RAM tier refused.
"""

from __future__ import annotations

import hashlib
import json
import sqlite3
import threading
from typing import Any, Dict, List, Optional, Tuple

from repro.core.serialization import authorization_to_dict
from repro.service import wire
from repro.service.cache import CachedDecision, DecisionCache
from repro.service.errors import ServiceError
from repro.service.protocol import decision_from_dict, decision_to_dict, elide_decision

__all__ = ["CacheStore", "TieredDecisionCache", "WireFragments", "engine_fingerprint"]

#: Cache-key tuple: (subject, location, action, time_bucket).
Key = Tuple[str, str, str, int]


def _dumps(payload: Dict[str, Any]) -> str:
    return json.dumps(payload, separators=(",", ":"), ensure_ascii=False)


class WireFragments:
    """One cached decision's pre-serialized wire forms, JSON and binary.

    The JSON pair is computed eagerly at prime time; the binary pair is
    filled on first use by a binary connection, so JSON-only deployments
    never pay the pure-Python encode.  The fill is idempotent — two racing
    connections compute identical bytes — so no lock is needed.

    This is the payload the server attaches to cache entries *and* the
    value the persistent tier stores verbatim: a promoted or re-admitted
    entry serves the exact bytes the original evaluation produced.
    """

    __slots__ = ("json_full", "json_elided", "bin_full", "bin_elided")

    def __init__(self, encoded: Dict[str, Any]) -> None:
        self.json_full = _dumps(encoded)
        self.json_elided = _dumps(elide_decision(encoded))
        self.bin_full: Optional[bytes] = None
        self.bin_elided: Optional[bytes] = None

    @classmethod
    def from_stored(
        cls,
        json_full: str,
        json_elided: str,
        bin_full: Optional[bytes],
        bin_elided: Optional[bytes],
    ) -> "WireFragments":
        """Rehydrate fragments exactly as persisted — no re-encoding."""
        fragments = cls.__new__(cls)
        fragments.json_full = json_full
        fragments.json_elided = json_elided
        fragments.bin_full = bin_full
        fragments.bin_elided = bin_elided
        return fragments

    def binary(self, decision, include_trace: bool) -> bytes:
        fragment = self.bin_full if include_trace else self.bin_elided
        if fragment is None:
            encoded = decision_to_dict(decision)
            self.bin_full = wire.encode_value(encoded)
            self.bin_elided = wire.encode_value(elide_decision(encoded))
            fragment = self.bin_full if include_trace else self.bin_elided
        return fragment


def engine_fingerprint(engine) -> str:
    """A digest of the engine configuration a cached decision depends on.

    Covers the authorization list, the capacity limits, the primitive
    location set and the derivation rules — the boot-time inputs that can
    change *between* runs without leaving a trace in the movement log.  A
    persisted cache whose stamp differs is purged wholesale on
    :meth:`TieredDecisionCache.warm` rather than re-validated row by row.
    (Custom pipeline stages are still not fingerprinted — deployments
    changing those should ``repro cache purge``.)
    """
    # Semantic identity only: auto-generated ids, creation stamps and
    # derivation back-references differ between identically configured
    # engines, and a restart must not read as a config change.
    _instance_keys = ("auth_id", "created_at", "derived_from", "rule_id")
    auths = sorted(
        _dumps(
            {
                key: value
                for key, value in authorization_to_dict(authorization).items()
                if key not in _instance_keys
            }
        )
        for authorization in engine.authorization_db.all()
    )
    capacities = getattr(getattr(engine, "monitor", None), "_capacity_limits", {}) or {}
    hierarchy = getattr(engine, "hierarchy", None)
    names = getattr(hierarchy, "primitive_names", None)
    locations = sorted(names()) if callable(names) else []
    # Rules canonicalize to (valid_from, base id, operator-tuple repr):
    # every operator repr is semantic (WHENEVER, UNION([10, 30]), a custom
    # operator's label), while rule_id/description are instance trivia that
    # must not read as a config change.  A rule edit therefore flips the
    # fingerprint and invalidates warm restarts.
    rules = sorted(
        _dumps(
            {
                "valid_from": int(rule.valid_from),
                "base": str(rule.base_id),
                "operators": str(rule.operators),
            }
        )
        for rule in getattr(engine, "rules", ()) or ()
    )
    canonical = _dumps(
        {
            "auths": auths,
            "capacities": {str(k): int(v) for k, v in sorted(capacities.items())},
            "locations": [str(name) for name in locations],
            "rules": rules,
        }
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class CacheStore:
    """The SQLite sidecar file behind :class:`TieredDecisionCache`.

    One table of entries (primary-keyed by the cache key) plus a meta
    table carrying the format version, the key's time-bucket width and the
    engine fingerprint.  A sidecar opened with a different format version
    or bucket width is purged — never reinterpreted.

    The store is an **availability optimisation, not a source of truth**:
    rows are written through synchronously (WAL, ``synchronous=NORMAL``) so
    a lost *tombstone* cannot happen while the process lives, and a crash
    that loses recent *puts* merely costs warm coverage.
    """

    #: v2 added ``last_access`` — the monotonic access stamp the spill trim
    #: orders by (v1 trimmed by ``rowid``, i.e. insertion order, which
    #: evicted just-promoted hot rows while stale cold ones survived).
    FORMAT_VERSION = 2

    _SCHEMA = """
        CREATE TABLE IF NOT EXISTS cache_meta (
            key   TEXT PRIMARY KEY,
            value TEXT NOT NULL
        );
        CREATE TABLE IF NOT EXISTS cache_entries (
            subject     TEXT NOT NULL,
            location    TEXT NOT NULL,
            action      TEXT NOT NULL,
            bucket      INTEGER NOT NULL,
            gen_epoch   INTEGER,
            gen_counter INTEGER,
            position    INTEGER NOT NULL,
            json_full   TEXT NOT NULL,
            json_elided TEXT NOT NULL,
            bin_full    BLOB,
            bin_elided  BLOB,
            last_access INTEGER NOT NULL DEFAULT 0,
            PRIMARY KEY (subject, location, action, bucket)
        );
        CREATE INDEX IF NOT EXISTS idx_cache_location ON cache_entries (location);
        CREATE INDEX IF NOT EXISTS idx_cache_subject ON cache_entries (subject);
    """

    def __init__(self, path: str, *, bucket: int = 1) -> None:
        if not isinstance(bucket, int) or isinstance(bucket, bool) or bucket < 1:
            raise ServiceError(f"cache bucket width must be a positive integer, got {bucket!r}")
        self._path = path
        self._lock = threading.RLock()
        self._connection = sqlite3.connect(path, check_same_thread=False)
        self._connection.execute("PRAGMA journal_mode=WAL")
        self._connection.execute("PRAGMA synchronous=NORMAL")
        self._connection.execute("PRAGMA busy_timeout=5000")
        self._connection.executescript(self._SCHEMA)
        columns = {
            row[1] for row in self._connection.execute("PRAGMA table_info(cache_entries)")
        }
        if "last_access" not in columns:
            # A v1 sidecar: add the column so the purge below runs against
            # a consistent schema (the rows themselves are dropped anyway).
            self._connection.execute(
                "ALTER TABLE cache_entries ADD COLUMN last_access INTEGER NOT NULL DEFAULT 0"
            )
        self._connection.execute(
            "CREATE INDEX IF NOT EXISTS idx_cache_access ON cache_entries (last_access)"
        )
        self._connection.commit()
        stored_version = self.get_meta("format_version")
        stored_bucket = self.get_meta("bucket")
        if (stored_version is not None and int(stored_version) != self.FORMAT_VERSION) or (
            stored_bucket is not None and int(stored_bucket) != bucket
        ):
            # A foreign format or a different bucket width: the persisted
            # keys mean something else — entries must never resurrect
            # across bucket geometries.
            self.delete_all()
        self.set_meta("format_version", str(self.FORMAT_VERSION))
        self.set_meta("bucket", str(bucket))
        # The access clock is a plain in-store counter, seeded past every
        # persisted stamp — deterministic (no wall clock) and monotonic
        # across restarts.
        (top,) = self._connection.execute(
            "SELECT MAX(last_access) FROM cache_entries"
        ).fetchone()
        self._access_clock = int(top) if top is not None else 0

    @property
    def path(self) -> str:
        """The sidecar file path."""
        return self._path

    @classmethod
    def peek(cls, path: str) -> Dict[str, Any]:
        """Inspect a sidecar file without opening (or mutating) it.

        The constructor purges on a bucket/format mismatch — correct for a
        serving cache, wrong for an operator who just wants to look.  This
        reads the meta and the row count with a throwaway read connection;
        a file that is not a cache sidecar yields an empty report.
        """
        connection = sqlite3.connect(path)
        try:
            try:
                meta = {
                    str(key): str(value)
                    for key, value in connection.execute(
                        "SELECT key, value FROM cache_meta"
                    )
                }
                (count,) = connection.execute(
                    "SELECT COUNT(*) FROM cache_entries"
                ).fetchone()
                (min_position,) = connection.execute(
                    "SELECT MIN(position) FROM cache_entries"
                ).fetchone()
                (max_position,) = connection.execute(
                    "SELECT MAX(position) FROM cache_entries"
                ).fetchone()
            except sqlite3.OperationalError:
                return {}
        finally:
            connection.close()
        return {
            "meta": meta,
            "entries": int(count),
            "min_position": int(min_position) if min_position is not None else None,
            "max_position": int(max_position) if max_position is not None else None,
        }

    # -- meta ------------------------------------------------------------ #
    def get_meta(self, key: str) -> Optional[str]:
        with self._lock:
            row = self._connection.execute(
                "SELECT value FROM cache_meta WHERE key = ?", (key,)
            ).fetchone()
        return str(row[0]) if row is not None else None

    def set_meta(self, key: str, value: str) -> None:
        with self._lock:
            self._connection.execute(
                "INSERT INTO cache_meta (key, value) VALUES (?, ?)"
                " ON CONFLICT(key) DO UPDATE SET value = excluded.value",
                (key, value),
            )
            self._connection.commit()

    # -- entries --------------------------------------------------------- #
    def put(
        self,
        key: Key,
        *,
        position: int,
        generation: Optional[Tuple[int, int]],
        json_full: str,
        json_elided: str,
        bin_full: Optional[bytes] = None,
        bin_elided: Optional[bytes] = None,
    ) -> None:
        subject, location, action, bucket = key
        gen_epoch, gen_counter = generation if generation is not None else (None, None)
        with self._lock:
            self._access_clock += 1
            self._connection.execute(
                "INSERT OR REPLACE INTO cache_entries"
                " (subject, location, action, bucket, gen_epoch, gen_counter,"
                "  position, json_full, json_elided, bin_full, bin_elided, last_access)"
                " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    subject,
                    location,
                    action,
                    bucket,
                    gen_epoch,
                    gen_counter,
                    position,
                    json_full,
                    json_elided,
                    bin_full,
                    bin_elided,
                    self._access_clock,
                ),
            )
            self._connection.commit()

    def get(self, key: Key) -> Optional[Tuple]:
        """``(position, gen_epoch, gen_counter, json_full, json_elided,
        bin_full, bin_elided)`` for *key*, or ``None``.

        A hit refreshes the row's access stamp — reads keep rows alive
        under the LRU spill trim.
        """
        subject, location, action, bucket = key
        with self._lock:
            row = self._connection.execute(
                "SELECT position, gen_epoch, gen_counter, json_full, json_elided,"
                " bin_full, bin_elided FROM cache_entries"
                " WHERE subject = ? AND location = ? AND action = ? AND bucket = ?",
                (subject, location, action, bucket),
            ).fetchone()
            if row is not None:
                self._touch_locked(subject, location, action, bucket)
                self._connection.commit()
            return row

    def touch(self, key: Key) -> None:
        """Refresh *key*'s access stamp without reading it (demotions: an
        entry falling out of RAM was, until now, the hot tier's — it must
        not be the disk trim's first victim)."""
        subject, location, action, bucket = key
        with self._lock:
            self._touch_locked(subject, location, action, bucket)
            self._connection.commit()

    def _touch_locked(self, subject: str, location: str, action: str, bucket: int) -> None:
        self._access_clock += 1
        self._connection.execute(
            "UPDATE cache_entries SET last_access = ?"
            " WHERE subject = ? AND location = ? AND action = ? AND bucket = ?",
            (self._access_clock, subject, location, action, bucket),
        )

    def fill_binary(self, key: Key, bin_full: bytes, bin_elided: bytes) -> None:
        """Backfill the lazily computed binary fragments onto the row."""
        subject, location, action, bucket = key
        with self._lock:
            self._connection.execute(
                "UPDATE cache_entries SET bin_full = ?, bin_elided = ?"
                " WHERE subject = ? AND location = ? AND action = ? AND bucket = ?"
                " AND bin_full IS NULL",
                (bin_full, bin_elided, subject, location, action, bucket),
            )
            self._connection.commit()

    def _delete(self, sql: str, params: Tuple) -> int:
        with self._lock:
            cursor = self._connection.execute(sql, params)
            self._connection.commit()
            return cursor.rowcount

    def delete_key(self, key: Key) -> int:
        return self._delete(
            "DELETE FROM cache_entries WHERE subject = ? AND location = ?"
            " AND action = ? AND bucket = ?",
            key,
        )

    def delete_location(self, location: str) -> int:
        return self._delete("DELETE FROM cache_entries WHERE location = ?", (location,))

    def delete_pair(self, subject: str, location: str) -> int:
        return self._delete(
            "DELETE FROM cache_entries WHERE subject = ? AND location = ?",
            (subject, location),
        )

    def delete_subject(self, subject: str) -> int:
        return self._delete("DELETE FROM cache_entries WHERE subject = ?", (subject,))

    def delete_all(self) -> int:
        return self._delete("DELETE FROM cache_entries", ())

    def trim(self, max_rows: int) -> int:
        """Drop the least-recently-used rows beyond *max_rows* (the spill
        cap).  Recency is the ``last_access`` stamp — refreshed by reads,
        writes and demotions — with ``rowid`` (insertion order) breaking
        ties, so a just-promoted row outlives rows nothing has read."""
        with self._lock:
            (count,) = self._connection.execute(
                "SELECT COUNT(*) FROM cache_entries"
            ).fetchone()
            excess = int(count) - max_rows
            if excess <= 0:
                return 0
            self._connection.execute(
                "DELETE FROM cache_entries WHERE rowid IN"
                " (SELECT rowid FROM cache_entries ORDER BY last_access, rowid LIMIT ?)",
                (excess,),
            )
            self._connection.commit()
            return excess

    def count(self) -> int:
        with self._lock:
            (count,) = self._connection.execute(
                "SELECT COUNT(*) FROM cache_entries"
            ).fetchone()
        return int(count)

    def min_position(self) -> Optional[int]:
        with self._lock:
            (position,) = self._connection.execute(
                "SELECT MIN(position) FROM cache_entries"
            ).fetchone()
        return int(position) if position is not None else None

    def rows(self, *, newest_first: bool = True) -> List[Tuple]:
        """Every row: ``(subject, location, action, bucket, position,
        gen_epoch, gen_counter, json_full, json_elided, bin_full,
        bin_elided)`` — in write order (newest first by default)."""
        order = "DESC" if newest_first else "ASC"
        with self._lock:
            return self._connection.execute(
                "SELECT subject, location, action, bucket, position, gen_epoch,"
                " gen_counter, json_full, json_elided, bin_full, bin_elided"
                f" FROM cache_entries ORDER BY rowid {order}"
            ).fetchall()

    def close(self) -> None:
        with self._lock:
            self._connection.close()


class TieredDecisionCache(DecisionCache):
    """A :class:`~repro.service.cache.DecisionCache` with a disk tier.

    Parameters
    ----------
    path:
        The sidecar SQLite file (created on first use).
    bucket, maxsize:
        As on the base class; *maxsize* bounds only the RAM tier.
    spill:
        Optional cap on **disk** rows; beyond it the least-recently-used
        rows are trimmed (see :meth:`CacheStore.trim`).  ``None``
        (default) leaves the disk tier unbounded.

    Tiering is write-through: every admitted store lands on disk in the
    same call (stamped with the movement store's
    :attr:`~repro.storage.movement_db.MovementDatabase.applied_position`),
    so LRU eviction is a pure *demotion* — the evicted-but-valid entry is
    already durable and promotes back on the next hit.  Every invalidation
    path tombstones the disk rows synchronously; see the module docstring
    for why that makes promotion validation-free.
    """

    def __init__(
        self,
        path: str,
        *,
        bucket: int = 1,
        maxsize: int = 65536,
        spill: Optional[int] = None,
    ) -> None:
        super().__init__(bucket=bucket, maxsize=maxsize)
        if spill is not None and (
            not isinstance(spill, int) or isinstance(spill, bool) or spill < 1
        ):
            raise ServiceError(f"cache spill cap must be a positive integer, got {spill!r}")
        self._store = CacheStore(path, bucket=bucket)
        self._spill_limit = spill
        self._closed = False
        self._unsubscribe = None
        self._position_source = None
        self._spilled = 0
        self._disk_hits = 0
        self._promoted = 0
        self._readmitted = 0
        self._tombstoned = 0
        self._trimmed = 0

    @property
    def sidecar(self) -> CacheStore:
        """The sidecar store (inspection / CLI surface).

        Named ``sidecar`` rather than ``store`` because ``store()`` is the
        base cache's write entry point and must stay callable.
        """
        return self._store

    def connect(self, movement_db):
        """Subscribe for invalidation AND adopt *movement_db* as the
        position source stamped onto persisted rows."""
        self._position_source = movement_db
        self._unsubscribe = super().connect(movement_db)
        return self._unsubscribe

    def close(self) -> None:
        """Close the sidecar file and drop the movement subscription.

        The RAM tier stays usable; the disk tier degrades to a no-op so a
        late notification (a subscriber the owner forgot to detach) evicts
        RAM without touching the closed connection.
        """
        self._closed = True
        if self._unsubscribe is not None:
            try:
                self._unsubscribe()
            finally:
                self._unsubscribe = None
        self._store.close()

    # -- tier hooks (all called under the cache lock) -------------------- #
    def _current_position(self) -> int:
        source = self._position_source
        if source is None:
            return 0
        return int(source.applied_position)

    def _fragments_for(self, entry: CachedDecision) -> WireFragments:
        payload = entry.payload
        if isinstance(payload, WireFragments):
            return payload
        # Engine-attached stores (the PDP's payload-less ``store()``) still
        # persist servable fragments: the durability write is where the
        # one-time encode happens.
        return WireFragments(decision_to_dict(entry.decision))

    def _persist_locked(self, key: Key, entry: CachedDecision) -> None:
        if self._closed:
            return
        fragments = self._fragments_for(entry)
        self._store.put(
            key,
            position=self._current_position(),
            generation=entry.generation,
            json_full=fragments.json_full,
            json_elided=fragments.json_elided,
            bin_full=fragments.bin_full,
            bin_elided=fragments.bin_elided,
        )
        if self._spill_limit is not None:
            self._trimmed += self._store.trim(max(self._spill_limit, self._maxsize))

    def _promote_locked(self, key: Key) -> Optional[CachedDecision]:
        if self._closed:
            return None
        row = self._store.get(key)
        if row is None:
            return None
        position, gen_epoch, gen_counter, json_full, json_elided, bin_full, bin_elided = row
        try:
            decision = decision_from_dict(json.loads(json_full))
        except Exception:  # noqa: BLE001 - a corrupt row is a miss, not a crash
            self._store.delete_key(key)
            return None
        fragments = WireFragments.from_stored(json_full, json_elided, bin_full, bin_elided)
        # The tombstone invariant: a surviving row was never invalidated,
        # so the location's *current* generation still covers it (within a
        # process the stored and current tokens are equal; across restarts
        # the stored token names a dead epoch and is re-based here).
        generation = (self._epoch, self._generations.get(key[1], 0))
        entry = CachedDecision(decision, fragments, generation)
        self._admit_locked(key, entry)
        self._disk_hits += 1
        self._promoted += 1
        return entry

    def _demoted_locked(self, key: Key, entry: CachedDecision) -> None:
        # Write-through already persisted the row; eviction is a demotion.
        # Opportunistically backfill binary fragments a binary connection
        # computed since the row was written.
        if self._closed:
            return
        payload = entry.payload
        if (
            isinstance(payload, WireFragments)
            and payload.bin_full is not None
            and payload.bin_elided is not None
        ):
            self._store.fill_binary(key, payload.bin_full, payload.bin_elided)
        # Until this instant the entry lived in the hot tier — refresh its
        # stamp so the LRU trim ranks it by *that* recency, not its
        # original write.
        self._store.touch(key)
        self._spilled += 1

    def _purge_location_locked(self, location: str) -> None:
        if self._closed:
            return
        self._tombstoned += self._store.delete_location(location)

    def _purge_pair_locked(self, subject: str, location: str) -> None:
        if self._closed:
            return
        self._tombstoned += self._store.delete_pair(subject, location)

    def _purge_subject_locked(self, subject: str) -> None:
        if self._closed:
            return
        self._tombstoned += self._store.delete_subject(subject)

    def _purge_all_locked(self) -> None:
        if self._closed:
            return
        self._tombstoned += self._store.delete_all()

    def _extra_stats_locked(self) -> Dict[str, int]:
        return {
            "spilled": self._spilled,
            "disk_hits": self._disk_hits,
            "promoted": self._promoted,
            "readmitted": self._readmitted,
            "tombstoned": self._tombstoned,
            "spill_trimmed": self._trimmed,
            "disk_size": 0 if self._closed else self._store.count(),
        }

    # -- warm restart ---------------------------------------------------- #
    def warm(self, movement_db=None, *, fingerprint: Optional[str] = None) -> Dict[str, int]:
        """Validate the persisted rows against the movement store and
        re-admit the survivors — the restart-latency-cliff killer.

        *movement_db* defaults to the :meth:`connect`-ed store.  With a
        *fingerprint* (see :func:`engine_fingerprint`), a stamp mismatch
        purges everything — the engine configuration changed while the
        cache was cold.  Rows are then validated per entry: each must have
        been stored at a position the log still reaches, with **no
        movement past that position that could touch its location**
        (:meth:`~repro.storage.movement_db.MovementDatabase.touch_marks_since`).
        Survivors are re-admitted newest-first up to ``maxsize``; the rest
        stay on disk as the spill tier.  Returns a report of counts.
        """
        report = {"examined": 0, "readmitted": 0, "dropped": 0, "retained_on_disk": 0}
        with self._lock:
            stored_print = self._store.get_meta("fingerprint")
            if fingerprint is not None:
                self._store.set_meta("fingerprint", fingerprint)
                if stored_print is not None and stored_print != fingerprint:
                    report["dropped"] = self._store.delete_all()
                    self._tombstoned += report["dropped"]
                    return report
            if movement_db is None:
                movement_db = self._position_source
            rows = self._store.rows(newest_first=True)
            report["examined"] = len(rows)
            if not rows:
                return report
            if movement_db is None:
                # Nothing to validate against: a stale row would be served
                # forever, so the only safe warm is a purge.
                report["dropped"] = self._store.delete_all()
                self._tombstoned += report["dropped"]
                return report
            high_water = int(movement_db.high_water)
            floor = min(int(row[4]) for row in rows)
            marks = movement_db.touch_marks_since(min(floor, high_water))
            survivors: List[Tuple[Key, int, str, str, Optional[bytes], Optional[bytes]]] = []
            for subject, location, action, bucket, position, _, _, jf, je, bf, be in rows:
                key = (subject, location, action, bucket)
                position = int(position)
                valid = (
                    position <= high_water
                    and marks is not None
                    and marks.get(location, 0) <= position
                )
                if not valid:
                    self._store.delete_key(key)
                    self._tombstoned += 1
                    report["dropped"] += 1
                    continue
                survivors.append((key, position, jf, je, bf, be))
            admit = survivors[: self._maxsize]
            # Oldest of the chosen first, so RAM recency mirrors disk
            # recency (the newest row ends up most-recently-used).
            for key, _, jf, je, bf, be in reversed(admit):
                try:
                    decision = decision_from_dict(json.loads(jf))
                except Exception:  # noqa: BLE001 - a corrupt row must not kill boot
                    self._store.delete_key(key)
                    self._tombstoned += 1
                    report["dropped"] += 1
                    continue
                fragments = WireFragments.from_stored(jf, je, bf, be)
                generation = (self._epoch, self._generations.get(key[1], 0))
                self._admit_locked(key, CachedDecision(decision, fragments, generation))
                self._readmitted += 1
                report["readmitted"] += 1
            report["retained_on_disk"] = len(survivors) - report["readmitted"]
            return report
