"""The network authorization server: one engine, many remote PEPs.

:class:`LtamServer` puts an embedded :class:`~repro.api.builder.Ltam`
engine behind a TCP boundary — a stdlib-only asyncio server speaking the
newline-delimited JSON protocol of :mod:`repro.service.protocol`.  The
design follows the deployment the ROADMAP's "multi-process ingest" item
asks for:

* **decisions** (``decide`` / ``decide_many``) run the PDP pipeline
  inline on the event loop — they are pure, fast reads.  With a
  :class:`~repro.service.cache.DecisionCache` attached, hits skip both the
  pipeline *and* response re-encoding (entries carry their wire form), and
  the cache subscribes to the movement store's mutation notifications so an
  observe/ingest evicts exactly the locations it touched;
* **ingest** (``observe_batch``) feeds the existing
  :class:`~repro.storage.ingest.MovementIngestor`: many tracker processes
  ship record batches over their sockets into per-connection ingestors
  whose group commits serialize on the movement store's transaction lock
  (one logical writer).  ``mode="monitor"`` runs the full
  enforcement-point observation (alerts + audit); ``mode="record"`` is the
  raw log-shipping path straight into ``record_many``.  A rejected batch
  comes back to **the client that submitted it** — per-connection
  ingestors keep failure attribution honest — as a typed
  :class:`~repro.errors.IngestError` with the dropped records attached for
  retry/dead-lettering;
* a :class:`~repro.storage.ingest.CheckpointPolicy` piggybacks scheduled
  checkpoints (and archive retention) on the ingest writer thread;
* ``observe`` is the synchronous single-observation path (alerts returned),
  ``query`` evaluates the LTAM query language, ``checkpoint`` flushes
  pending ingest then checkpoints, and ``health`` reports counters.

Concurrency: decide and health run inline on the loop (no interleaving
mid-decision); every op that can block — ingest submission (queue
backpressure), single observes (the monitor lock), query replays, and
checkpoints (flush barrier + compaction) — runs in the default executor so
one slow call never stalls other connections.  The engine tolerates this
exactly as it tolerates the embedded streaming observe path — foreground
reads race the background writer benignly (see the movement database's
concurrency contract).
"""

from __future__ import annotations

import asyncio
import json
import logging
import threading
import time
from collections import Counter
from typing import Any, Dict, List, Optional, Tuple

from repro.core.serialization import authorization_to_dict
from repro.engine.query.evaluator import QueryEngine
from repro.errors import IngestError
from repro.storage.ingest import (
    DEFAULT_BATCH_SIZE,
    DEFAULT_MAX_LATENCY,
    DEFAULT_QUEUE_SIZE,
    CheckpointPolicy,
    MovementIngestor,
)
from repro.storage.movement_db import MovementKind
from repro.service import telemetry, wire
from repro.service.bus import DEFAULT_SYNC_INTERVAL, ReplicaCoherence
from repro.service.cache import DecisionCache
from repro.service.cache_store import WireFragments, engine_fingerprint
from repro.service.capacity import CapacityLedger
from repro.service.errors import (
    ProtocolError,
    ServiceAuthError,
    ServiceBusyError,
    ServiceError,
)
from repro.service.protocol import (
    alert_from_dict,
    alert_to_dict,
    checkpoint_to_dict,
    decision_to_dict,
    decode_frame,
    elide_decision,
    encode_frame,
    error_to_dict,
    query_result_to_dict,
    record_from_wire,
    records_from_wire,
    records_to_wire,
    request_from_dict,
)
from repro.service.runtime import DEFAULT_FRAME_LIMIT, AsyncServiceHost

__all__ = ["LtamServer", "DEFAULT_PORT", "DEFAULT_FRAME_LIMIT", "INGEST_MODES"]

#: Default service port ("LTAM" on a phone keypad, roughly).
DEFAULT_PORT = 7471

#: The two ingest sinks ``observe_batch`` can feed.
INGEST_MODES = ("monitor", "record")


class _RawResult:
    """A handler result that is already serialized JSON text.

    The decide path serves cache hits as **pre-serialized fragments** —
    skipping the pipeline is only half the win; at hot-pool rates the JSON
    re-encoding of an unchanged decision costs as much as the lookup, so
    the envelope is assembled by string joining instead of re-dumping.
    """

    __slots__ = ("text",)

    def __init__(self, text: str) -> None:
        self.text = text


class _RawBinary:
    """A handler result that is already a binary-codec value fragment."""

    __slots__ = ("data",)

    def __init__(self, data: bytes) -> None:
        self.data = data


# The cached-decision wire-fragment container moved to
# :mod:`repro.service.cache_store` so the persistent tier can store and
# rehydrate the exact same shape; the server keeps using it under its
# historical local name.
_Fragments = WireFragments

#: Structured per-request log (one NDJSON line per op, ``--log-requests``).
_request_log = logging.getLogger("repro.service.requests")


def _dumps(payload: Dict[str, Any]) -> str:
    return json.dumps(payload, separators=(",", ":"), ensure_ascii=False)


def _auth_fragment(authorization) -> wire.Raw:
    """The memoized binary form of an authorization, riding on the object.

    Authorizations are immutable and long-lived (they come from the
    authorization database), so their encoded form is computed once and
    cached on the object itself — the memo can never outlive or alias its
    subject.  Exotic slotted stand-ins simply re-encode every time.
    """
    fragment = getattr(authorization, "_binary_wire_fragment", None)
    if fragment is None:
        fragment = wire.Raw(wire.encode_value(authorization_to_dict(authorization)))
        try:
            object.__setattr__(authorization, "_binary_wire_fragment", fragment)
        except (AttributeError, TypeError):
            pass
    return fragment


def _binary_decision(decision, include_trace: bool) -> bytes:
    """Encode one freshly computed decision for a binary connection.

    The trace-elided form is the fleet's hot shape: four keys and a spliced
    pre-encoded authorization, no request echo, no trace.
    """
    if include_trace:
        return wire.encode_value(decision_to_dict(decision))
    authorization = decision.authorization
    reason = decision.reason
    return wire.encode_value(
        {
            "granted": decision.granted,
            "authorization": None if authorization is None else _auth_fragment(authorization),
            "reason": reason.value if reason is not None else None,
            "entries_used": decision.entries_used,
        }
    )


def _json_decision(decision, include_trace: bool) -> str:
    if include_trace:
        return _dumps(decision_to_dict(decision))
    return _dumps(elide_decision(decision_to_dict(decision, include_trace=False)))


def _fold_ingest(totals_by_mode: Dict[str, Dict[str, int]], mode: str, ingestor) -> None:
    """Accumulate one ingestor's counters into the per-mode totals."""
    totals = totals_by_mode.setdefault(
        mode,
        {
            "submitted": 0,
            "written": 0,
            "dropped": 0,
            "checkpoints": 0,
            "checkpoint_errors": 0,
            "clients": 0,
        },
    )
    totals["submitted"] += ingestor.submitted
    totals["written"] += ingestor.written
    totals["dropped"] += ingestor.dropped
    totals["checkpoints"] += ingestor.checkpoints
    totals["checkpoint_errors"] += len(ingestor.checkpoint_errors)
    totals["clients"] += 1


class _SharedCheckpoint:
    """One policy clock for the whole server, shared by every ingestor.

    Trigger counters live per ingestor, so with N tracker connections a
    naively-wired policy would checkpoint ~N times more often than
    configured.  This gate re-checks the *database's* replay bound (and a
    shared wall clock) before running, so a trigger another connection's
    checkpoint already covered becomes a no-op.
    """

    __slots__ = ("_policy", "_movement_db", "_alert_sink", "_lock", "_last_run")

    def __init__(self, policy: CheckpointPolicy, movement_db, alert_sink=None) -> None:
        self._policy = policy
        self._movement_db = movement_db
        self._alert_sink = alert_sink
        self._lock = threading.Lock()
        self._last_run = float("-inf")

    def __call__(self):
        policy = self._policy
        with self._lock:
            pending = self._movement_db.events_since_checkpoint
            if pending == 0:
                return None
            due = (
                policy.every_events is not None and pending >= policy.every_events
            ) or (
                policy.every_seconds is not None
                and time.monotonic() - self._last_run >= policy.every_seconds
            )
            if not due:
                return None
            receipt = policy.run(self._movement_db, self._alert_sink)
            self._last_run = time.monotonic()
            return receipt


class _Connection:
    """Per-connection server state: this client's ingestors.

    Ingestors are **per connection** so failure attribution is honest: a
    rejected batch surfaces (with its records) on the flush of the client
    that submitted it — never on another tracker's barrier — and one
    client's poison batch cannot be group-committed together with a
    neighbor's records.
    """

    __slots__ = ("ingestors", "wire", "pending_wire", "decoder", "cache_outcome")

    def __init__(self) -> None:
        self.ingestors: Dict[str, MovementIngestor] = {}
        #: the connection's negotiated framing; every connection starts on
        #: NDJSON and may upgrade once via the ``hello`` op.
        self.wire: str = wire.JSON
        self.pending_wire: Optional[str] = None
        self.decoder: Optional[wire.Decoder] = None
        #: the current op's cache outcome for the request log ("hit",
        #: "miss", "3/5", None).  Safe as per-connection state: frames on
        #: one connection are handled strictly in sequence.
        self.cache_outcome: Optional[str] = None

    def apply_pending_upgrade(self) -> None:
        """Switch framing after the ``hello`` response has been written."""
        if self.pending_wire is not None:
            self.wire = self.pending_wire
            self.pending_wire = None
            self.decoder = wire.Decoder()


class LtamServer(AsyncServiceHost):
    """Serve an embedded :class:`~repro.api.builder.Ltam` engine over TCP.

    Parameters
    ----------
    engine:
        The engine to expose.  The server takes over its streaming-ingest
        path; other in-process use (reads, administration) remains valid.
    host, port:
        Bind address; ``port=0`` picks a free port (see :attr:`address`).
    cache:
        Optional :class:`DecisionCache`.  When given, the server consults
        it for ``decide``/``decide_many`` and connects it to the movement
        database's mutation notifications for event-wise invalidation.
    bus:
        Join (or host) a replica invalidation bus: a ``(host, port)`` /
        ``"host:port"`` address of a running
        :class:`~repro.service.bus.InvalidationBus`, or an
        :class:`~repro.service.bus.InvalidationBus` instance this server
        should host in-process.  With a bus, the server's mutations fan out
        to every attached replica's cache, remote mutations evict this
        server's cache, and (on a shared SQLite file) the projection follows
        the writer via :meth:`~repro.storage.movement_db.SqliteMovementDatabase.pickup`.
    replica_id:
        This server's identity on the bus (generated when omitted).
    sync_interval:
        Period of the coherence layer's background sync tick (see
        :class:`~repro.service.bus.ReplicaCoherence`).
    checkpoint_policy:
        Optional :class:`~repro.storage.ingest.CheckpointPolicy` applied to
        the server's ingestors (scheduled checkpoints + archive retention).
    ingest_batch_size, ingest_max_latency, ingest_queue_size:
        Group-commit knobs of the server-side ingestors.
    partition:
        The name of the fabric partition this server owns, when it serves
        one subject slice of a partitioned deployment (``repro serve
        --partition``).  Purely an identity: routing is the
        :class:`~repro.service.fabric.FabricRouter`'s job; the name (and
        the map's description of its ownership) is reported by ``health``.
    partition_map:
        Optional :class:`~repro.service.fabric.PartitionMap` describing the
        fabric this partition belongs to, for ``health`` reporting.
    wire_format:
        ``"binary"`` (default) answers per-connection ``hello``
        negotiations with the compact length-prefixed framing of
        :mod:`repro.service.wire`; ``"json"`` keeps the server NDJSON-only
        (clients negotiate down transparently).  Every connection starts on
        NDJSON either way.
    max_connections:
        Per-listener cap on concurrently served connections; an over-cap
        connection is answered with one typed
        :class:`~repro.service.errors.ServiceBusyError` frame and closed.
        ``None`` (default) is uncapped.
    log_requests:
        Emit one structured NDJSON log line per op (op, wire format,
        duration, cache outcome) on the ``repro.service.requests`` logger —
        the ``repro serve --log-requests`` switch.
    slow_request_ms:
        Slow-request sampling threshold, in milliseconds.  When set, every
        request is traced (spans at op dispatch, cache outcome, pipeline
        stages, ...) and any request slower than the threshold dumps its
        full span tree as one NDJSON line on the ``repro.service.requests``
        logger.  ``None`` (default) disables local sampling; requests that
        arrive with a caller's ``tctx`` context are traced either way.
    auth_token:
        Optional shared secret (``repro serve --auth-token``).  When set,
        every frame except the ``hello`` negotiation must carry a matching
        ``auth`` field; frames that do not are answered with a typed
        :class:`~repro.service.errors.ServiceAuthError` and counted on the
        ``repro_auth_refused_total`` metric.  The same token is forwarded
        to the bus link when this server joins an invalidation bus.

    A server started with ``partition=...`` **and** a bus additionally
    maintains a :class:`~repro.service.capacity.CapacityLedger`: peers'
    per-location occupancy is folded in over the bus and
    ``occupancy_of``/``CapacityStage`` see *fabric-wide* counts (local
    projection + remote ledger) instead of the partition-local blind spot.

    With a cache that carries a persistent tier
    (:class:`~repro.service.cache_store.TieredDecisionCache`),
    :meth:`start` runs the **warm-restart pass**: persisted entries are
    validated against the movement store's current state (and the engine's
    configuration fingerprint) and the survivors re-admitted, so the first
    seconds after a restart serve from cache instead of re-running the
    pipeline per request.  The pass's report is kept on
    :attr:`warm_report` and surfaced by the ``health`` op.

    Run it in-process (``with LtamServer(engine) as server: ...``) for tests
    and embedding, or via ``repro serve`` for a standalone process.
    """

    _what = "the server"
    _thread_name = "ltam-server"

    def __init__(
        self,
        engine,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        cache: Optional[DecisionCache] = None,
        bus=None,
        replica_id: Optional[str] = None,
        sync_interval: Optional[float] = DEFAULT_SYNC_INTERVAL,
        checkpoint_policy: Optional[CheckpointPolicy] = None,
        ingest_batch_size: int = DEFAULT_BATCH_SIZE,
        ingest_max_latency: float = DEFAULT_MAX_LATENCY,
        ingest_queue_size: int = DEFAULT_QUEUE_SIZE,
        frame_limit: int = DEFAULT_FRAME_LIMIT,
        partition: Optional[str] = None,
        partition_map=None,
        wire_format: str = wire.BINARY,
        max_connections: Optional[int] = None,
        log_requests: bool = False,
        slow_request_ms: Optional[float] = None,
        auth_token: Optional[str] = None,
    ) -> None:
        super().__init__(host, port, frame_limit=frame_limit, max_connections=max_connections)
        if wire_format not in (wire.BINARY, wire.JSON):
            raise ServiceError(
                f"unknown wire format {wire_format!r}; expected 'binary' or 'json'"
            )
        #: ``binary`` = answer ``hello`` negotiations with the compact
        #: framing; ``json`` = NDJSON only (hello still answered, politely).
        self._binary_enabled = wire_format == wire.BINARY
        self._engine = engine
        self._partition = partition
        self._partition_map = partition_map
        self._auth_token = auth_token
        self._coherence: Optional[ReplicaCoherence] = None
        # The global capacity ledger exists exactly when this server is a
        # fabric partition with a bus to its peers.  Replicas sharing one
        # SQLite file must NOT get one: each replica's local projection
        # already counts every stay, so folding the peers' counts on top
        # would double-count the same occupants.
        self._ledger: Optional[CapacityLedger] = (
            CapacityLedger() if partition is not None and bus is not None else None
        )
        if bus is not None:
            self._coherence = ReplicaCoherence(
                engine,
                cache,
                bus=bus,
                replica_id=replica_id if replica_id is not None else partition,
                sync_interval=sync_interval,
                ledger=self._ledger,
                auth_token=auth_token,
            )
            # The engine (and the decide path) must see the publishing
            # wrapper so administrative evictions fan out to the peers.
            cache = self._coherence.cache if cache is not None else None
        self._cache = cache
        self._checkpoint_policy = checkpoint_policy
        self._ingest_knobs = {
            "batch_size": ingest_batch_size,
            "max_latency": ingest_max_latency,
            "queue_size": ingest_queue_size,
        }
        self._queries = QueryEngine(engine)
        #: live per-connection ingestors (flushed by checkpoint, closed on stop).
        self._ingestors: List[Tuple[str, MovementIngestor]] = []
        #: per-mode counters folded in from retired (disconnected) ingestors.
        self._ingest_totals: Dict[str, Dict[str, int]] = {}
        self._ingest_lock = threading.Lock()
        self._shared_checkpoint = (
            _SharedCheckpoint(
                checkpoint_policy, engine.movement_db, getattr(engine, "alerts", None)
            )
            if checkpoint_policy is not None
            else None
        )
        self._unsubscribe = None
        self._cache_attached = False
        self._connect_cache()
        self._log_requests = bool(log_requests)
        self._slow_request_ms = slow_request_ms
        self._warm_report: Optional[Dict[str, int]] = None
        # One registry per server: the single source of truth `health`, the
        # `metrics` op, the Prometheus endpoint and `repro top` all read.
        # The hot-path objects are pre-resolved here so per-request work is
        # a dict index + a lock'd add, never a registry lookup.
        registry = telemetry.MetricsRegistry()
        self._registry = registry
        self._counters = {
            "decisions": registry.counter("repro_decisions_total"),
            "cache_hits": registry.counter("repro_cache_hits_total"),
            "observed": registry.counter("repro_observed_total"),
            "queries": registry.counter("repro_queries_total"),
        }
        self._op_latency = {
            op: registry.histogram("repro_op_latency_seconds", op=op)
            for op in self._HANDLERS
        }
        self._op_counts = {
            op: registry.counter("repro_ops_total", op=op) for op in self._HANDLERS
        }
        self._op_errors = registry.counter("repro_op_errors_total")
        self._auth_refused = registry.counter("repro_auth_refused_total")
        self._slow_sampled = registry.counter("repro_slow_requests_total")
        self._ingest_commit_latency = registry.histogram("repro_ingest_commit_seconds")
        self._register_gauges(registry)
        self._started_at: Optional[float] = None

    def _connect_cache(self) -> None:
        """Wire the cache for invalidation from EVERY mutation path.

        Attaching through the engine (when it supports it) hooks the
        administrative paths too — grant/revoke/derive/set_capacity on a
        served engine must evict, not just movement ingest.  The engine's
        attach also subscribes the movement-store notifications.
        """
        if self._cache is None:
            return
        attach = getattr(self._engine, "attach_decision_cache", None)
        if callable(attach):
            if getattr(getattr(self._engine, "pdp", None), "cache", None) is not self._cache:
                attach(self._cache)
            self._cache_attached = True
        elif self._unsubscribe is None:  # duck-typed engines: movement-only wiring
            self._unsubscribe = self._cache.connect(self._engine.movement_db)

    def _disconnect_cache(self) -> None:
        if self._cache is None:
            return
        if self._cache_attached:
            detach = getattr(self._engine, "detach_decision_cache", None)
            if callable(detach) and getattr(self._engine.pdp, "cache", None) is self._cache:
                detach()
            self._cache_attached = False
        if self._unsubscribe is not None:
            self._unsubscribe()
            self._unsubscribe = None

    def _warm_cache(self) -> None:
        """Run the persistent tier's warm-restart validation, if it has one.

        Duck-typed on ``warm`` so the plain in-RAM cache (and the coherent
        wrapper around one) costs nothing.  The engine fingerprint catches
        configuration drift while the server was down; the movement store
        validates each surviving row (see
        :meth:`~repro.service.cache_store.TieredDecisionCache.warm`).
        """
        if self._cache is None:
            return
        warm = getattr(self._cache, "warm", None)
        if not callable(warm):
            return
        try:
            fingerprint = engine_fingerprint(self._engine)
        except Exception:  # noqa: BLE001 - duck-typed engines: validate-only warm
            fingerprint = None
        self._warm_report = warm(self._engine.movement_db, fingerprint=fingerprint)

    @property
    def warm_report(self) -> Optional[Dict[str, int]]:
        """The last warm-restart pass's counts (``None`` before start, or
        without a persistent cache tier)."""
        return self._warm_report

    async def _refuse_busy(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        # Every connection starts on NDJSON, so the busy frame is always a
        # JSON error line the client's first read will surface as a typed
        # ServiceBusyError.
        connection = _Connection()
        writer.write(
            self._encode_error(
                connection,
                None,
                ServiceBusyError(
                    f"the server is at its connection cap ({self._max_connections}); retry later"
                ),
            )
        )
        await writer.drain()

    def _bump(self, key: str, count: int = 1) -> None:
        # Handlers run on the loop thread and on executor threads; the
        # registry counters are individually locked.
        self._counters[key].inc(count)

    def _snapshot_stats(self) -> Dict[str, int]:
        return {key: counter.value for key, counter in self._counters.items()}

    def _register_gauges(self, registry: telemetry.MetricsRegistry) -> None:
        """Callback gauges over state other subsystems already maintain.

        Scrapes pay the read; the hot paths pay nothing — the cache, the
        coherence layer and the ingestors keep their own counters exactly
        as before, and the registry samples them at collection time.
        """
        registry.gauge("repro_connections_live", fn=lambda: self._live_connections)
        registry.gauge(
            "repro_connections_max", fn=lambda: self._max_connections or 0
        )
        registry.gauge("repro_connections_busy_refused", fn=lambda: self._busy_refused)
        registry.gauge(
            "repro_uptime_seconds",
            fn=lambda: (
                time.monotonic() - self._started_at if self._started_at is not None else 0.0
            ),
        )
        registry.gauge("repro_ingest_queue_depth", fn=self._ingest_queue_depth)
        registry.gauge("repro_bus_lag", fn=self._bus_lag)
        if self._ledger is not None:
            ledger = self._ledger
            registry.gauge("repro_ledger_lag_seconds", fn=lambda: ledger.lag_seconds)
            registry.gauge("repro_ledger_origins", fn=lambda: len(ledger.origins))
            registry.gauge(
                "repro_ledger_remote_occupants",
                fn=lambda: sum(ledger.totals().values()),
            )
        self._register_location_gauges()
        if self._cache is not None:
            cache = self._cache
            for key in ("hits", "misses", "stores", "invalidated", "evicted", "size"):
                registry.gauge(
                    "repro_cache_%s" % key,
                    fn=(lambda cache=cache, key=key: cache.stats.get(key, 0)),
                )

    def _register_location_gauges(self) -> None:
        """One occupancy gauge per capacity-limited location.

        The reported value is what :class:`~repro.api.stages.CapacityStage`
        sees: the local projection plus (in fabric mode) the ledger's remote
        counts.  Re-invoked on every ``metrics`` scrape so limits configured
        after startup (``set_capacity`` at runtime) gain their gauge too —
        ``registry.gauge`` is idempotent per (name, labels).
        """
        monitor = getattr(self._engine, "monitor", None)
        limits = getattr(monitor, "_capacity_limits", None)
        if not limits:
            return
        movement_db = self._engine.movement_db
        ledger = self._ledger
        for location in list(limits):
            self._registry.gauge(
                "repro_location_occupancy",
                fn=(
                    lambda location=location: movement_db.occupancy(location)
                    + (ledger.remote_occupancy(location) if ledger is not None else 0)
                ),
                location=location,
            )

    def _ingest_queue_depth(self) -> int:
        with self._ingest_lock:
            ingestors = [ingestor for _, ingestor in self._ingestors]
        return sum(ingestor.queue_depth for ingestor in ingestors if not ingestor.closed)

    def _bus_lag(self) -> int:
        """Records the shared store committed but this replica has not yet
        folded into its projection (0 standalone, by construction)."""
        movement_db = self._engine.movement_db
        high_water = getattr(movement_db, "high_water", None)
        applied = getattr(movement_db, "applied_position", None)
        if high_water is None or applied is None:
            return 0
        return max(0, int(high_water) - int(applied))

    @property
    def metrics(self) -> telemetry.MetricsRegistry:
        """This server's metrics registry (counters, gauges, histograms)."""
        return self._registry

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    @property
    def engine(self):
        """The embedded engine this server exposes."""
        return self._engine

    @property
    def cache(self) -> Optional[DecisionCache]:
        """The decision cache, if one is attached (with a bus: the
        publishing :class:`~repro.service.bus.CoherentDecisionCache`)."""
        return self._cache

    @property
    def coherence(self) -> Optional[ReplicaCoherence]:
        """The replica coherence layer, when this server joined a bus."""
        return self._coherence

    @property
    def ledger(self) -> Optional[CapacityLedger]:
        """The global capacity ledger (fabric partitions with a bus only)."""
        return self._ledger

    def _attach_occupancy_overlay(self) -> None:
        """Make capacity checks count the whole fabric, not this partition.

        The overlay sums the local projection with the ledger's replicated
        remote counts; detached on :meth:`stop` so an engine reused embedded
        afterwards falls back to local-only occupancy (the standalone
        semantics).  Duck-typed: engines without the hook keep local counts.
        """
        if self._ledger is None:
            return
        attach = getattr(self._engine, "attach_occupancy_overlay", None)
        if not callable(attach):
            return
        movement_db = self._engine.movement_db
        ledger = self._ledger
        attach(
            lambda location: movement_db.occupancy(location)
            + ledger.remote_occupancy(location)
        )

    def _detach_occupancy_overlay(self) -> None:
        if self._ledger is None:
            return
        detach = getattr(self._engine, "detach_occupancy_overlay", None)
        if callable(detach):
            detach()

    def start(self) -> "LtamServer":
        """Start serving on a background thread; returns once bound.

        A stopped server can be started again (fresh bind; with ``port=0``
        the new ephemeral port is reported by :attr:`address`).
        """
        if self._thread is not None:
            raise ServiceError("the server was already started")
        self._connect_cache()  # reconnect after a stop() (idempotent)
        self._warm_cache()
        self._attach_occupancy_overlay()
        if self._coherence is not None:
            self._coherence.start()
        try:
            super().start()
        except BaseException:
            # A failed start must not leak the coherence machinery: the bus
            # link thread, the sync ticker and a hosted hub's port would
            # otherwise outlive a server the caller believes dead (and block
            # a retry with "the invalidation bus was already started").
            if self._coherence is not None:
                self._coherence.stop()
            self._detach_occupancy_overlay()
            raise
        return self

    def stop(self) -> None:
        """Stop serving, flush and close the ingestors, detach the cache."""
        if self._thread is None:
            return
        super().stop()
        self.close_ingestors()
        if self._coherence is not None:
            self._coherence.stop()
        self._detach_occupancy_overlay()
        self._disconnect_cache()

    def _on_bound(self) -> None:
        self._started_at = time.monotonic()

    def close_ingestors(self) -> None:
        """Flush and close every server-side ingestor (failures kept queryable)."""
        with self._ingest_lock:
            ingestors, self._ingestors = self._ingestors, []
        for _, ingestor in ingestors:
            if not ingestor.closed:
                ingestor.close(raise_failures=False)
        with self._ingest_lock:
            for mode, ingestor in ingestors:
                self._retire_locked(mode, ingestor)

    # ------------------------------------------------------------------ #
    # Connection handling
    # ------------------------------------------------------------------ #
    async def _handle_connection(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        try:
            await self._client_loop(reader, writer)
        except asyncio.CancelledError:
            # Loop shutdown cancels connection tasks mid-read; ending the
            # task cleanly (instead of cancelled) keeps asyncio's stream
            # callback from logging spurious CancelledErrors.  Nothing else
            # ever cancels these tasks.
            pass

    async def _client_loop(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        loop = asyncio.get_running_loop()
        connection = _Connection()
        self._writers.add(writer)
        try:
            while True:
                oversize: Optional[ProtocolError] = None
                if connection.wire == wire.BINARY:
                    try:
                        frame = await wire.read_frame(reader, self._frame_limit)
                    except ProtocolError as exc:
                        # Zero-length or over-limit header: the body was not
                        # consumed, so the stream cannot be resynchronized.
                        oversize, frame = exc, None
                else:
                    try:
                        frame = await reader.readline()
                    except ValueError:
                        oversize = ProtocolError(
                            f"frame exceeds the {self._frame_limit}-byte limit"
                        )
                        frame = None
                if oversize is not None:
                    # Report once and drop the connection.
                    writer.write(
                        self._encode_error(connection, None, oversize)
                    )
                    await writer.drain()
                    break
                if not frame:
                    break
                writer.write(await self._respond(loop, connection, frame))
                await writer.drain()
                connection.apply_pending_upgrade()
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            self._writers.discard(writer)
            if connection.ingestors:
                # Flush-on-close durability per client; off the loop because
                # close() joins the writer thread.
                await loop.run_in_executor(None, self._close_connection_ingestors, connection)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    def _close_connection_ingestors(self, connection: _Connection) -> None:
        retired = connection.ingestors
        connection.ingestors = {}
        for ingestor in retired.values():
            ingestor.close(raise_failures=False)
        with self._ingest_lock:
            self._ingestors = [
                (mode, ingestor)
                for mode, ingestor in self._ingestors
                if ingestor not in retired.values()
            ]
            for mode, ingestor in retired.items():
                self._retire_locked(mode, ingestor)

    def _retire_locked(self, mode: str, ingestor: MovementIngestor) -> None:
        """Fold a closed ingestor into the cumulative totals exactly once.

        A disconnecting client and a concurrent :meth:`close_ingestors`
        (server stop) may both retire the same ingestor; the marker keeps
        the counters from double-counting.
        """
        if getattr(ingestor, "_ltam_server_folded", False):
            return
        ingestor._ltam_server_folded = True  # type: ignore[attr-defined]
        _fold_ingest(self._ingest_totals, mode, ingestor)

    #: operations that may block (queue backpressure, flush barriers,
    #: monitor/storage locks, full-log query replays) and therefore run in
    #: the executor, off the event loop.  Only the cached/pure-read decide
    #: path and health stay inline; ``enforce`` is side-effecting (audit
    #: writes, denial alerts through user-registered sink callbacks), so it
    #: goes to the executor like ``observe`` even though its decision half
    #: is decide-fast.
    _BLOCKING_OPS = frozenset(
        {
            "enforce",
            "observe",
            "observe_batch",
            "query",
            "checkpoint",
            "sync",
            "export_subjects",
            "import_archive",
            "forget_subjects",
            "list_subjects",
        }
    )

    @staticmethod
    def _encode_error(connection: _Connection, message_id: Any, exc: BaseException) -> bytes:
        envelope = {"id": message_id, "ok": False, "error": error_to_dict(exc)}
        if connection.wire == wire.BINARY:
            return wire.pack_frame(wire.encode_value(envelope))
        return encode_frame(envelope)

    def _run_traced(self, trace, handler, connection: _Connection, message: Dict[str, Any]):
        """Execute *handler* with *trace* active on the executing thread.

        Activation is thread-local, so it must happen on whichever thread
        actually runs the handler — inline on the loop or on an executor
        worker — not on the thread that scheduled it.  The op span is the
        local root every nested span (cache outcome, pipeline stages,
        store pickup) parents to.
        """
        with telemetry.activated(trace):
            with telemetry.trace_span(
                "server.op", op=message.get("op"), partition=self._partition
            ) as span:
                result = handler(self, connection, message)
                if connection.cache_outcome is not None:
                    span.annotate(cache=connection.cache_outcome)
                return result

    async def _respond(
        self, loop: asyncio.AbstractEventLoop, connection: _Connection, frame: bytes
    ) -> bytes:
        binary = connection.wire == wire.BINARY
        message_id: Any = None
        op: Any = None
        ok = True
        trace = None
        echo_spans = False
        connection.cache_outcome = None
        started = time.perf_counter()
        try:
            if binary:
                message = connection.decoder.decode(frame)
                if not isinstance(message, dict):
                    raise ProtocolError(
                        f"a frame must be an object, got {type(message).__name__}"
                    )
            else:
                message = decode_frame(frame)
            message_id = message.get("id")
            op = message.get("op")
            if (
                self._auth_token is not None
                and op != "hello"  # negotiation carries no payload worth gating
                and message.get("auth") != self._auth_token
            ):
                self._auth_refused.inc()
                raise ServiceAuthError(
                    "this server requires a shared auth token (--auth-token) "
                    "and the frame did not carry it"
                )
            handler = self._HANDLERS.get(op)
            if handler is None:
                raise ProtocolError(f"unknown op {op!r}")
            # Trace when the caller forwarded its context (tctx) or when
            # local slow-request sampling is armed; a request that carried
            # tctx gets the recorded spans back in its response envelope.
            tctx = message.get("tctx")
            if tctx is not None:
                trace = telemetry.Trace.from_tctx(tctx)
                echo_spans = trace is not None
            if trace is None and self._slow_request_ms is not None:
                trace = telemetry.Trace()
            if trace is None:
                if op in self._BLOCKING_OPS:
                    result = await loop.run_in_executor(None, handler, self, connection, message)
                else:
                    result = handler(self, connection, message)
            elif op in self._BLOCKING_OPS:
                result = await loop.run_in_executor(
                    None, self._run_traced, trace, handler, connection, message
                )
            else:
                result = self._run_traced(trace, handler, connection, message)
            if binary:
                if isinstance(result, _RawBinary):
                    result = wire.Raw(result.data)
                envelope: Dict[str, Any] = {"id": message_id, "ok": True, "result": result}
                if echo_spans:
                    envelope["spans"] = trace.spans_to_wire()
                return wire.pack_frame(wire.encode_value(envelope))
            if isinstance(result, _RawResult):
                if echo_spans:
                    text = '{"id":%s,"ok":true,"spans":%s,"result":%s}\n' % (
                        _dumps(message_id),
                        _dumps(trace.spans_to_wire()),
                        result.text,
                    )
                else:
                    text = '{"id":%s,"ok":true,"result":%s}\n' % (
                        _dumps(message_id),
                        result.text,
                    )
                return text.encode("utf-8")
            envelope = {"id": message_id, "ok": True, "result": result}
            if echo_spans:
                envelope["spans"] = trace.spans_to_wire()
            return encode_frame(envelope)
        except Exception as exc:  # noqa: BLE001 - every failure becomes a frame
            ok = False
            return self._encode_error(connection, message_id, exc)
        finally:
            elapsed = time.perf_counter() - started
            latency = self._op_latency.get(op)
            if latency is not None:
                latency.observe(elapsed)
                self._op_counts[op].inc()
            if not ok:
                self._op_errors.inc()
            if (
                trace is not None
                and self._slow_request_ms is not None
                and elapsed * 1000.0 >= self._slow_request_ms
            ):
                self._slow_sampled.inc()
                telemetry.dump_slow(
                    _request_log,
                    op=op if isinstance(op, str) else str(op),
                    trace=trace,
                    duration_ms=elapsed * 1000.0,
                    threshold_ms=self._slow_request_ms,
                    wire=connection.wire,
                )
            if self._log_requests:
                _request_log.info(
                    '{"op":%s,"wire":%s,"ok":%s,"duration_us":%d,"cache":%s}',
                    _dumps(op if isinstance(op, str) else str(op)),
                    _dumps(connection.wire),
                    "true" if ok else "false",
                    int(elapsed * 1e6),
                    _dumps(connection.cache_outcome)
                    if connection.cache_outcome is not None
                    else "null",
                )

    # ------------------------------------------------------------------ #
    # Operation handlers
    # ------------------------------------------------------------------ #
    def _cached_entry(self, raw_request: Any, quiet: bool = False):
        """The cache entry for a raw request dict, or ``None``.

        The cache key is read straight off the wire dict — constructing and
        re-validating an :class:`AccessRequest` costs more than the lookup
        itself.  Anything malformed (missing fields, unhashable values)
        simply misses; the miss path validates properly and raises the
        typed error.
        """
        try:
            time_value = raw_request["time"]
            if type(time_value) is not int or time_value < 0:
                # bool/float times hash-equal valid int keys (True == 1,
                # 10.0 == 10); they must take the miss path so validation
                # rejects them exactly like it would against a cold cache.
                return None
            entry = self._cache.get(
                raw_request["subject"], raw_request["location"], time_value, quiet=quiet
            )
        except (TypeError, KeyError):
            return None
        if entry is None or entry.payload is None:
            return None
        return entry

    def _cached_fragment(
        self, raw_request: Any, include_trace: bool, binary: bool, quiet: bool = False
    ):
        """The pre-serialized decision for a raw request dict, or ``None``.

        JSON connections get a ``str`` fragment, binary connections a
        ``bytes`` one (filled lazily on the entry's first binary hit).
        """
        entry = self._cached_entry(raw_request, quiet=quiet)
        if entry is None:
            return None
        self._bump("cache_hits")
        fragments: _Fragments = entry.payload
        if binary:
            return fragments.binary(entry.decision, include_trace)
        return fragments.json_full if include_trace else fragments.json_elided

    def _prime_cache(self, request, decision, include_trace: bool, binary: bool, token):
        fragments = _Fragments(decision_to_dict(decision))
        # The token was captured before evaluation; a mutation that landed
        # mid-evaluation makes this store a no-op instead of resurrecting a
        # pre-mutation decision the eviction already covered.
        self._cache.put(
            request.subject,
            request.location,
            request.time,
            decision,
            payload=fragments,
            generation=token,
        )
        if binary:
            return fragments.binary(decision, include_trace)
        return fragments.json_full if include_trace else fragments.json_elided

    def _op_hello(self, connection, message: Dict[str, Any]) -> Dict[str, Any]:
        """Wire-format negotiation; the switch applies after this response."""
        chosen, result = wire.negotiate_hello(
            message, binary_enabled=self._binary_enabled
        )
        if chosen == wire.BINARY and connection.wire != wire.BINARY:
            connection.pending_wire = wire.BINARY
        return result

    def _op_decide(self, connection, message: Dict[str, Any]):
        include_trace = bool(message.get("trace", False))
        binary = connection.wire == wire.BINARY
        self._bump("decisions")
        raw_request = message.get("request")
        if self._cache is not None:
            fragment = self._cached_fragment(raw_request, include_trace, binary)
            if fragment is not None:
                connection.cache_outcome = "hit"
                return _RawBinary(fragment) if binary else _RawResult(fragment)
        request = request_from_dict(raw_request)
        if self._cache is not None:
            connection.cache_outcome = "miss"
            token = self._cache.generation(request.location)
            decision = self._engine.pdp.decide(request)
            fragment = self._prime_cache(request, decision, include_trace, binary, token)
            return _RawBinary(fragment) if binary else _RawResult(fragment)
        decision = self._engine.pdp.decide(request, trace=include_trace)
        if binary:
            return _RawBinary(_binary_decision(decision, include_trace))
        return _RawResult(_json_decision(decision, include_trace))

    def _op_decide_many(self, connection, message: Dict[str, Any]):
        raw_requests = message.get("requests", ())
        include_trace = bool(message.get("trace", False))
        binary = connection.wire == wire.BINARY
        self._bump("decisions", len(raw_requests))
        if self._cache is None:
            requests = [request_from_dict(item) for item in raw_requests]
            decisions = self._engine.pdp.decide_many(requests, trace=include_trace)
            if binary:
                return _RawBinary(
                    wire.encode_value(
                        {
                            "decisions": [
                                wire.Raw(_binary_decision(decision, include_trace))
                                for decision in decisions
                            ]
                        }
                    )
                )
            fragments = [
                _json_decision(decision, include_trace) for decision in decisions
            ]
            return _RawResult('{"decisions":[%s]}' % ",".join(fragments))
        fragments: List[Any] = []
        misses: List[Tuple[int, Any]] = []
        for raw_request in raw_requests:
            # quiet: one aggregate lookup event below, not one per item —
            # a traced 2k-request batch must not record 2k cache spans.
            fragment = self._cached_fragment(raw_request, include_trace, binary, quiet=True)
            fragments.append(fragment)
            if fragment is None:
                misses.append((len(fragments) - 1, raw_request))
        connection.cache_outcome = f"{len(fragments) - len(misses)}/{len(fragments)}"
        telemetry.trace_event(
            "cache.lookup", hits=len(fragments) - len(misses), total=len(fragments)
        )
        if misses:
            requests = [request_from_dict(raw) for _, raw in misses]
            # Tokens before the batch evaluation: its memoizing snapshot may
            # read any miss's state at any point of the batch.
            tokens = [self._cache.generation(request.location) for request in requests]
            decisions = self._engine.pdp.decide_many(requests)
            for (position, _), request, decision, token in zip(
                misses, requests, decisions, tokens
            ):
                fragments[position] = self._prime_cache(
                    request, decision, include_trace, binary, token
                )
        if binary:
            return _RawBinary(
                wire.encode_value(
                    {"decisions": [wire.Raw(fragment) for fragment in fragments]}
                )
            )
        return _RawResult('{"decisions":[%s]}' % ",".join(fragments))

    @staticmethod
    def _wrap_enforce(fragment, cached: bool, binary: bool):
        if binary:
            return _RawBinary(
                wire.encode_value({"cached": cached, "decision": wire.Raw(fragment)})
            )
        return _RawResult(
            '{"cached":%s,"decision":%s}' % ("true" if cached else "false", fragment)
        )

    def _op_enforce(self, connection, message: Dict[str, Any]):
        """PEP-routed decide: every enforcement lands in the audit log.

        A cache hit is **re-audited** through
        :meth:`~repro.api.pep.EnforcementPoint.attest` with the entry's
        originating generation — an audited deployment sees one decision
        entry (plus a ``CACHED`` note) per enforcement, never a silent
        cache short-circuit.  The response wraps the decision with a
        ``cached`` flag so remote enforcement points can surface it.
        Trace elision only trims the *response*: the attest/audit
        obligations run server-side either way.
        """
        include_trace = bool(message.get("trace", False))
        binary = connection.wire == wire.BINARY
        self._bump("decisions")
        raw_request = message.get("request")
        pep = self._engine.pep
        if self._cache is not None:
            entry = self._cached_entry(raw_request)
            if entry is not None:
                connection.cache_outcome = "hit"
                self._bump("cache_hits")
                pep.attest(entry.decision, cached_generation=entry.generation)
                fragments: _Fragments = entry.payload
                if binary:
                    fragment = fragments.binary(entry.decision, include_trace)
                else:
                    fragment = (
                        fragments.json_full if include_trace else fragments.json_elided
                    )
                return self._wrap_enforce(fragment, True, binary)
        request = request_from_dict(raw_request)
        if self._cache is not None:
            connection.cache_outcome = "miss"
            token = self._cache.generation(request.location)
            decision = pep.enforce(request)
            fragment = self._prime_cache(request, decision, include_trace, binary, token)
            return self._wrap_enforce(fragment, False, binary)
        decision = pep.enforce(request)
        if binary:
            return self._wrap_enforce(_binary_decision(decision, include_trace), False, True)
        return self._wrap_enforce(_json_decision(decision, include_trace), False, False)

    def _op_sync(self, connection, message: Dict[str, Any]) -> Dict[str, Any]:
        """The coherence barrier: drain the bus, pick up the shared store.

        On a bus-attached replica this closes the coherence window (see
        :meth:`~repro.service.bus.ReplicaCoherence.sync`); standalone it
        still folds any foreign rows committed to a shared SQLite file.
        """
        if self._coherence is not None:
            with telemetry.trace_span("bus.sync"):
                applied = self._coherence.sync()
        else:
            with telemetry.trace_span("store.pickup"):
                applied = len(self._engine.movement_db.pickup())
        movement_db = self._engine.movement_db
        return {
            "applied": applied,
            "position": movement_db.applied_position,
            "high_water": movement_db.high_water,
        }

    def _op_observe(self, connection, message: Dict[str, Any]) -> Dict[str, Any]:
        record = record_from_wire(message.get("record"))
        pep = self._engine.pep
        if record.kind is MovementKind.ENTER:
            alerts = pep.observe_entry(record.time, record.subject, record.location)
        else:
            alerts = pep.observe_exit(record.time, record.subject, record.location)
        self._bump("observed")
        return {"alerts": [alert_to_dict(alert) for alert in alerts]}

    def _ingestor(self, connection: _Connection, mode: str) -> MovementIngestor:
        ingestor = connection.ingestors.get(mode)
        if ingestor is None or ingestor.closed:
            sink = (
                self._engine.pep.observe_many
                if mode == "monitor"
                else self._engine.movement_db.record_many
            )
            extra: Dict[str, Any] = {}
            if self._checkpoint_policy is not None:
                # The shared gate keeps N connections' per-ingestor triggers
                # from multiplying the configured checkpoint rate.
                extra = {
                    "checkpoint_policy": self._checkpoint_policy,
                    "checkpoint": self._shared_checkpoint,
                }
            ingestor = MovementIngestor(
                sink, on_commit=self._on_ingest_commit, **self._ingest_knobs, **extra
            )
            connection.ingestors[mode] = ingestor
            with self._ingest_lock:
                self._ingestors.append((mode, ingestor))
        return ingestor

    def _on_ingest_commit(self, written: int, duration: float) -> None:
        """Group-commit hook, invoked on the ingest writer thread.

        Feeds the commit-latency histogram; the trace event only lands when
        the committing thread is traced (an inline flush under a traced
        op), which is exactly the zero-overhead contract.
        """
        self._ingest_commit_latency.observe(duration)
        telemetry.trace_event("ingest.commit", written=written)

    def _op_observe_batch(self, connection, message: Dict[str, Any]) -> Dict[str, Any]:
        records = records_from_wire(message.get("records", ()))
        mode = message.get("mode", "monitor")
        if mode not in INGEST_MODES:
            raise ProtocolError(
                f"unknown ingest mode {mode!r}; expected one of {', '.join(INGEST_MODES)}"
            )
        existing = connection.ingestors.get(mode)
        if not records and (existing is None or existing.closed):
            # A defensive flush on a connection that never ingested: nothing
            # to barrier — don't spawn a writer thread just to flush it.
            return {"accepted": 0, "submitted": 0, "written": 0, "dropped": 0, "checkpoints": 0}
        ingestor = self._ingestor(connection, mode)
        accepted = ingestor.submit_many(records)
        self._bump("observed", accepted)
        if message.get("wait", False):
            # Raises IngestError with the rejected records attached; the
            # protocol layer ships them back for client-side retry.  The
            # ingestor is this connection's own, so the failures belong to
            # the client that submitted them.
            ingestor.flush()
        return {
            "accepted": accepted,
            "submitted": ingestor.submitted,
            "written": ingestor.written,
            "dropped": ingestor.dropped,
            "checkpoints": ingestor.checkpoints,
        }

    def _op_query(self, connection, message: Dict[str, Any]) -> Dict[str, Any]:
        text = message.get("text")
        result = self._queries.evaluate(text)
        self._bump("queries")
        return query_result_to_dict(result)

    def _flush_live_ingestors(self) -> None:
        """Land everything accepted so far — every connection's ingestors.

        The barrier both ``checkpoint`` and the fabric's subject-handoff
        ops (``export_subjects``/``forget_subjects``) need: after it, no
        record any client has successfully submitted is still queued.
        """
        with self._ingest_lock:
            ingestors = [ingestor for _, ingestor in self._ingestors]
        for ingestor in ingestors:
            if ingestor.closed:
                continue
            try:
                ingestor.flush(raise_failures=False)
            except IngestError:
                # Closed concurrently by its disconnecting client: that
                # close already flushed everything it had accepted.
                pass

    def _op_checkpoint(self, connection, message: Dict[str, Any]) -> Dict[str, Any]:
        # Land everything accepted so far before stamping the checkpoint.
        # Runs in the executor (blocking op).
        self._flush_live_ingestors()
        compact = bool(message.get("compact", True))
        with telemetry.trace_span("store.checkpoint", compact=compact):
            receipt = self._engine.checkpoint(compact=compact)
        retain = message.get("retain")
        # Retention only accompanies compacting checkpoints (the
        # CheckpointPolicy contract): a snapshot-only checkpoint must not
        # destroy the existing archive.
        if retain is not None and compact:
            self._engine.movement_db.prune_archive(retain)
        return checkpoint_to_dict(receipt)

    # ------------------------------------------------------------------ #
    # Fabric handoff ops (see :mod:`repro.service.fabric`)
    # ------------------------------------------------------------------ #
    def _op_export_subjects(self, connection, message: Dict[str, Any]) -> Dict[str, Any]:
        """Read-only export of some subjects' partition-local state.

        Flushes every connection's pending ingest first, so the export is a
        barrier: it contains every record any client successfully submitted
        before the call.  Nothing is removed — the router's ``reshard``
        calls ``forget_subjects`` separately, *after* the destination has
        confirmed the import, so a failed migration never loses state.
        """
        subjects = [str(subject) for subject in message.get("subjects", ())]
        self._flush_live_ingestors()
        export = self._engine.movement_db.export_subjects(subjects)
        sink = getattr(self._engine, "alerts", None)
        wanted = set(subjects)
        alerts = [a for a in sink.alerts if a.subject in wanted] if sink is not None else []
        monitor = getattr(self._engine, "monitor", None)
        sessions = monitor.export_sessions(subjects) if monitor is not None else []
        return {
            "subjects": subjects,
            "live": records_to_wire(export["live"]),
            "archived": records_to_wire(export["archived"]),
            "archived_through": self._engine.movement_db.archived_through,
            "alerts": [alert_to_dict(alert) for alert in alerts],
            "sessions": [list(session) for session in sessions],
        }

    def _op_import_archive(self, connection, message: Dict[str, Any]) -> Dict[str, Any]:
        """Adopt migrated subjects' *archived* state (records + alerts).

        The live-log slice does not come through here — the router ships it
        through the ordinary ``observe_batch`` path (``mode="record"``), so
        it lands exactly like native ingest.  Imported records are folded
        into the occupancy projection and the mutation notifications fire,
        so an attached decision cache evicts the affected locations.
        """
        records = records_from_wire(message.get("records", ()))
        alerts = [alert_from_dict(item) for item in message.get("alerts", ())]
        self._engine.movement_db.import_archived(
            records, archived_through=message.get("archived_through")
        )
        sink = getattr(self._engine, "alerts", None)
        if sink is not None and alerts:
            sink.adopt(alerts)
        # Adopt the subjects' open occupancy sessions: exit matching and
        # overstay sweeps must keep judging a stay that began on the source.
        # The live-log slice arrives later in ``record`` mode, which never
        # touches the session table — the adopted state is the final state.
        sessions = message.get("sessions", ())
        monitor = getattr(self._engine, "monitor", None)
        if monitor is not None:
            for item in sessions:
                subject, location, entered_at, auth_id, overstay_flagged = item
                authorization = None
                if auth_id is not None:
                    try:
                        authorization = self._engine.authorization_db.get(auth_id)
                    except Exception:  # noqa: BLE001 - a revoked-here auth degrades
                        authorization = None  # to an unauthorized stay, not a crash
                monitor.adopt_session(
                    str(subject),
                    str(location),
                    int(entered_at),
                    authorization,
                    overstay_flagged=bool(overstay_flagged),
                )
        return {
            "imported": len(records),
            "alerts": len(alerts),
            "sessions": len(sessions),
            "archived_through": self._engine.movement_db.archived_through,
        }

    def _op_forget_subjects(self, connection, message: Dict[str, Any]) -> Dict[str, Any]:
        """Drop every trace of some subjects (the handoff's source side).

        Removes their movement records (live and archived), their occupancy
        projection state and their alerts, then invalidates the cache for
        every location the subjects touched — a decision for a departed
        subject must not be re-served from this partition's cache.
        """
        subjects = [str(subject) for subject in message.get("subjects", ())]
        self._flush_live_ingestors()
        locations = self._engine.movement_db.forget_subjects(subjects)
        sink = getattr(self._engine, "alerts", None)
        dropped_alerts = sink.extract_for(subjects) if sink is not None else []
        monitor = getattr(self._engine, "monitor", None)
        if monitor is not None:
            monitor.drop_sessions(subjects)
        if self._cache is not None:
            for location in locations:
                self._cache.invalidate_location(location)
            # Location-wise eviction covers every location the subjects
            # *moved through*; cached denials can live at locations with no
            # movement record (and, on a tiered cache, as spilled disk
            # rows).  The subject-wise purge tombstones those too, so a
            # migrated subject's decisions cannot survive the reshard in
            # this partition's cache file.
            invalidate_subject = getattr(self._cache, "invalidate_subject", None)
            if callable(invalidate_subject):
                for subject in subjects:
                    invalidate_subject(subject)
        if self._coherence is not None:
            # forget_subjects drops occupancy *without* mutation notices, so
            # the automatic ledger publish never fires — announce the new
            # (lower) counts explicitly or the peers would keep counting the
            # migrated subjects against this partition forever.
            self._coherence.publish_occupancy(locations)
        return {
            "subjects": subjects,
            "locations": sorted(locations),
            "alerts_dropped": len(dropped_alerts),
        }

    def _op_list_subjects(self, connection, message: Dict[str, Any]) -> Dict[str, Any]:
        """Every subject this partition holds state for (records or alerts)."""
        subjects = set(self._engine.movement_db.known_subjects())
        sink = getattr(self._engine, "alerts", None)
        if sink is not None:
            subjects.update(alert.subject for alert in sink.alerts)
        return {"subjects": sorted(subjects)}

    def _partition_info(self) -> Optional[Dict[str, Any]]:
        if self._partition is None and self._partition_map is None:
            return None
        info: Dict[str, Any] = {"name": self._partition}
        if self._partition_map is not None:
            info["map_version"] = self._partition_map.version
            if self._partition is not None:
                try:
                    info.update(self._partition_map.describe(self._partition))
                except Exception:  # noqa: BLE001 - a foreign map must not break health
                    pass
        return info

    def _op_metrics(self, connection, message: Dict[str, Any]) -> Dict[str, Any]:
        """The whole registry as structured JSON (plus this server's identity).

        The ``repro top`` dashboard and anything else that wants the raw
        counters read this; the Prometheus endpoint renders the same
        registry as text exposition.
        """
        self._register_location_gauges()  # pick up post-start set_capacity calls
        data = self._registry.collect()
        data["identity"] = {
            "role": "server",
            "partition": self._partition,
            "replica": self._coherence.replica_id if self._coherence is not None else None,
        }
        return data

    def _op_health(self, connection, message: Dict[str, Any]) -> Dict[str, Any]:
        with self._ingest_lock:
            # Cumulative per mode: retired (disconnected) ingestors' folded
            # totals plus every live connection's counters.
            ingest: Dict[str, Dict[str, int]] = {
                mode: dict(totals) for mode, totals in self._ingest_totals.items()
            }
            for mode, ingestor in self._ingestors:
                _fold_ingest(ingest, mode, ingestor)
        uptime = time.monotonic() - self._started_at if self._started_at is not None else 0.0
        return {
            "status": "ok",
            "uptime": uptime,
            "backend": type(self._engine.movement_db).__name__,
            "stats": self._snapshot_stats(),
            "cache": self._cache.stats if self._cache is not None else None,
            "cache_warm": self._warm_report,
            "connections": {
                "live": self._live_connections,
                "max": self._max_connections,
                "busy_refused": self._busy_refused,
            },
            "coherence": self._coherence.stats if self._coherence is not None else None,
            "ledger": self._ledger_info(),
            "ingest": ingest,
            "partition": self._partition_info(),
        }

    def _ledger_info(self) -> Optional[Dict[str, Any]]:
        """The capacity ledger's health section (``None`` outside the fabric).

        ``local`` is this partition's own zero-pruned occupancy vector and
        ``remote`` the per-origin vectors folded from the bus — the router's
        convergence check compares every partition's ``local`` against its
        peers' ``remote`` copies of it.
        """
        if self._ledger is None:
            return None
        local = dict(Counter(self._engine.movement_db.subjects_inside().values()))
        info: Dict[str, Any] = {
            "local": local,
            "remote": self._ledger.remote_vectors(),
            "lag_seconds": self._ledger.lag_seconds,
        }
        info.update(self._ledger.stats)
        return info

    _HANDLERS = {
        "hello": _op_hello,
        "decide": _op_decide,
        "decide_many": _op_decide_many,
        "enforce": _op_enforce,
        "observe": _op_observe,
        "observe_batch": _op_observe_batch,
        "query": _op_query,
        "checkpoint": _op_checkpoint,
        "sync": _op_sync,
        "health": _op_health,
        "metrics": _op_metrics,
        "export_subjects": _op_export_subjects,
        "import_archive": _op_import_archive,
        "forget_subjects": _op_forget_subjects,
        "list_subjects": _op_list_subjects,
    }
