"""Errors of the network service layer.

The service layer distinguishes three failure families:

* :class:`ProtocolError` — a frame or payload that does not conform to the
  wire protocol (malformed JSON, unknown op, missing fields);
* :class:`ServiceConnectionError` — the transport failed (connect refused,
  connection reset, server closed mid-request);
* :class:`RemoteServiceError` — the server reported a failure that does not
  map to one of the library's typed errors.

Typed library errors (:class:`~repro.errors.StorageError`,
:class:`~repro.errors.IngestError`, :class:`~repro.errors.QuerySyntaxError`,
…) cross the wire **as themselves**: the protocol layer serializes the error
class name and re-raises the matching class client-side, so remote callers
keep the same ``except`` clauses they would use embedded.
"""

from __future__ import annotations

from repro.errors import LTAMError

__all__ = ["ServiceError", "ProtocolError", "ServiceConnectionError", "RemoteServiceError"]


class ServiceError(LTAMError):
    """Base class for network-service failures."""


class ProtocolError(ServiceError):
    """A wire frame or payload violates the service protocol."""


class ServiceConnectionError(ServiceError):
    """The transport to/from the service failed."""


class RemoteServiceError(ServiceError):
    """The server reported an error with no matching typed error class."""
