"""Errors of the network service layer.

The service layer distinguishes three failure families:

* :class:`ProtocolError` — a frame or payload that does not conform to the
  wire protocol (malformed JSON, unknown op, missing fields);
* :class:`ServiceConnectionError` — the transport failed (connect refused,
  connection reset, server closed mid-request);
* :class:`RemoteServiceError` — the server reported a failure that does not
  map to one of the library's typed errors.

Typed library errors (:class:`~repro.errors.StorageError`,
:class:`~repro.errors.IngestError`, :class:`~repro.errors.QuerySyntaxError`,
…) cross the wire **as themselves**: the protocol layer serializes the error
class name and re-raises the matching class client-side, so remote callers
keep the same ``except`` clauses they would use embedded.
"""

from __future__ import annotations

from repro.errors import LTAMError

__all__ = [
    "ServiceError",
    "ProtocolError",
    "ServiceAuthError",
    "ServiceBusyError",
    "ServiceConnectionError",
    "RemoteServiceError",
]


class ServiceError(LTAMError):
    """Base class for network-service failures."""


class ProtocolError(ServiceError):
    """A wire frame or payload violates the service protocol."""


class ServiceBusyError(ServiceError):
    """The server refused the connection: its per-listener cap is reached.

    Raised client-side when a capped listener (``--max-connections``)
    answers a new connection with a typed ``busy`` error frame and closes
    it.  Retriable by definition — the server is healthy, just saturated.
    """


class ServiceAuthError(ServiceError):
    """The request lacked (or mis-stated) the listener's shared auth token.

    Raised client-side when a token-protected listener (``--auth-token`` on
    the server, the router or the invalidation bus) answers a frame with a
    typed auth error.  Not retriable without the token: unlike
    :class:`ServiceBusyError`, the refusal is about the caller, not load.
    """


class ServiceConnectionError(ServiceError):
    """The transport to/from the service failed."""


class RemoteServiceError(ServiceError):
    """The server reported an error with no matching typed error class."""
