"""The decision cache: hot read traffic skips the pipeline entirely.

A production gate fleet re-checks the same (subject, location) pairs far
more often than the underlying state changes.  :class:`DecisionCache` keys
decisions by ``(subject, location, action, time bucket)`` and serves repeat
requests without re-running the decision pipeline — while staying
**parity-correct** through event-wise invalidation:

* the cache :meth:`connect`\\ s to the movement database's mutation
  notifications (:meth:`~repro.storage.movement_db.MovementDatabase.subscribe`)
  and, for every applied movement, evicts **only the keys of the locations
  that movement can affect** — the record's location (entry counters and
  occupancy) and, for an ENTER while the subject was tracked elsewhere, the
  previous location (its occupancy changed too).  Hot keys elsewhere in the
  building survive;
* administrative mutations (grant/revoke) invalidate through the
  :meth:`~repro.api.pdp.DecisionPoint` hook points (pair-wise) or
  :meth:`clear`.

The default ``bucket=1`` caches at chronon granularity — exact: a hit is a
request with the very same (subject, location, action, time).  A wider
bucket trades exactness for hit rate: every request inside a bucket is
served the decision computed for the first one, which is only safe when the
deployment's entry windows and budgets are aligned to bucket multiples.

Entries optionally carry a *payload*, opaque to the cache — the network
server stores the pre-serialized wire forms of the decision there (the
JSON fragments eagerly, the binary-codec fragments filled on a binary
connection's first hit), so cache hits skip response re-encoding too (the
dominant cost once the pipeline is skipped), on every negotiated framing.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import TYPE_CHECKING, Any, Dict, NamedTuple, Optional, Sequence, Set, Tuple

from repro.service.errors import ServiceError
from repro.service.telemetry import trace_event

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.decision import Decision
    from repro.core.requests import AccessRequest
    from repro.storage.movement_db import MovementDatabase, MovementNotice

__all__ = ["CachedDecision", "DecisionCache", "DEFAULT_ACTION", "FLIGHT_TIMEOUT"]

#: The one action the paper's model knows; the key slot exists so a
#: multi-action deployment (enter/exit/stay) can share one cache.
DEFAULT_ACTION = "enter"

#: How long a single-flight follower waits for the leader's store before
#: giving up and evaluating itself (a leader that died or whose store was
#: generation-dropped must not strand its followers).
FLIGHT_TIMEOUT = 2.0


class Flight:
    """One key's in-progress pipeline evaluation (see :meth:`DecisionCache.flight`).

    Exactly one caller per key holds ``leader=True`` at a time: it runs the
    pipeline and MUST call :meth:`done` afterwards (success or not).
    Followers :meth:`wait` for the leader, then re-check the cache — a hit
    reuses the leader's stored entry without re-running the pipeline; a
    miss (the leader's store raced an invalidation and was dropped) falls
    back to evaluating normally.
    """

    __slots__ = ("leader", "_event", "_release")

    def __init__(self, leader: bool, event: threading.Event, release) -> None:
        self.leader = leader
        self._event = event
        self._release = release

    def wait(self, timeout: Optional[float] = FLIGHT_TIMEOUT) -> bool:
        """Block (followers only) until the leader finished; True if it did."""
        return self._event.wait(timeout)

    def done(self) -> None:
        """Leader only: release the key and wake every follower."""
        if self.leader:
            self._release()
            self._event.set()


class CachedDecision(NamedTuple):
    """One cache entry: the decision plus an opaque owner-attached payload
    (the server stores pre-serialized wire fragments there).

    *generation* is the invalidation token captured before the decision was
    evaluated — the entry's **originating generation**.  The server's
    ``enforce`` op attests cache hits with it, so the audit log names the
    exact invalidation era a re-served decision was computed in.
    """

    decision: "Decision"
    payload: Optional[Any]
    generation: Optional[Tuple[int, int]] = None


class DecisionCache:
    """LRU decision cache with event-wise, location-scoped invalidation.

    Parameters
    ----------
    bucket:
        Width, in chronons, of the time bucket in the key.  The default of
        ``1`` is exact (see the module note on wider buckets).
    maxsize:
        Entry cap; least-recently-used entries are evicted beyond it.

    Thread safety: all operations take one internal lock — lookups run on
    the serving thread while invalidations arrive from ingest writer
    threads.
    """

    def __init__(self, *, bucket: int = 1, maxsize: int = 65536) -> None:
        if not isinstance(bucket, int) or isinstance(bucket, bool) or bucket < 1:
            raise ServiceError(f"cache bucket width must be a positive integer, got {bucket!r}")
        if not isinstance(maxsize, int) or isinstance(maxsize, bool) or maxsize < 1:
            raise ServiceError(f"cache maxsize must be a positive integer, got {maxsize!r}")
        self._bucket = bucket
        self._maxsize = maxsize
        self._entries: "OrderedDict[Tuple[str, str, str, int], CachedDecision]" = OrderedDict()
        self._by_location: Dict[str, Set[Tuple[str, str, str, int]]] = {}
        self._lock = threading.Lock()
        # Invalidation generations: bumped per location on every eviction
        # (and on every movement notice, cached keys or not) so an in-flight
        # store computed from pre-invalidation state can be detected and
        # dropped (see :meth:`generation` / the ``generation=`` store knob).
        self._generations: Dict[str, int] = {}
        self._epoch = 0
        self._hits = 0
        self._misses = 0
        self._stores = 0
        self._stale_stores = 0
        self._invalidated = 0
        self._evicted = 0
        # Single-flight registry: one Event per key currently being
        # evaluated, so N concurrent misses for one key run the pipeline
        # once (see :meth:`flight`).
        self._flights: Dict[Tuple[str, str, str, int], threading.Event] = {}
        self._flights_led = 0
        self._flights_joined = 0

    # ------------------------------------------------------------------ #
    # Core get/put
    # ------------------------------------------------------------------ #
    def _key(self, subject: str, location: str, time: int, action: str) -> Tuple[str, str, str, int]:
        return (subject, location, action, time // self._bucket)

    def get(
        self,
        subject: str,
        location: str,
        time: int,
        *,
        action: str = DEFAULT_ACTION,
        quiet: bool = False,
    ) -> Optional[CachedDecision]:
        """The cached entry for the key, or ``None`` (counts hit/miss).

        ``quiet`` skips the per-lookup trace event — batch callers doing
        thousands of lookups per request record one aggregate event
        instead of flooding the span tree (and the hot path) per item.
        """
        key = self._key(subject, location, time, action)
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                # Tiered subclasses may promote a spilled entry back into
                # RAM here; a promotion counts as a hit (it skipped the
                # pipeline and, with persisted fragments, the re-encoding).
                entry = self._promote_locked(key)
                if entry is None:
                    self._misses += 1
                else:
                    self._entries.move_to_end(key)
                    self._hits += 1
            else:
                self._entries.move_to_end(key)
                self._hits += 1
        # Trace events outside the lock: a thread-local read when no trace
        # is active, never contention on the cache's hot lock.
        if entry is None:
            if not quiet:
                trace_event("cache.miss", subject=subject, location=location)
            return None
        if not quiet:
            trace_event("cache.hit", subject=subject, location=location)
        return entry

    def generation(self, location: str) -> Tuple[int, int]:
        """An invalidation token for *location*, to be captured **before**
        evaluating a decision and handed back to :meth:`put`/:meth:`store`.

        Evaluation and invalidation race: a decision computed from
        pre-movement state must not be cached after the movement's eviction
        already ran (it would never be evicted again for that movement).
        The token is compared at store time; a moved generation drops the
        store instead.
        """
        with self._lock:
            return (self._epoch, self._generations.get(location, 0))

    def put(
        self,
        subject: str,
        location: str,
        time: int,
        decision: "Decision",
        *,
        payload: Optional[Dict[str, Any]] = None,
        action: str = DEFAULT_ACTION,
        generation: Optional[Tuple[int, int]] = None,
    ) -> bool:
        """Cache *decision* (and optionally its wire encoding) for the key.

        With a *generation* token from :meth:`generation`, the store is
        dropped (returning ``False``) when the location was invalidated
        since the token was captured — the decision may predate the
        mutation that evicted it.
        """
        key = self._key(subject, location, time, action)
        with self._lock:
            if generation is not None and generation != (
                self._epoch,
                self._generations.get(key[1], 0),
            ):
                self._stale_stores += 1
                return False
            entry = CachedDecision(decision, payload, generation)
            self._admit_locked(key, entry)
            self._stores += 1
            self._persist_locked(key, entry)
            return True

    def _admit_locked(self, key: Tuple[str, str, str, int], entry: CachedDecision) -> None:
        """Insert *entry* as most-recently-used, evicting the LRU at capacity."""
        if key not in self._entries and len(self._entries) >= self._maxsize:
            old_key, old_entry = self._entries.popitem(last=False)
            self._discard_index(old_key)
            self._evicted += 1
            self._demoted_locked(old_key, old_entry)
        self._entries[key] = entry
        self._entries.move_to_end(key)
        self._by_location.setdefault(key[1], set()).add(key)

    def _discard_index(self, key: Tuple[str, str, str, int]) -> None:
        keys = self._by_location.get(key[1])
        if keys is not None:
            keys.discard(key)
            if not keys:
                del self._by_location[key[1]]

    # ------------------------------------------------------------------ #
    # Tier hooks (no-ops here; the persistent tiered cache of
    # :mod:`repro.service.cache_store` overrides them).  All run under
    # ``self._lock``.
    # ------------------------------------------------------------------ #
    def _promote_locked(self, key: Tuple[str, str, str, int]) -> Optional[CachedDecision]:
        """A RAM miss: load the key from a lower tier, or ``None``."""
        return None

    def _persist_locked(self, key: Tuple[str, str, str, int], entry: CachedDecision) -> None:
        """A store was admitted: write it through to a lower tier."""

    def _demoted_locked(self, key: Tuple[str, str, str, int], entry: CachedDecision) -> None:
        """A still-valid entry was LRU-evicted from RAM (spill accounting)."""

    def _purge_location_locked(self, location: str) -> None:
        """The location was invalidated: tombstone its lower-tier rows."""

    def _purge_pair_locked(self, subject: str, location: str) -> None:
        """The pair was invalidated: tombstone its lower-tier rows."""

    def _purge_subject_locked(self, subject: str) -> None:
        """The subject was invalidated: tombstone its lower-tier rows."""

    def _purge_all_locked(self) -> None:
        """The cache was cleared: tombstone every lower-tier row."""

    def _extra_stats_locked(self) -> Dict[str, int]:
        """Tier counters merged into :attr:`stats` by subclasses."""
        return {}

    # ------------------------------------------------------------------ #
    # PDP hook points (duck-typed: the PDP never imports this module)
    # ------------------------------------------------------------------ #
    def lookup(self, request: "AccessRequest") -> Optional["Decision"]:
        """The cached decision for *request*, or ``None``."""
        entry = self.get(request.subject, request.location, request.time)
        return entry.decision if entry is not None else None

    def store(
        self,
        request: "AccessRequest",
        decision: "Decision",
        *,
        generation: Optional[Tuple[int, int]] = None,
    ) -> None:
        """Cache the decision just computed for *request*.

        Pass the :meth:`generation` token captured before evaluation so a
        store racing an invalidation is dropped, not resurrected.  An
        existing entry for the key is left alone: it is still valid (an
        invalidation would have evicted it), decisions for an equal key are
        parity-equal, and it may carry a server-attached wire payload this
        payload-less store must not demote.
        """
        key = self._key(request.subject, request.location, request.time, DEFAULT_ACTION)
        with self._lock:
            if key in self._entries:
                return
        self.put(
            request.subject, request.location, request.time, decision, generation=generation
        )

    # ------------------------------------------------------------------ #
    # Invalidation
    # ------------------------------------------------------------------ #
    def invalidate_location(self, location: str) -> int:
        """Evict every key of *location*; returns how many were evicted."""
        with self._lock:
            return self._invalidate_location_locked(location)

    def _invalidate_location_locked(self, location: str) -> int:
        # Bump the generation even when nothing is cached: an in-flight
        # evaluation for this location may be about to store.
        self._generations[location] = self._generations.get(location, 0) + 1
        self._purge_location_locked(location)
        keys = self._by_location.pop(location, None)
        if not keys:
            return 0
        for key in keys:
            self._entries.pop(key, None)
        self._invalidated += len(keys)
        return len(keys)

    def invalidate_pair(self, subject: str, location: str) -> int:
        """Evict the keys of one (subject, location) pair (grant/revoke hook)."""
        with self._lock:
            self._generations[location] = self._generations.get(location, 0) + 1
            self._purge_pair_locked(subject, location)
            keys = self._by_location.get(location)
            if not keys:
                return 0
            doomed = [key for key in keys if key[0] == subject]
            for key in doomed:
                self._entries.pop(key, None)
                keys.discard(key)
            if not keys:
                del self._by_location[location]
            self._invalidated += len(doomed)
            return len(doomed)

    def invalidate_subject(self, subject: str) -> int:
        """Evict every key of one subject, whatever the location.

        The fabric's migration hook: after ``forget_subjects`` hands a
        subject to another partition, no decision about it may be re-served
        here — including spilled rows at locations the subject never
        physically moved through (cached denials).  Bumps the generations of
        the affected locations so racing stores drop, exactly like the
        location-wise paths.
        """
        with self._lock:
            doomed = [key for key in self._entries if key[0] == subject]
            for location in {key[1] for key in doomed}:
                self._generations[location] = self._generations.get(location, 0) + 1
            for key in doomed:
                self._entries.pop(key, None)
                self._discard_index(key)
            self._invalidated += len(doomed)
            self._purge_subject_locked(subject)
            return len(doomed)

    def clear(self) -> int:
        """Evict everything (coarse invalidation for bulk admin changes)."""
        with self._lock:
            count = len(self._entries)
            self._entries.clear()
            self._by_location.clear()
            self._generations.clear()
            self._epoch += 1
            self._invalidated += count
            self._purge_all_locked()
            return count

    # ------------------------------------------------------------------ #
    # Event-wise invalidation from the movement store
    # ------------------------------------------------------------------ #
    def on_movements(self, notices: Sequence["MovementNotice"]) -> int:
        """Movement-mutation listener: evict only the locations a batch touches."""
        affected: Set[str] = set()
        for notice in notices:
            affected.update(notice.affected_locations)
        evicted = 0
        with self._lock:
            for location in affected:
                evicted += self._invalidate_location_locked(location)
        return evicted

    def connect(self, movement_db: "MovementDatabase"):
        """Subscribe to *movement_db*'s mutations; returns the unsubscriber."""
        return movement_db.subscribe(self.on_movements)

    # ------------------------------------------------------------------ #
    # Single-flight: one pipeline evaluation per concurrent-miss key
    # ------------------------------------------------------------------ #
    def flight(
        self, subject: str, location: str, time: int, *, action: str = DEFAULT_ACTION
    ) -> Flight:
        """Claim (or join) the in-progress evaluation for one key.

        The cold-cache thundering-herd fix: N concurrent identical misses —
        the first seconds after a restart, exactly when the pipeline is the
        bottleneck — elect one *leader* that runs the pipeline while the
        followers :meth:`~Flight.wait` and reuse the stored entry.  The
        caller that gets ``leader=True`` **must** call :meth:`~Flight.done`
        when its store attempt finished, stored or dropped.
        """
        key = self._key(subject, location, time, action)
        with self._lock:
            event = self._flights.get(key)
            if event is None:
                event = threading.Event()
                self._flights[key] = event
                self._flights_led += 1

                def release() -> None:
                    with self._lock:
                        self._flights.pop(key, None)

                trace_event("cache.flight", role="leader", subject=subject, location=location)
                return Flight(True, event, release)
            self._flights_joined += 1
        trace_event("cache.flight", role="follower", subject=subject, location=location)
        return Flight(False, event, lambda: None)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def bucket(self) -> int:
        """The time-bucket width (chronons) of the cache key."""
        return self._bucket

    @property
    def maxsize(self) -> int:
        """The entry cap."""
        return self._maxsize

    @property
    def stats(self) -> Dict[str, int]:
        """Counters: hits, misses, stores, stale_stores, invalidated,
        evicted, flights led/joined, size — plus the tier counters (spilled,
        disk_hits, promoted, readmitted, tombstoned, disk_size) on the
        persistent tiered cache."""
        with self._lock:
            counters = {
                "hits": self._hits,
                "misses": self._misses,
                "stores": self._stores,
                "stale_stores": self._stale_stores,
                "invalidated": self._invalidated,
                "evicted": self._evicted,
                "flights_led": self._flights_led,
                "flights_joined": self._flights_joined,
                "size": len(self._entries),
            }
            counters.update(self._extra_stats_locked())
            return counters

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)
