"""The partitioned serving fabric: subjects sharded across server processes.

PR 3 sharded the occupancy projection *inside* one process and the replica
work made copies of one log coherent; this module composes them into a
fleet.  A :class:`PartitionMap` assigns every subject to a named partition
with the same consistent-hash construction the in-process
:class:`~repro.storage.sharding.HashRing` uses (CRC32 points, virtual
nodes) — stable across processes and restarts, minimal-remap under growth —
and a :class:`FabricRouter` in front of the partitions speaks the ordinary
service protocol:

* **point ops** (``decide`` / ``enforce`` / ``observe``) are forwarded to
  the subject's owning partition, wire-form in, wire-form out;
* **batch ops** (``decide_many`` / ``observe_batch``) are scatter-gathered:
  the batch is split by owner with per-partition order preserved (the only
  order occupancy semantics depend on), the partitions run concurrently,
  and decisions are reassembled into the caller's original order;
* **cross-partition queries** fan out and merge deterministically —
  ``WHO IS IN`` is the sorted union of disjoint per-partition occupant
  sets, subject-scoped statements go straight to the owner, and global
  ``VIOLATIONS`` merges on the full row (canonical order, documented);
* :meth:`FabricRouter.reshard` is the live-migration story: only the
  subjects whose owner changed move.  Each one's archived slice and alerts
  travel through the ``import_archive`` handoff op, its live-log slice
  ships through the ordinary ``observe_batch`` path (``mode="record"``,
  landing exactly like native ingest without re-raising old alerts), the
  source forgets it, and a ``sync`` barrier on the destination guarantees
  no decision is served from a partition that no longer owns the subject.
  Routed traffic holds the map read-locked, reshard holds it exclusively —
  a request is never routed with a half-installed map.

The router is usable two ways: embedded client-side (a drop-in front end
over :class:`~repro.service.client.ConnectionPool` instances) or as a
standalone ``repro route`` process (:class:`RouterServer`, hosted on the
same :class:`~repro.service.runtime.AsyncServiceHost` lifecycle as the
server and the bus).

**Global capacity** — capacity checks count the whole fabric: each
partition publishes its per-location occupancy over the invalidation bus
and folds its peers' vectors into a
:class:`~repro.service.capacity.CapacityLedger`, so
:class:`~repro.api.stages.CapacityStage` sees *local projection + remote
ledger* wherever a location's occupants span partitions.  The router's
``sync`` fan-out is the convergence barrier — it runs **two phases**
(flush every partition's pending publishes to the hub, then deliver every
peer's publishes everywhere), and :meth:`FabricRouter.reshard` ends with
the same barrier so moved subjects' stays are never double-counted across
the handoff.  :meth:`FabricRouter.health` compares every partition's local
occupancy vector against its peers' replicated copies and reports the
fabric-wide ``ledger`` convergence verdict (``repro route --status``).
"""

from __future__ import annotations

import asyncio
import bisect
import json
import logging
import threading
import time
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.subjects import subject_name
from repro.engine.alerts import Alert
from repro.engine.query.ast import QueryResult, RouteQuery, ViolationsQuery, WhoIsInQuery
from repro.engine.query.parser import parse
from repro.api.decision import Decision
from repro.storage.movement_db import MovementRecord
from repro.storage.sharding import DEFAULT_VIRTUAL_NODES, stable_hash
from repro.service import telemetry, wire as wireformat
from repro.service.client import ConnectionPool, RequestLike, _coerce_request
from repro.service.errors import (
    ProtocolError,
    ServiceAuthError,
    ServiceBusyError,
    ServiceError,
)
from repro.service.protocol import (
    alert_from_dict,
    decision_from_dict,
    decode_frame,
    encode_frame,
    error_to_dict,
    query_result_from_dict,
    record_to_wire,
    request_to_dict,
)
from repro.service.runtime import DEFAULT_FRAME_LIMIT, AsyncServiceHost

__all__ = [
    "DEFAULT_ROUTER_PORT",
    "PartitionMap",
    "FabricRouter",
    "RouterServer",
]

#: Default port of a standalone ``repro route`` process.
DEFAULT_ROUTER_PORT = 7473

# Same request log the server's slow-request sampler writes to: one stream,
# whichever tier sampled the request.
_request_log = logging.getLogger("repro.service.requests")

#: The full 32-bit hash ring the partition points live on.
_RING_SPAN = 1 << 32


class PartitionMap:
    """A versioned consistent-hash assignment of subjects to named partitions.

    Parameters
    ----------
    partitions:
        Mapping of partition name → ``"host:port"`` address.
    version:
        Monotonic map version; a reshard installs a strictly newer map.
    virtual_nodes:
        Ring points per partition (same default as the in-process ring).
    assignments:
        Explicit subject → partition pins applied *after* the ring lookup.
        This is how a single hot subject moves without touching the ring:
        :meth:`with_assignment` yields a successor map differing in exactly
        that subject.

    The map is immutable; the ``with_*`` methods return bumped successors.
    It serializes to a small JSON document (:meth:`to_wire`/:meth:`save`)
    so ``repro serve --map`` and ``repro route --map`` processes can share
    one file.
    """

    def __init__(
        self,
        partitions: Dict[str, str],
        *,
        version: int = 1,
        virtual_nodes: int = DEFAULT_VIRTUAL_NODES,
        assignments: Optional[Dict[str, str]] = None,
    ) -> None:
        if not isinstance(partitions, dict) or not partitions:
            raise ServiceError("a partition map needs at least one named partition")
        if not isinstance(version, int) or isinstance(version, bool) or version < 1:
            raise ServiceError(f"map version must be a positive integer, got {version!r}")
        if not isinstance(virtual_nodes, int) or virtual_nodes < 1:
            raise ServiceError(f"virtual node count must be positive, got {virtual_nodes!r}")
        self._partitions: Dict[str, str] = {}
        for name, address in partitions.items():
            name = str(name)
            host, port = self._parse_address(name, address)
            self._partitions[name] = f"{host}:{port}"
        self._version = version
        self._virtual_nodes = virtual_nodes
        self._assignments: Dict[str, str] = {}
        for subject, name in (assignments or {}).items():
            if name not in self._partitions:
                raise ServiceError(
                    f"assignment pins {subject!r} to unknown partition {name!r}"
                )
            self._assignments[subject_name(subject)] = str(name)
        # The ring: virtual-node points per partition, sorted.  Point ties
        # between partitions resolve by name — deterministic everywhere.
        points: List[Tuple[int, str]] = []
        for name in sorted(self._partitions):
            for replica in range(virtual_nodes):
                points.append((stable_hash(f"{name}:vnode-{replica}"), name))
        points.sort()
        self._points = [point for point, _ in points]
        self._owners = [owner for _, owner in points]

    @staticmethod
    def _parse_address(name: str, address: Any) -> Tuple[str, int]:
        text = str(address)
        host, separator, port = text.rpartition(":")
        if not separator or not host:
            raise ServiceError(
                f"partition {name!r} address must look like 'host:port', got {address!r}"
            )
        try:
            return host, int(port)
        except ValueError:
            raise ServiceError(
                f"partition {name!r} has a non-numeric port in {address!r}"
            ) from None

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def version(self) -> int:
        """The map's monotonic version."""
        return self._version

    @property
    def virtual_nodes(self) -> int:
        """Ring points per partition."""
        return self._virtual_nodes

    @property
    def names(self) -> Tuple[str, ...]:
        """The partition names, sorted."""
        return tuple(sorted(self._partitions))

    @property
    def partitions(self) -> Dict[str, str]:
        """A copy of the name → ``"host:port"`` table."""
        return dict(self._partitions)

    @property
    def assignments(self) -> Dict[str, str]:
        """A copy of the explicit subject → partition pins."""
        return dict(self._assignments)

    def address(self, name: str) -> Tuple[str, int]:
        """The ``(host, port)`` of partition *name*."""
        try:
            address = self._partitions[name]
        except KeyError:
            raise ServiceError(
                f"unknown partition {name!r}; the map holds {', '.join(self.names)}"
            ) from None
        return self._parse_address(name, address)

    def owner(self, subject: str) -> str:
        """The partition owning *subject* — pin first, then the ring."""
        subject = subject_name(subject)
        pinned = self._assignments.get(subject)
        if pinned is not None:
            return pinned
        if len(self._partitions) == 1:
            return next(iter(self._partitions))
        index = bisect.bisect_left(self._points, stable_hash(subject))
        if index == len(self._points):  # wrap past the last point
            index = 0
        return self._owners[index]

    def describe(self, name: str) -> Dict[str, Any]:
        """Ring facts about partition *name* for health/status reporting.

        ``coverage`` is the fraction of the 32-bit hash ring the partition's
        points own (the "subject ranges owned" a fleet scheduler balances
        on); ``pinned`` lists subjects explicitly assigned to it.
        """
        if name not in self._partitions:
            raise ServiceError(f"unknown partition {name!r}")
        owned = 0
        for index, point in enumerate(self._points):
            if self._owners[index] != name:
                continue
            previous = self._points[index - 1] if index else self._points[-1] - _RING_SPAN
            owned += point - previous
        if len(self._partitions) == 1:
            owned = _RING_SPAN
        return {
            "address": self._partitions[name],
            "virtual_nodes": self._virtual_nodes,
            "coverage": round(owned / _RING_SPAN, 6),
            "pinned": sorted(
                subject for subject, pin in self._assignments.items() if pin == name
            ),
        }

    # ------------------------------------------------------------------ #
    # Successor maps
    # ------------------------------------------------------------------ #
    def with_assignment(self, subject: str, partition: str) -> "PartitionMap":
        """A successor map (version + 1) pinning *subject* to *partition*."""
        if partition not in self._partitions:
            raise ServiceError(f"cannot pin {subject!r} to unknown partition {partition!r}")
        assignments = dict(self._assignments)
        assignments[subject_name(subject)] = partition
        return PartitionMap(
            self._partitions,
            version=self._version + 1,
            virtual_nodes=self._virtual_nodes,
            assignments=assignments,
        )

    def with_partitions(self, partitions: Dict[str, str]) -> "PartitionMap":
        """A successor map (version + 1) over a different partition set.

        Pins whose partition survives are kept; pins to departed partitions
        are dropped (those subjects fall back to the ring).
        """
        kept = {
            subject: name
            for subject, name in self._assignments.items()
            if name in partitions
        }
        return PartitionMap(
            partitions,
            version=self._version + 1,
            virtual_nodes=self._virtual_nodes,
            assignments=kept,
        )

    # ------------------------------------------------------------------ #
    # Serialization
    # ------------------------------------------------------------------ #
    def to_wire(self) -> Dict[str, Any]:
        """The JSON-ready form carried in health documents and map files."""
        return {
            "version": self._version,
            "virtual_nodes": self._virtual_nodes,
            "partitions": dict(self._partitions),
            "assignments": dict(self._assignments),
        }

    @classmethod
    def from_wire(cls, payload: Dict[str, Any]) -> "PartitionMap":
        """Rebuild (and re-validate) a map from :meth:`to_wire` output."""
        if not isinstance(payload, dict):
            raise ServiceError(f"a partition map document must be an object, got {payload!r}")
        try:
            return cls(
                payload["partitions"],
                version=payload.get("version", 1),
                virtual_nodes=payload.get("virtual_nodes", DEFAULT_VIRTUAL_NODES),
                assignments=payload.get("assignments") or {},
            )
        except KeyError as exc:
            raise ServiceError(f"partition map document misses {exc.args[0]!r}") from None

    def save(self, path: str) -> None:
        """Write the map as a JSON file (the ``--map`` CLI artifact)."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_wire(), handle, indent=2, sort_keys=True)
            handle.write("\n")

    @classmethod
    def load(cls, path: str) -> "PartitionMap":
        """Read a map file written by :meth:`save`."""
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, ValueError) as exc:
            raise ServiceError(f"cannot load partition map from {path!r}: {exc}") from exc
        return cls.from_wire(payload)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PartitionMap(v{self._version}, partitions={sorted(self._partitions)}, "
            f"pins={len(self._assignments)})"
        )


class _ReadWriteLock:
    """Many concurrent routed requests, one exclusive resharder.

    Writer-preferring would risk starving decisions during a long handoff;
    this lock is deliberately simple: the writer waits for in-flight reads
    to drain, new reads wait while a write holds or waits is *not* enforced
    (no writer starvation in practice — reshards are rare and reads are
    milliseconds).
    """

    def __init__(self) -> None:
        self._condition = threading.Condition()
        self._readers = 0
        self._writing = False

    @contextmanager
    def read(self):
        with self._condition:
            while self._writing:
                self._condition.wait()
            self._readers += 1
        try:
            yield
        finally:
            with self._condition:
                self._readers -= 1
                if not self._readers:
                    self._condition.notify_all()

    @contextmanager
    def write(self):
        with self._condition:
            while self._writing or self._readers:
                self._condition.wait()
            self._writing = True
        try:
            yield
        finally:
            with self._condition:
                self._writing = False
                self._condition.notify_all()


class FabricRouter:
    """Routes the service protocol across a :class:`PartitionMap`'s fleet.

    Raw methods (``*_raw``) move wire-form payloads between the caller and
    the partitions without decode/re-encode round trips — they are what the
    standalone :class:`RouterServer` and the conformance harness use; the
    typed methods mirror :class:`~repro.service.client.ServiceClient`'s API
    for embedded client-side use.
    """

    def __init__(
        self,
        partition_map: PartitionMap,
        *,
        pool_size: int = 4,
        timeout: Optional[float] = 30.0,
        wire: str = "json",
        auth_token: Optional[str] = None,
    ) -> None:
        self._pool_size = pool_size
        self._timeout = timeout
        #: the framing the router *offers* its partitions.  ``"binary"``
        #: negotiates per partition connection — a JSON-only partition falls
        #: back transparently, so mixed fleets work during a rollout.
        self._wire = wire
        #: shared secret stamped onto every partition call, for fleets whose
        #: servers run with ``--auth-token``.
        self._auth_token = auth_token
        self._map = partition_map
        self._pools: Dict[str, ConnectionPool] = {}
        for name in partition_map.names:
            host, port = partition_map.address(name)
            self._pools[name] = ConnectionPool(
                host, port, size=pool_size, timeout=timeout, wire=wire, auth_token=auth_token
            )
        self._lock = _ReadWriteLock()
        # The router's metrics registry: the same single source of truth
        # `health`, the `metrics` op and the Prometheus endpoint read.
        registry = telemetry.MetricsRegistry()
        self._registry = registry
        self._counters = {
            "routed": registry.counter("repro_router_routed_total"),
            "fan_outs": registry.counter("repro_router_fan_outs_total"),
            "reshards": registry.counter("repro_router_reshards_total"),
            "subjects_moved": registry.counter("repro_router_subjects_moved_total"),
        }
        registry.gauge("repro_router_map_version", fn=lambda: self._map.version)
        registry.gauge("repro_router_partitions", fn=lambda: len(self._map.names))

    # ------------------------------------------------------------------ #
    # Plumbing
    # ------------------------------------------------------------------ #
    @property
    def partition_map(self) -> PartitionMap:
        """The currently installed map."""
        return self._map

    @property
    def metrics(self) -> telemetry.MetricsRegistry:
        """The router's metrics registry."""
        return self._registry

    def _bump(self, key: str, amount: int = 1) -> None:
        self._counters[key].inc(amount)

    def _call(self, name: str, op: str, **payload: Any) -> Any:
        pool = self._pools.get(name)
        if pool is None:
            raise ServiceError(f"no connection pool for partition {name!r}")
        trace = telemetry.active_trace()
        if trace is not None:
            # Forward the trace context: the partition's spans (op dispatch,
            # cache outcome, pipeline stages) come back in its response
            # envelope, and the client grafts them under this call span —
            # one connected tree across the process boundary.
            with telemetry.trace_span("router.call", partition=name, op=op) as span:
                payload.setdefault("tctx", trace.tctx(span.span_id))
                with pool.lease() as client:
                    return client.call(op, **payload)
        with pool.lease() as client:
            return client.call(op, **payload)

    def _fan_out(self, names: Sequence[str], call: Callable[[str], Any]) -> Dict[str, Any]:
        """Run *call* against every named partition concurrently.

        One thread per partition (fleets are small); the first failure, in
        deterministic name order, is re-raised after every thread joined —
        a scatter never leaks a half-finished worker.
        """
        names = list(names)
        if len(names) == 1:
            return {names[0]: call(names[0])}
        self._bump("fan_outs")
        results: Dict[str, Any] = {}
        failures: Dict[str, BaseException] = {}
        # The scatter span: worker threads re-activate the caller's trace
        # (thread-local state does not follow a Thread) and parent their
        # per-partition call spans to this span, so the gathered tree shows
        # the fan-out as one node with N concurrent children.
        trace = telemetry.active_trace()
        with telemetry.trace_span("router.fan_out", partitions=len(names)) as fan_span:
            parent_id = fan_span.span_id if trace is not None else None

            def run(name: str) -> None:
                try:
                    if trace is not None:
                        with telemetry.activated(trace, parent_id):
                            results[name] = call(name)
                    else:
                        results[name] = call(name)
                except BaseException as exc:  # noqa: BLE001 - re-raised below
                    failures[name] = exc

            threads = [
                threading.Thread(
                    target=run, args=(name,), name=f"ltam-fabric-{name}", daemon=True
                )
                for name in names
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        if failures:
            raise failures[sorted(failures)[0]]
        return results

    def close(self) -> None:
        """Close every partition pool."""
        for pool in self._pools.values():
            pool.close()

    def __enter__(self) -> "FabricRouter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Raw routed ops (wire-form in, wire-form out)
    # ------------------------------------------------------------------ #
    def decide_raw(self, request: Dict[str, Any], *, trace: bool = False) -> Dict[str, Any]:
        subject = str(request.get("subject"))
        with self._lock.read():
            self._bump("routed")
            return self._call(self._map.owner(subject), "decide", request=request, trace=trace)

    def enforce_raw(self, request: Dict[str, Any], *, trace: bool = False) -> Dict[str, Any]:
        subject = str(request.get("subject"))
        with self._lock.read():
            self._bump("routed")
            return self._call(self._map.owner(subject), "enforce", request=request, trace=trace)

    def observe_raw(self, record: Sequence[Any]) -> Dict[str, Any]:
        if not isinstance(record, (list, tuple)) or len(record) != 4:
            raise ProtocolError(f"a movement record must be a 4-item array, got {record!r}")
        with self._lock.read():
            self._bump("routed")
            return self._call(self._map.owner(str(record[1])), "observe", record=list(record))

    def decide_many_raw(
        self, requests: Sequence[Dict[str, Any]], *, trace: bool = False
    ) -> List[Dict[str, Any]]:
        """Scatter a decision batch by owner; gather into the original order.

        Per-partition sub-batches keep the caller's relative order, so each
        partition's entry-budget accounting sees its subjects' requests in
        sequence exactly as a single server would.
        """
        requests = list(requests)
        if not requests:
            return []
        with self._lock.read():
            owner_of = self._map.owner
            buckets: Dict[str, List[int]] = {}
            for index, request in enumerate(requests):
                buckets.setdefault(owner_of(str(request.get("subject"))), []).append(index)
            self._bump("routed")
            results = self._fan_out(
                sorted(buckets),
                lambda name: self._call(
                    name,
                    "decide_many",
                    requests=[requests[index] for index in buckets[name]],
                    trace=trace,
                ),
            )
        merged: List[Optional[Dict[str, Any]]] = [None] * len(requests)
        for name, indices in buckets.items():
            decisions = results[name].get("decisions", ())
            if len(decisions) != len(indices):
                raise ServiceError(
                    f"partition {name!r} answered {len(decisions)} decision(s) "
                    f"for {len(indices)} request(s)"
                )
            for index, decision in zip(indices, decisions):
                merged[index] = decision
        return merged  # type: ignore[return-value]

    def observe_batch_raw(
        self,
        records: Sequence[Sequence[Any]],
        *,
        mode: str = "monitor",
        wait: bool = False,
    ) -> Dict[str, Any]:
        """Scatter an ingest batch by owner, preserving per-partition order.

        The merged receipt sums the per-partition counters and keeps each
        partition's receipt under ``"partitions"``.
        """
        records = list(records)
        with self._lock.read():
            owner_of = self._map.owner
            buckets: Dict[str, List[Sequence[Any]]] = {}
            for record in records:
                if not isinstance(record, (list, tuple)) or len(record) != 4:
                    raise ProtocolError(
                        f"a movement record must be a 4-item array, got {record!r}"
                    )
                buckets.setdefault(owner_of(str(record[1])), []).append(list(record))
            if wait and not records:
                # A pure flush barrier must reach every partition, not none.
                for name in self._map.names:
                    buckets.setdefault(name, [])
            if not buckets:
                return {"accepted": 0, "submitted": 0, "written": 0, "dropped": 0,
                        "checkpoints": 0, "partitions": {}}
            self._bump("routed")
            receipts = self._fan_out(
                sorted(buckets),
                lambda name: self._call(
                    name, "observe_batch", records=buckets[name], mode=mode, wait=wait
                ),
            )
        merged: Dict[str, Any] = {"partitions": receipts}
        for key in ("accepted", "submitted", "written", "dropped", "checkpoints"):
            merged[key] = sum(int(receipt.get(key, 0)) for receipt in receipts.values())
        return merged

    def query_raw(self, text: str) -> Dict[str, Any]:
        """Evaluate a query statement across the fabric.

        Subject-scoped statements go to the subject's owner.  ``WHO IS IN``
        fans out and merges the disjoint occupant sets sorted — identical
        to a single server's answer.  Global ``VIOLATIONS`` fans out and
        merges on the full row tuple (a canonical order; a single server
        reports sink order, which coincides for time-distinct alerts).
        Layout-only statements (``ROUTE`` without ``FOR``) go to the first
        partition — every partition holds the full layout.
        """
        node = parse(text)
        with self._lock.read():
            subject = getattr(node, "subject", None)
            self._bump("routed")
            if subject is not None:
                return self._call(self._map.owner(subject), "query", text=text)
            if isinstance(node, WhoIsInQuery):
                results = self._fan_out(
                    self._map.names, lambda name: self._call(name, "query", text=text)
                )
                rows = sorted(
                    tuple(row) for result in results.values() for row in result.get("rows", ())
                )
                return {
                    "kind": "who_is_in",
                    "columns": ["subject"],
                    "rows": [list(row) for row in rows],
                    "scalar": None,
                }
            if isinstance(node, ViolationsQuery):
                results = self._fan_out(
                    self._map.names, lambda name: self._call(name, "query", text=text)
                )
                columns: List[str] = []
                rows = []
                for name in sorted(results):
                    result = results[name]
                    columns = columns or list(result.get("columns", ()))
                    rows.extend(tuple(row) for row in result.get("rows", ()))
                rows.sort()
                return {
                    "kind": "violations",
                    "columns": columns,
                    "rows": [list(row) for row in rows],
                    "scalar": None,
                }
            if isinstance(node, RouteQuery):
                # Layout-only: deterministic single partition.
                return self._call(self._map.names[0], "query", text=text)
            raise ServiceError(
                f"the router cannot answer {type(node).__name__} without a subject"
            )

    def checkpoint_raw(
        self, *, compact: bool = True, retain: Optional[int] = None
    ) -> Dict[str, Any]:
        """Checkpoint every partition; the merged receipt sums the counters."""
        with self._lock.read():
            self._bump("routed")
            receipts = self._fan_out(
                self._map.names,
                lambda name: self._call(name, "checkpoint", compact=compact, retain=retain),
            )
        merged: Dict[str, Any] = {"partitions": receipts}
        for key in ("position", "archived", "subjects_inside", "pairs"):
            merged[key] = sum(int(receipt.get(key, 0)) for receipt in receipts.values())
        return merged

    def sync_raw(self) -> Dict[str, Any]:
        """The coherence barrier, fanned out to every partition — twice.

        One round only proves each partition drained the *hub's* backlog as
        of the moment its own ping was sequenced; a peer's occupancy publish
        flushed by that same round may still be in flight toward everyone
        else.  The first round therefore flushes every partition's pending
        publishes onto the hub (a partition's publishes are FIFO-ordered
        ahead of its ping, so its pong proves they were sequenced); the
        second round replays the hub's now-complete log to every partition.
        After both rounds, every capacity ledger holds every peer's latest
        occupancy vector — which is why callers treat ``sync`` as the
        fabric-wide capacity convergence point.
        """
        with self._lock.read():
            self._bump("routed")
            receipts = self._two_phase_sync(self._map.names)
        return {
            "partitions": receipts,
            "applied": sum(int(receipt.get("applied", 0)) for receipt in receipts.values()),
        }

    def _two_phase_sync(self, names: Sequence[str]) -> Dict[str, Any]:
        """Run the flush round then the delivery round; return round-two
        receipts (the ones that observed the fully-sequenced log).

        Callers must hold the map lock (read or write).
        """
        self._fan_out(names, lambda name: self._call(name, "sync"))
        return self._fan_out(names, lambda name: self._call(name, "sync"))

    def health(self) -> Dict[str, Any]:
        """The fabric health document: the map plus per-partition health.

        A partition that cannot be reached degrades the fabric status
        instead of failing the call — a fleet scheduler needs the surviving
        partitions' view most exactly when one is down.
        """
        with self._lock.read():
            current = self._map

            def probe(name: str) -> Dict[str, Any]:
                try:
                    return self._call(name, "health")
                except Exception as exc:  # noqa: BLE001 - reported, not raised
                    return {"status": "unreachable", "error": str(exc)}

            partitions = self._fan_out(current.names, probe)
        healthy = all(report.get("status") == "ok" for report in partitions.values())
        stats = {key: counter.value for key, counter in self._counters.items()}
        report = {
            "status": "ok" if healthy else "degraded",
            "role": "router",
            "map": {
                "version": current.version,
                "partitions": {name: current.describe(name) for name in current.names},
            },
            "partitions": partitions,
            "stats": stats,
        }
        ledger = self._ledger_verdict(partitions)
        if ledger is not None:
            report["ledger"] = ledger
        return report

    @staticmethod
    def _ledger_verdict(partitions: Dict[str, Any]) -> Optional[Dict[str, Any]]:
        """Fold per-partition ``ledger`` health sections into one verdict.

        The fabric is *converged* when every partition's replicated copy of
        every peer's occupancy vector matches that peer's own local vector
        (both zero-pruned).  Returns ``{"enabled": False}`` when no
        partition runs a ledger, ``None`` when a partition is unreachable
        (no verdict is honest then).
        """
        sections: Dict[str, Dict[str, Any]] = {}
        origins: Dict[str, str] = {}
        for name, health in partitions.items():
            if not isinstance(health, dict) or health.get("status") == "unreachable":
                return None
            section = health.get("ledger")
            if not isinstance(section, dict):
                continue
            sections[name] = section
            coherence = health.get("coherence") or {}
            origins[name] = str(coherence.get("replica") or name)
        if not sections:
            return {"enabled": False}
        if len(sections) != len(partitions):
            # A mixed fleet (some partitions without a ledger) cannot
            # enforce capacity globally — say so rather than half-agree.
            return {"enabled": False}

        def pruned(vector: Any) -> Dict[str, int]:
            if not isinstance(vector, dict):
                return {}
            return {str(k): int(v) for k, v in vector.items() if v}

        converged = True
        locations: set = set()
        for name, section in sections.items():
            local = pruned(section.get("local"))
            locations.update(local)
            for peer, peer_section in sections.items():
                if peer == name:
                    continue
                remote = peer_section.get("remote") or {}
                if pruned(remote.get(origins[name])) != local:
                    converged = False
        return {
            "enabled": True,
            "converged": converged,
            "locations": len(locations),
        }

    def metrics_raw(self) -> Dict[str, Any]:
        """The fabric's metrics: the router's own registry plus every
        partition's ``metrics`` answer (``repro top``'s one-call view).

        An unreachable partition reports an ``error`` entry instead of
        failing the scrape — exactly like :meth:`health`'s degraded
        tolerance, and for the same reason.
        """
        with self._lock.read():
            current = self._map

            def probe(name: str) -> Dict[str, Any]:
                try:
                    return self._call(name, "metrics")
                except Exception as exc:  # noqa: BLE001 - reported, not raised
                    return {"error": str(exc)}

            partitions = self._fan_out(current.names, probe)
        data = self._registry.collect()
        data["identity"] = {"role": "router"}
        return {"router": data, "partitions": partitions}

    def dispatch(self, message: Dict[str, Any]) -> Any:
        """Serve one decoded protocol envelope (the :class:`RouterServer` body)."""
        op = message.get("op")
        if op == "decide":
            return self.decide_raw(
                message.get("request") or {}, trace=message.get("trace", False)
            )
        if op == "decide_many":
            return {
                "decisions": self.decide_many_raw(
                    list(message.get("requests", ())), trace=message.get("trace", False)
                )
            }
        if op == "enforce":
            return self.enforce_raw(
                message.get("request") or {}, trace=message.get("trace", False)
            )
        if op == "observe":
            return self.observe_raw(message.get("record") or ())
        if op == "observe_batch":
            return self.observe_batch_raw(
                list(message.get("records", ())),
                mode=message.get("mode", "monitor"),
                wait=bool(message.get("wait", False)),
            )
        if op == "query":
            return self.query_raw(str(message.get("text", "")))
        if op == "checkpoint":
            return self.checkpoint_raw(
                compact=message.get("compact", True), retain=message.get("retain")
            )
        if op == "sync":
            return self.sync_raw()
        if op == "health":
            return self.health()
        if op == "metrics":
            return self.metrics_raw()
        if op == "reshard":
            # Live migration driven remotely: the new map arrives in wire
            # form and is re-validated before any subject moves.
            return self.reshard(PartitionMap.from_wire(message.get("map") or {}))
        raise ProtocolError(f"the router does not route op {op!r}")

    # ------------------------------------------------------------------ #
    # Typed client-side API
    # ------------------------------------------------------------------ #
    def decide(self, request: RequestLike, *, trace: bool = False) -> Decision:
        """Routed :meth:`~repro.service.client.ServiceClient.decide`."""
        request = _coerce_request(request)
        payload = self.decide_raw(request_to_dict(request), trace=trace)
        return decision_from_dict(payload, request=request)

    def decide_many(
        self, requests: Iterable[RequestLike], *, trace: bool = False
    ) -> List[Decision]:
        """Scatter-gathered ``decide_many``; results in the caller's order."""
        coerced = [_coerce_request(request) for request in requests]
        payload = self.decide_many_raw(
            [request_to_dict(request) for request in coerced], trace=trace
        )
        return [
            decision_from_dict(item, request=request)
            for item, request in zip(payload, coerced)
        ]

    def enforce(self, request: RequestLike, *, trace: bool = False) -> Decision:
        """Routed ``enforce`` (audited on the owning partition)."""
        request = _coerce_request(request)
        payload = self.enforce_raw(request_to_dict(request), trace=trace)
        return decision_from_dict(payload.get("decision"), request=request)

    @staticmethod
    def _record_wire(record: Any) -> List[Any]:
        """Accept a :class:`MovementRecord` or a bare 4-sequence."""
        if isinstance(record, MovementRecord):
            return record_to_wire(record)
        if isinstance(record, (list, tuple)) and len(record) == 4:
            time, subject, location, kind = record
            return [time, subject, location, getattr(kind, "value", kind)]
        raise ProtocolError(
            f"a movement record must be a MovementRecord or 4-item sequence, got {record!r}"
        )

    def observe(self, record: Any) -> List[Alert]:
        """Routed single observation; returns the owning partition's alerts."""
        payload = self.observe_raw(self._record_wire(record))
        return [alert_from_dict(item) for item in payload.get("alerts", ())]

    def observe_batch(
        self,
        records: Sequence[Any],
        *,
        mode: str = "monitor",
        wait: bool = False,
    ) -> Dict[str, Any]:
        """Scatter-gathered ingest; returns the merged receipt."""
        return self.observe_batch_raw(
            [self._record_wire(record) for record in records], mode=mode, wait=wait
        )

    def query(self, text: str) -> QueryResult:
        """Routed/fan-out query evaluation (see :meth:`query_raw`)."""
        return query_result_from_dict(self.query_raw(text))

    def checkpoint(self, *, compact: bool = True, retain: Optional[int] = None) -> Dict[str, Any]:
        """Checkpoint the whole fabric (see :meth:`checkpoint_raw`)."""
        return self.checkpoint_raw(compact=compact, retain=retain)

    def sync(self) -> Dict[str, Any]:
        """Coherence barrier across every partition (see :meth:`sync_raw`)."""
        return self.sync_raw()

    # ------------------------------------------------------------------ #
    # Live migration
    # ------------------------------------------------------------------ #
    def reshard(self, new_map: PartitionMap) -> Dict[str, Any]:
        """Install *new_map*, migrating exactly the remapped subjects.

        Holds the map exclusively (in-flight routed requests drain first;
        new ones wait), then per remapped subject group:

        1. ``export_subjects`` on the source — a flush barrier server-side,
           so the bundle holds every record any client ever landed;
        2. ``import_archive`` on the destination — the archived slice plus
           the subjects' alert history;
        3. the live-log slice ships through ``observe_batch`` in ``record``
           mode (landing like native ingest, no re-raised alerts), waited;
        4. ``forget_subjects`` on the source — records, projection state,
           alerts and cached decisions for the touched locations all go;
        5. ``sync`` on the destination — the PR 5 cutover barrier: its
           projection and cache reflect the import before any request is
           routed by the new map.

        A failure mid-handoff raises with the old map still installed; the
        step order never loses state (the source forgets only after the
        destination confirmed the import and the live replay).
        """
        with self._lock.write():
            current = self._map
            if new_map.version <= current.version:
                raise ServiceError(
                    f"reshard needs a newer map: held v{current.version}, "
                    f"offered v{new_map.version}"
                )
            for name in new_map.names:
                if name not in self._pools:
                    host, port = new_map.address(name)
                    self._pools[name] = ConnectionPool(
                        host,
                        port,
                        size=self._pool_size,
                        timeout=self._timeout,
                        wire=self._wire,
                        auth_token=self._auth_token,
                    )
            # Plan: every subject a partition holds whose new owner differs.
            moves: Dict[Tuple[str, str], List[str]] = {}
            for name in current.names:
                held = self._call(name, "list_subjects").get("subjects", ())
                for subject in held:
                    target = new_map.owner(subject)
                    if target != name:
                        moves.setdefault((name, target), []).append(subject)
            moved: List[str] = []
            for (source, target), subjects in sorted(moves.items()):
                bundle = self._call(source, "export_subjects", subjects=subjects)
                self._call(
                    target,
                    "import_archive",
                    records=bundle.get("archived", ()),
                    alerts=bundle.get("alerts", ()),
                    sessions=bundle.get("sessions", ()),
                    archived_through=bundle.get("archived_through"),
                )
                live = bundle.get("live", ())
                if live:
                    self._call(
                        target, "observe_batch", records=list(live), mode="record", wait=True
                    )
                self._call(source, "forget_subjects", subjects=subjects)
                self._call(target, "sync")
                moved.extend(subjects)
            self._map = new_map
            for name in list(self._pools):
                if name not in new_map.partitions:
                    self._pools.pop(name).close()
            # Reconcile the capacity ledgers before the new map serves: the
            # handoff republished occupancy on both sides of every move
            # (forget on the source, import on the target), and the
            # two-phase barrier delivers those vectors fleet-wide so a
            # moved subject's stay is counted exactly once.
            self._two_phase_sync(new_map.names)
            self._bump("reshards")
            self._bump("subjects_moved", len(moved))
            return {
                "version": new_map.version,
                "moved": len(moved),
                "subjects": sorted(moved),
                "transfers": {
                    f"{source}->{target}": len(subjects)
                    for (source, target), subjects in sorted(moves.items())
                },
            }


class _RouterConnection:
    """One router client's session: its negotiated framing."""

    __slots__ = ("wire", "pending_wire", "decoder")

    def __init__(self) -> None:
        self.wire: str = wireformat.JSON
        self.pending_wire: Optional[str] = None
        self.decoder: Optional[wireformat.Decoder] = None

    def apply_pending_upgrade(self) -> None:
        if self.pending_wire is not None:
            self.wire = self.pending_wire
            self.pending_wire = None
            self.decoder = wireformat.Decoder()


class RouterServer(AsyncServiceHost):
    """A standalone ``repro route`` process: the router behind a socket.

    Speaks the same negotiated protocol as :class:`~repro.service.server
    .LtamServer` — NDJSON until a client's ``hello`` upgrades its
    connection to the binary framing — so an unmodified
    :class:`~repro.service.client.ServiceClient` (or pool, or remote
    PDP/PEP facade) pointed at the router sees one logical server whose
    capacity happens to be a fleet.  The client-facing framing and the
    router→partition framing are independent: each partition pool
    negotiates its own (see :class:`FabricRouter`'s ``wire``).  Every op
    does socket I/O toward the partitions, so dispatch always runs in the
    default executor — the loop only frames and schedules.
    """

    _what = "the router"
    _thread_name = "ltam-router"

    def __init__(
        self,
        router: FabricRouter,
        host: str = "127.0.0.1",
        port: int = DEFAULT_ROUTER_PORT,
        *,
        frame_limit: int = DEFAULT_FRAME_LIMIT,
        wire_format: str = wireformat.BINARY,
        max_connections: Optional[int] = None,
        slow_request_ms: Optional[float] = None,
        auth_token: Optional[str] = None,
    ) -> None:
        super().__init__(host, port, frame_limit=frame_limit, max_connections=max_connections)
        if wire_format not in (wireformat.BINARY, wireformat.JSON):
            raise ServiceError(
                f"unknown wire format {wire_format!r}; expected 'binary' or 'json'"
            )
        self._binary_enabled = wire_format == wireformat.BINARY
        self._router = router
        self._slow_request_ms = slow_request_ms
        self._auth_token = auth_token
        registry = router.metrics
        self._auth_refused = registry.counter("repro_auth_refused_total")
        self._op_latency = {
            op: registry.histogram("repro_op_latency_seconds", op=op)
            for op in ("decide", "decide_many", "enforce", "observe", "observe_batch",
                       "query", "checkpoint", "sync", "health", "metrics", "hello", "reshard")
        }
        self._op_errors = registry.counter("repro_op_errors_total")
        self._slow_sampled = registry.counter("repro_slow_requests_total")
        registry.gauge("repro_connections_live", fn=lambda: self._live_connections)
        registry.gauge("repro_connections_max", fn=lambda: self._max_connections or 0)
        registry.gauge("repro_connections_busy_refused", fn=lambda: self._busy_refused)

    @property
    def router(self) -> FabricRouter:
        """The routing core this process serves."""
        return self._router

    @staticmethod
    def _encode_error(
        connection: _RouterConnection, message_id: Any, exc: BaseException
    ) -> bytes:
        envelope = {"id": message_id, "ok": False, "error": error_to_dict(exc)}
        if connection.wire == wireformat.BINARY:
            return wireformat.pack_frame(wireformat.encode_value(envelope))
        return encode_frame(envelope)

    async def _refuse_busy(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        # Same typed refusal as LtamServer's: connections start on NDJSON,
        # so the id-less error line surfaces client-side as ServiceBusyError.
        writer.write(
            self._encode_error(
                _RouterConnection(),
                None,
                ServiceBusyError(
                    f"the router is at its connection cap ({self._max_connections}); retry later"
                ),
            )
        )
        await writer.drain()

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        loop = asyncio.get_running_loop()
        connection = _RouterConnection()
        self._writers.add(writer)
        try:
            while True:
                oversize: Optional[ProtocolError] = None
                if connection.wire == wireformat.BINARY:
                    try:
                        frame = await wireformat.read_frame(reader, self._frame_limit)
                    except ProtocolError as exc:
                        oversize, frame = exc, None
                else:
                    try:
                        frame = await reader.readline()
                    except ValueError:
                        oversize = ProtocolError(
                            f"frame exceeds the {self._frame_limit}-byte limit"
                        )
                        frame = None
                if oversize is not None:
                    writer.write(self._encode_error(connection, None, oversize))
                    await writer.drain()
                    break
                if not frame:
                    break
                writer.write(await self._respond(loop, connection, frame))
                await writer.drain()
                connection.apply_pending_upgrade()
        except (ConnectionResetError, BrokenPipeError):
            pass
        except asyncio.CancelledError:
            pass
        finally:
            self._writers.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    def _dispatch(self, connection: _RouterConnection, message: Dict[str, Any]) -> Any:
        if message.get("op") == "hello":
            # Connection-level, answered by the router itself (a partition
            # never sees it): the client negotiates with *us*.
            chosen, result = wireformat.negotiate_hello(
                message, binary_enabled=self._binary_enabled
            )
            if chosen == wireformat.BINARY and connection.wire != wireformat.BINARY:
                connection.pending_wire = wireformat.BINARY
            return result
        return self._router.dispatch(message)

    def _traced_dispatch(
        self,
        trace: telemetry.Trace,
        connection: _RouterConnection,
        message: Dict[str, Any],
    ) -> Any:
        # Runs on the executor thread: activate the trace there so the
        # router.op span (and every router.call/router.fan_out span under
        # it) parents correctly across the thread hop.
        with telemetry.activated(trace):
            with telemetry.trace_span("router.op", op=message.get("op")):
                return self._dispatch(connection, message)

    async def _respond(
        self,
        loop: asyncio.AbstractEventLoop,
        connection: _RouterConnection,
        frame: bytes,
    ) -> bytes:
        binary = connection.wire == wireformat.BINARY
        message_id = None
        op = None
        trace: Optional[telemetry.Trace] = None
        echo_spans = False
        ok = True
        started = time.perf_counter()
        try:
            if binary:
                message = connection.decoder.decode(frame)
                if not isinstance(message, dict):
                    raise ProtocolError(
                        f"a frame must be an object, got {type(message).__name__}"
                    )
            else:
                message = decode_frame(frame)
            message_id = message.get("id")
            op = message.get("op")
            if (
                self._auth_token is not None
                and op != "hello"
                and message.get("auth") != self._auth_token
            ):
                self._auth_refused.inc()
                raise ServiceAuthError(
                    "this router requires a shared auth token (--auth-token) "
                    "and the frame did not carry it"
                )
            tctx = message.get("tctx")
            if tctx is not None:
                trace = telemetry.Trace.from_tctx(tctx)
                echo_spans = trace is not None
            if trace is None and self._slow_request_ms is not None:
                trace = telemetry.Trace()
            if trace is not None:
                result = await loop.run_in_executor(
                    None, self._traced_dispatch, trace, connection, message
                )
            else:
                result = await loop.run_in_executor(
                    None, self._dispatch, connection, message
                )
            envelope = {"id": message_id, "ok": True, "result": result}
            if echo_spans:
                envelope["spans"] = trace.spans_to_wire()
            if binary:
                return wireformat.pack_frame(wireformat.encode_value(envelope))
            return encode_frame(envelope)
        except Exception as exc:  # noqa: BLE001 - every error ships back typed
            ok = False
            return self._encode_error(connection, message_id, exc)
        finally:
            elapsed = time.perf_counter() - started
            latency = self._op_latency.get(op)
            if latency is not None:
                latency.observe(elapsed)
            if not ok:
                self._op_errors.inc()
            if (
                trace is not None
                and self._slow_request_ms is not None
                and elapsed * 1000.0 >= self._slow_request_ms
            ):
                self._slow_sampled.inc()
                telemetry.dump_slow(
                    _request_log,
                    op=op,
                    trace=trace,
                    duration_ms=elapsed * 1000.0,
                    threshold_ms=self._slow_request_ms,
                    wire=connection.wire,
                )
