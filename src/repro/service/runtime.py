"""The shared background-thread asyncio lifecycle of every service process.

:class:`LtamServer`, the :class:`~repro.service.bus.InvalidationBus` and the
fabric's :class:`~repro.service.fabric.RouterServer` are all the same shape:
an asyncio TCP listener run inside ``asyncio.run()`` on a daemon thread, a
synchronous ``start()`` that returns once the socket is bound (surfacing
bind failures as typed errors), and a ``stop()`` that signals the loop from
the caller's thread and joins.  :class:`AsyncServiceHost` is that shape,
extracted once:

* ``start()`` spawns the thread and blocks on the started-event; a thread
  that never binds within the timeout is *abandoned* — told to shut down if
  it ever does bind — so the caller is never left with an orphaned listener
  it believes dead;
* startup failures (bind errors, loop crashes before the socket exists) are
  re-raised from ``start()`` with the original exception chained; a crash
  *after* binding is kept and surfaced by :meth:`wait` — a supervisor must
  see a crash, not a clean exit with refused connections;
* ``stop()`` sets the loop's stop event thread-safely and joins; the serve
  coroutine aborts any registered client transports so remote peers (pools
  especially) observe the close instead of a half-open socket.

Subclasses implement :meth:`_handle_connection` (the per-connection
coroutine) and may override :meth:`_on_bound` (called on the loop thread
right after the listener is bound, before ``start()`` returns).
"""

from __future__ import annotations

import asyncio
import threading
from typing import Optional, Tuple

from repro.service.errors import ServiceError

__all__ = ["AsyncServiceHost", "DEFAULT_FRAME_LIMIT"]

#: Maximum frame size (bytes) — a 64k-record observe_batch fits comfortably.
DEFAULT_FRAME_LIMIT = 1 << 24

#: How long ``start()`` waits for the background thread to bind.
START_TIMEOUT = 10.0


class AsyncServiceHost:
    """A TCP service hosted on a background thread's asyncio loop.

    Parameters
    ----------
    host, port:
        Bind address; ``port=0`` picks a free port (see :attr:`address`).
    frame_limit:
        Per-connection stream buffer limit handed to the listener.
    max_connections:
        Per-listener cap on concurrently served connections; beyond it a
        new connection is answered with the subclass's busy frame
        (:meth:`_refuse_busy`) and closed, instead of queueing unbounded
        work behind a saturated loop.  ``None`` (default) is uncapped.

    Class attributes ``_what`` (how errors name the service, e.g. ``"the
    server"``) and ``_thread_name`` customize diagnostics.
    """

    _what = "the service"
    _thread_name = "ltam-service"

    def __init__(
        self,
        host: str,
        port: int,
        *,
        frame_limit: int = DEFAULT_FRAME_LIMIT,
        max_connections: Optional[int] = None,
    ) -> None:
        if max_connections is not None and (
            not isinstance(max_connections, int)
            or isinstance(max_connections, bool)
            or max_connections < 1
        ):
            raise ServiceError(
                f"max_connections must be a positive integer, got {max_connections!r}"
            )
        self._host = host
        self._port = port
        self._frame_limit = frame_limit
        self._max_connections = max_connections
        self._live_connections = 0
        self._busy_refused = 0
        self._address: Optional[Tuple[str, int]] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._writers: set = set()
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self._crash: Optional[BaseException] = None
        self._abandoned = False

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)``; available once started."""
        if self._address is None:
            raise ServiceError(f"{self._what} has not been started")
        return self._address

    @property
    def started(self) -> bool:
        """Whether the service is currently running."""
        return self._thread is not None

    @property
    def busy_refused(self) -> int:
        """How many connections the cap has turned away since start."""
        return self._busy_refused

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def start(self):
        """Start serving on a background thread; returns once bound.

        A stopped service can be started again (fresh bind; with ``port=0``
        the new ephemeral port is reported by :attr:`address`).
        """
        if self._thread is not None:
            raise ServiceError(f"{self._what} was already started")
        self._started.clear()
        self._startup_error = None
        self._crash = None
        self._abandoned = False
        self._address = None
        self._thread = threading.Thread(target=self._run, name=self._thread_name, daemon=True)
        self._thread.start()
        if not self._started.wait(timeout=START_TIMEOUT):
            # The thread may still bind later; tell it to shut down instead
            # of leaving an orphaned listener the caller believes dead.
            self._abandoned = True
            self._signal_stop()
            self._thread = None
            raise ServiceError(
                f"{self._what} did not start within {START_TIMEOUT:.0f} seconds"
            )
        if self._startup_error is not None:
            error = self._startup_error
            self._thread.join(timeout=5)
            self._thread = None
            raise ServiceError(f"{self._what} failed to start: {error}") from error
        return self

    def stop(self) -> None:
        """Stop serving and join the background thread."""
        if self._thread is None:
            return
        self._signal_stop()
        self._thread.join(timeout=10)
        self._thread = None

    def _signal_stop(self) -> None:
        if self._loop is not None and self._stop_event is not None:
            try:
                self._loop.call_soon_threadsafe(self._stop_event.set)
            except RuntimeError:  # loop already closed
                pass

    def wait(self) -> None:
        """Block until the service stops (for foreground CLI serving).

        Raises :class:`ServiceError` if the serve loop died on an
        unexpected exception — a supervisor must see a crash, not a clean
        exit with refused connections.
        """
        if self._thread is not None:
            while self._thread.is_alive():
                self._thread.join(timeout=0.5)
        if self._crash is not None:
            raise ServiceError(f"{self._what} crashed: {self._crash}") from self._crash

    def __enter__(self):
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    # ------------------------------------------------------------------ #
    # The background thread
    # ------------------------------------------------------------------ #
    def _run(self) -> None:
        try:
            asyncio.run(self._serve())
        except BaseException as exc:  # noqa: BLE001 - surfaced via start()/wait()
            if self._address is None:
                self._startup_error = exc  # never bound: a startup failure
            else:
                self._crash = exc  # died mid-serve: surfaced by wait()
        finally:
            self._started.set()

    async def _serve(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        self._writers = set()
        server = await asyncio.start_server(
            self._accept_connection, self._host, self._port, limit=self._frame_limit
        )
        self._address = server.sockets[0].getsockname()[:2]
        self._on_bound()
        self._started.set()
        if self._abandoned:  # start() gave up while we were binding
            server.close()
            await server.wait_closed()
            return
        async with server:
            await self._stop_event.wait()
            # Closing the listener is not enough: accepted connections would
            # keep their sockets half-open (the loop exits before their
            # transports run the close), so clients — pools especially —
            # could not tell this service is gone.  Abort them and give the
            # loop one tick to run the connection_lost callbacks.
            for writer in list(self._writers):
                transport = writer.transport
                if transport is not None:
                    transport.abort()
            await asyncio.sleep(0)

    def _on_bound(self) -> None:
        """Hook: runs on the loop thread right after the listener binds."""

    async def _accept_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        # Counters run on the one loop thread — no lock needed.
        if (
            self._max_connections is not None
            and self._live_connections >= self._max_connections
        ):
            self._busy_refused += 1
            try:
                await self._refuse_busy(reader, writer)
            except (ConnectionError, OSError):
                pass
            finally:
                writer.close()
                try:
                    await writer.wait_closed()
                except (ConnectionError, OSError):
                    pass
            return
        self._live_connections += 1
        try:
            await self._handle_connection(reader, writer)
        finally:
            self._live_connections -= 1

    async def _refuse_busy(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Hook: tell an over-cap connection it was refused (then closed).

        The default says nothing — the peer just sees an immediate close.
        Subclasses with a typed error channel send a ``busy`` frame.
        """

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        raise NotImplementedError
