"""Blocking clients for the authorization service.

Three layers, lowest first:

* :class:`ServiceClient` — one socket, one request/response at a time
  (serialized on an internal lock), typed errors re-raised client-side;
* :class:`ConnectionPool` — a small LIFO pool of clients, so concurrent
  callers (decision threads, the remote ingestor's writer) don't serialize
  on one socket and broken connections are discarded transparently;
* :class:`RemotePdp` / :class:`RemotePep` — drop-in mirrors of the embedded
  :class:`~repro.api.pdp.DecisionPoint` and the observation side of
  :class:`~repro.api.pep.EnforcementPoint`, over a pool.

``RemotePep.ingestor()`` composes with the existing
:class:`~repro.storage.ingest.MovementIngestor`: tracker adapters
``submit()`` locally at line rate, the local writer thread groups records
into ``observe_batch`` frames, and a batch the *server* rejects surfaces on
the local flush as the same typed :class:`~repro.errors.IngestError` — with
the dropped records attached — that an embedded ingestor would raise.
"""

from __future__ import annotations

import itertools
import select
import socket
import threading
from contextlib import contextmanager
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.core.requests import AccessRequest
from repro.engine.alerts import Alert
from repro.engine.query.ast import QueryResult
from repro.api.decision import Decision
from repro.storage.ingest import (
    DEFAULT_MAX_LATENCY,
    DEFAULT_QUEUE_SIZE,
    CheckpointPolicy,
    MovementIngestor,
)
from repro.storage.movement_db import Checkpoint, MovementKind, MovementRecord
from repro.service import telemetry
from repro.service.errors import ProtocolError, ServiceConnectionError, ServiceError
from repro.service.protocol import (
    alert_from_dict,
    checkpoint_from_dict,
    decision_from_dict,
    decode_frame,
    encode_frame,
    error_from_dict,
    query_result_from_dict,
    record_to_wire,
    records_to_wire,
    request_to_dict,
)
from repro.service.runtime import DEFAULT_FRAME_LIMIT
from repro.service.server import DEFAULT_PORT
from repro.service.wire import (
    BINARY,
    JSON,
    WIRE_VERSION,
    Decoder,
    Encoder,
    frame_length,
    pack_frame,
)

__all__ = ["ServiceClient", "ConnectionPool", "RemotePdp", "RemotePep"]

#: Anything the remote decide APIs accept as a request.
RequestLike = Union[AccessRequest, Tuple[int, str, str]]

#: Default local batch size for the remote ingestor (one wire frame each).
DEFAULT_REMOTE_BATCH_SIZE = 4096


def _coerce_request(request: RequestLike) -> AccessRequest:
    if isinstance(request, AccessRequest):
        return request
    if isinstance(request, tuple) and len(request) == 3:
        time, subject, location = request
        return AccessRequest(time, subject, location)
    raise ProtocolError(
        f"cannot interpret {request!r} as an access request; "
        "pass an AccessRequest or a (time, subject, location) triple"
    )


class ServiceClient:
    """One blocking connection to an :class:`~repro.service.server.LtamServer`.

    Thread-safe: concurrent calls serialize on an internal lock (use a
    :class:`ConnectionPool` when callers should not wait on each other).
    Typed server errors re-raise as their library classes.

    *wire* selects the framing: ``"json"`` (NDJSON, the historical
    protocol), or ``"binary"`` to negotiate the compact length-prefixed
    framing of :mod:`repro.service.wire` via a ``hello`` round trip —
    falling back to NDJSON transparently when the server is JSON-only or
    predates negotiation entirely, so there is no flag day.  ``"auto"``
    is an alias of ``"binary"``.  Check :attr:`wire` for the outcome.

    *auth_token* is stamped onto every request frame as the ``auth``
    field, for servers/routers started with ``--auth-token``; without it
    such a listener answers each frame with a typed
    :class:`~repro.service.errors.ServiceAuthError`.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        *,
        timeout: Optional[float] = 30.0,
        wire: str = "json",
        frame_limit: int = DEFAULT_FRAME_LIMIT,
        auth_token: Optional[str] = None,
    ) -> None:
        if wire not in (JSON, BINARY, "auto"):
            raise ServiceError(
                f"unknown wire format {wire!r}; expected 'binary', 'json' or 'auto'"
            )
        self._auth_token = auth_token
        self._address = (host, port)
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        self._wire = JSON
        self._frame_limit = frame_limit
        self._encoder: Optional[Encoder] = None
        self._decoder: Optional[Decoder] = None
        try:
            self._sock: Optional[socket.socket] = socket.create_connection(
                self._address, timeout=timeout
            )
        except OSError as exc:
            raise ServiceConnectionError(f"cannot connect to {host}:{port}: {exc}") from exc
        self._reader = self._sock.makefile("rb")
        if wire != JSON:
            self._negotiate_binary()

    # ------------------------------------------------------------------ #
    # Transport
    # ------------------------------------------------------------------ #
    @property
    def address(self) -> Tuple[str, int]:
        """The ``(host, port)`` this client talks to."""
        return self._address

    @property
    def wire(self) -> str:
        """The negotiated framing: ``"binary"`` or ``"json"``."""
        return self._wire

    def _negotiate_binary(self) -> None:
        """One ``hello`` round trip; a refusal of any kind stays NDJSON.

        Transport failures still raise — a dead server is not "a server
        that prefers JSON" — but a typed error (a pre-negotiation server's
        ``unknown op 'hello'``) or a ``{"wire": "json"}`` answer both mean
        the peer speaks NDJSON only, and this client keeps working.
        """
        try:
            result = self.call("hello", wire=[BINARY], version=WIRE_VERSION)
        except ServiceConnectionError:
            raise
        except ServiceError:
            return  # a pre-negotiation server: NDJSON is the protocol
        if isinstance(result, dict) and result.get("wire") == BINARY:
            # The server switches after writing the hello response, so the
            # very next frame each way is binary.
            self._wire = BINARY
            self._encoder = Encoder()
            self._decoder = Decoder()

    def _read_frame_locked(self) -> bytes:
        """Read one length-prefixed frame; EOF mid-frame kills the client.

        A peer that vanishes between the length prefix and the body (or
        halfway through either) leaves the stream unrecoverable: unlike the
        NDJSON path, where a truncated line still terminates at EOF, a
        partial binary frame has no delimiter to resynchronize on.  The
        connection is closed and the failure surfaces as a transport error
        so pools discard it instead of re-leasing a desynchronized socket.
        """
        header = self._reader.read(4)
        if not header:
            self._close_locked()
            raise ServiceConnectionError("the server closed the connection")
        if len(header) != 4:
            self._close_locked()
            raise ServiceConnectionError(
                "the server closed the connection mid-frame (truncated length prefix)"
            )
        try:
            length = frame_length(header, self._frame_limit)
        except ProtocolError:
            self._close_locked()
            raise
        body = self._reader.read(length)
        if len(body) != length:
            self._close_locked()
            raise ServiceConnectionError(
                f"the server closed the connection mid-frame "
                f"(got {len(body)} of {length} body bytes)"
            )
        return body

    @property
    def closed(self) -> bool:
        """Whether the connection has been closed (by us or by a failure)."""
        return self._sock is None

    def alive(self) -> bool:
        """Probe the transport without a round trip.

        A pooled connection whose server restarted looks healthy until the
        first request explodes mid-lease; this peeks the socket instead: an
        idle healthy connection has nothing to read, a dead one is readable
        with EOF (and a desynchronized one has stray bytes — equally
        unusable).  :class:`ConnectionPool` calls this on checkout so a
        server restart costs a reconnect, not a failed request.
        """
        sock = self._sock
        if sock is None:
            return False
        try:
            readable, _, _ = select.select([sock], [], [], 0)
            if not readable:
                return True
            # Readable while idle: either EOF (peer closed) or stray data
            # (a desynchronized stream) — both mean the connection is done.
            return False
        except (OSError, ValueError):
            return False

    def close(self) -> None:
        """Close the connection (idempotent)."""
        with self._lock:
            self._close_locked()

    def _close_locked(self) -> None:
        if self._sock is not None:
            try:
                self._reader.close()
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def call(self, op: str, **payload: Any) -> Any:
        """One request/response round trip; returns the ``result`` payload.

        When a telemetry trace is active on the calling thread, the request
        carries its ``tctx`` (unless the caller supplied one) and any spans
        the server echoes back are grafted into the active trace — the
        remote work appears in the local span tree under the caller's
        current span.  With no active trace the frame is byte-identical to
        the pre-telemetry protocol.
        """
        trace = telemetry.active_trace()
        if trace is not None and "tctx" not in payload:
            payload["tctx"] = trace.tctx(telemetry.current_span_id())
        if self._auth_token is not None:
            payload["auth"] = self._auth_token
        message_id = next(self._ids)
        with self._lock:
            if self._sock is None:
                raise ServiceConnectionError("the client connection is closed")
            if self._wire == BINARY:
                frame = pack_frame(self._encoder.encode({"op": op, "id": message_id, **payload}))
                try:
                    self._sock.sendall(frame)
                except OSError as exc:
                    self._close_locked()
                    raise ServiceConnectionError(f"request failed: {exc}") from exc
                try:
                    body = self._read_frame_locked()
                except OSError as exc:
                    self._close_locked()
                    raise ServiceConnectionError(f"request failed: {exc}") from exc
                response = self._decoder.decode(body)
                if not isinstance(response, dict):
                    self._close_locked()
                    raise ProtocolError(
                        f"a response frame must be an object, got {type(response).__name__}"
                    )
            else:
                frame = encode_frame({"op": op, "id": message_id, **payload})
                try:
                    self._sock.sendall(frame)
                    line = self._reader.readline()
                except OSError as exc:
                    self._close_locked()
                    raise ServiceConnectionError(f"request failed: {exc}") from exc
                if not line:
                    self._close_locked()
                    raise ServiceConnectionError("the server closed the connection")
                if not line.endswith(b"\n"):
                    # EOF mid-line: the peer died while writing.  Decoding
                    # the torso would usually fail anyway, but surfacing the
                    # transport failure (not a parse error) is what tells a
                    # pool to discard the connection.
                    self._close_locked()
                    raise ServiceConnectionError(
                        "the server closed the connection mid-frame (truncated line)"
                    )
                response = decode_frame(line)
            if response.get("id") != message_id:
                if response.get("id") is None and not response.get("ok", True):
                    # A connection-level refusal (the capped listener's
                    # ``busy`` frame) is addressed to no request: surface
                    # the typed error, e.g. ServiceBusyError, not a
                    # desynchronization.
                    self._close_locked()
                    raise error_from_dict(response.get("error") or {})
                # A previous call was interrupted between send and read and
                # left its response buffered: the stream is desynchronized —
                # returning this response to the wrong caller would hand out
                # another request's decision.  Close instead.
                self._close_locked()
                raise ServiceConnectionError(
                    f"out-of-sync response (got id {response.get('id')!r}, "
                    f"expected {message_id!r}); connection dropped"
                )
        if response.get("ok"):
            spans = response.get("spans")
            if spans and trace is not None:
                trace.graft(spans)
            return response.get("result")
        raise error_from_dict(response.get("error") or {})

    # ------------------------------------------------------------------ #
    # Operations
    # ------------------------------------------------------------------ #
    def decide(self, request: RequestLike, *, trace: bool = False) -> Decision:
        """Remote :meth:`~repro.api.pdp.DecisionPoint.decide`.

        Traces are **elided by default** — the response carries outcome,
        reason, authorization and budget only, and the returned
        :class:`Decision`'s ``trace`` is empty.  Pass ``trace=True`` for
        the full per-stage trace (and the server-side request echo).
        """
        request = _coerce_request(request)
        payload = self.call("decide", request=request_to_dict(request), trace=trace)
        return decision_from_dict(payload, request=request)

    def decide_many(
        self, requests: Iterable[RequestLike], *, trace: bool = False
    ) -> List[Decision]:
        """Remote :meth:`~repro.api.pdp.DecisionPoint.decide_many` (one frame)."""
        coerced = [_coerce_request(r) for r in requests]
        payload = self.call(
            "decide_many",
            requests=[request_to_dict(r) for r in coerced],
            trace=trace,
        )
        return [
            decision_from_dict(item, request=request)
            for item, request in zip(payload.get("decisions", ()), coerced)
        ]

    def enforce(self, request: RequestLike, *, trace: bool = False) -> Decision:
        """Remote :meth:`~repro.api.pep.EnforcementPoint.enforce`.

        Unlike :meth:`decide`, the server audits the outcome (and alerts on
        denial); a decision served from the server's cache is re-audited
        with a ``CACHED`` marker carrying its originating cache generation.
        Trace elision never skips those obligations — it only trims the
        response.  Use :meth:`enforce_detail` to also learn whether the hit
        was cached.
        """
        return self.enforce_detail(request, trace=trace)[0]

    def enforce_detail(
        self, request: RequestLike, *, trace: bool = False
    ) -> Tuple[Decision, bool]:
        """Like :meth:`enforce`, returning ``(decision, was_cached)``."""
        request = _coerce_request(request)
        payload = self.call("enforce", request=request_to_dict(request), trace=trace)
        return (
            decision_from_dict(payload.get("decision"), request=request),
            bool(payload.get("cached")),
        )

    def sync(self) -> Dict[str, Any]:
        """The replica coherence barrier (see the server's ``sync`` op).

        Returns ``{"applied": n, "position": p, "high_water": h}``; after it
        returns, every mutation committed-and-published before the call is
        reflected in this server's decisions.
        """
        return self.call("sync")

    def observe(self, record: MovementRecord) -> List[Alert]:
        """Synchronous single observation through the server's PEP; returns alerts."""
        payload = self.call("observe", record=record_to_wire(record))
        return [alert_from_dict(item) for item in payload.get("alerts", ())]

    def observe_entry(self, time: int, subject: str, location: str) -> List[Alert]:
        """Remote :meth:`~repro.api.pep.EnforcementPoint.observe_entry`."""
        return self.observe(MovementRecord(time, subject, location, MovementKind.ENTER))

    def observe_exit(self, time: int, subject: str, location: str) -> List[Alert]:
        """Remote :meth:`~repro.api.pep.EnforcementPoint.observe_exit`."""
        return self.observe(MovementRecord(time, subject, location, MovementKind.EXIT))

    def observe_batch(
        self,
        records: Sequence[MovementRecord],
        *,
        mode: str = "monitor",
        wait: bool = False,
    ) -> Dict[str, Any]:
        """Ship a batch into the server's ingestor; returns the ingest receipt.

        With ``wait=True`` the call is a flush barrier: it returns only when
        everything submitted so far has reached storage, re-raising rejected
        batches as :class:`~repro.errors.IngestError` with their records.
        ``mode="record"`` is the raw log-shipping sink (no monitor/alerts).
        """
        return self.call("observe_batch", records=records_to_wire(records), mode=mode, wait=wait)

    def flush(self, *, mode: str = "monitor") -> Dict[str, Any]:
        """Barrier for previously shipped batches (an empty waiting batch)."""
        return self.observe_batch((), mode=mode, wait=True)

    def query(self, text: str) -> QueryResult:
        """Evaluate a query-language statement server-side."""
        return query_result_from_dict(self.call("query", text=text))

    def checkpoint(self, *, compact: bool = True, retain: Optional[int] = None) -> Checkpoint:
        """Flush pending ingest server-side, then checkpoint the movement store.

        With *retain*, the server additionally prunes the movement archive
        down to at most that many records — only when the checkpoint
        compacts (*retain* is ignored with ``compact=False``, matching
        :class:`~repro.storage.ingest.CheckpointPolicy`).
        """
        return checkpoint_from_dict(self.call("checkpoint", compact=compact, retain=retain))

    def health(self) -> Dict[str, Any]:
        """The server's health/stats document."""
        return self.call("health")

    # -- partition handoff (driven by the fabric's reshard) ------------- #
    def list_subjects(self) -> List[str]:
        """Every subject the server holds state for, sorted."""
        return list(self.call("list_subjects").get("subjects", ()))

    def export_subjects(self, subjects: Iterable[str]) -> Dict[str, Any]:
        """The raw handoff bundle for *subjects* (wire-form records/alerts).

        The export is a flush barrier server-side but removes nothing; pair
        with :meth:`forget_subjects` after the destination confirms.
        """
        return self.call("export_subjects", subjects=[str(s) for s in subjects])

    def import_archive(
        self,
        records: Sequence[Any],
        *,
        alerts: Sequence[Dict[str, Any]] = (),
        sessions: Sequence[Sequence[Any]] = (),
        archived_through: Optional[int] = None,
    ) -> Dict[str, Any]:
        """Hand the server migrated subjects' archived records and alerts.

        *records*, *alerts* and *sessions* are wire-form (as returned by
        :meth:`export_subjects`) — the router moves them between partitions
        without re-decoding.
        """
        return self.call(
            "import_archive",
            records=list(records),
            alerts=list(alerts),
            sessions=[list(session) for session in sessions],
            archived_through=archived_through,
        )

    def forget_subjects(self, subjects: Iterable[str]) -> Dict[str, Any]:
        """Drop migrated subjects from the server (records, state, alerts)."""
        return self.call("forget_subjects", subjects=[str(s) for s in subjects])


class ConnectionPool:
    """A small LIFO pool of :class:`ServiceClient` connections.

    Leased clients beyond *size* are created on demand and closed on
    release instead of pooled, so a burst never deadlocks; clients whose
    transport failed are discarded, not returned.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        *,
        size: int = 4,
        timeout: Optional[float] = 30.0,
        wire: str = "json",
        auth_token: Optional[str] = None,
    ) -> None:
        if size < 1:
            raise ProtocolError(f"pool size must be positive, got {size!r}")
        self._host = host
        self._port = port
        self._size = size
        self._timeout = timeout
        self._wire = wire
        self._auth_token = auth_token
        self._idle: List[ServiceClient] = []
        self._lock = threading.Lock()
        self._closed = False

    @contextmanager
    def lease(self):
        """Context manager handing out a connected client.

        Only transport failures discard the connection; a typed server
        error (a rejected batch, a query syntax error) completed its
        request/response cycle, so the connection stays pooled.

        Checkout runs a zero-round-trip liveness probe
        (:meth:`ServiceClient.alive`): connections killed by a server
        restart are discarded here instead of failing their next request —
        previously a restart surfaced as a :class:`ServiceConnectionError`
        whose timing depended on which pooled socket the lease happened to
        hand out.
        """
        client = None
        while True:
            with self._lock:
                if self._closed:
                    raise ServiceConnectionError("the connection pool is closed")
                client = self._idle.pop() if self._idle else None
            if client is None:
                break
            if client.alive():
                break
            client.close()  # a dead or desynchronized leftover; keep draining
            client = None
        if client is None:
            client = ServiceClient(
                self._host,
                self._port,
                timeout=self._timeout,
                wire=self._wire,
                auth_token=self._auth_token,
            )
        try:
            yield client
        except ServiceConnectionError:
            client.close()
            client = None
            raise
        finally:
            if client is not None:
                with self._lock:
                    if not self._closed and not client.closed and len(self._idle) < self._size:
                        self._idle.append(client)
                        client = None
                if client is not None:
                    client.close()

    def close(self) -> None:
        """Close every idle connection and refuse further leases."""
        with self._lock:
            self._closed = True
            idle, self._idle = self._idle, []
        for client in idle:
            client.close()

    def __enter__(self) -> "ConnectionPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class _Remote:
    """Shared pool plumbing of the remote PDP/PEP facades."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        *,
        pool: Optional[ConnectionPool] = None,
        pool_size: int = 4,
        timeout: Optional[float] = 30.0,
        wire: str = "json",
        auth_token: Optional[str] = None,
    ) -> None:
        self._owns_pool = pool is None
        self._pool = (
            pool
            if pool is not None
            else ConnectionPool(
                host, port, size=pool_size, timeout=timeout, wire=wire, auth_token=auth_token
            )
        )

    @property
    def pool(self) -> ConnectionPool:
        """The connection pool in use (shareable between facades)."""
        return self._pool

    def close(self) -> None:
        """Close the pool if this facade created it."""
        if self._owns_pool:
            self._pool.close()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class RemotePdp(_Remote):
    """The embedded :class:`~repro.api.pdp.DecisionPoint` API, over the wire.

    ``decide``/``decide_many`` signatures and :class:`Decision` results
    (traces included) match the embedded PDP; what differs is *where* the
    pipeline runs — and that the server may serve a cached decision, whose
    echoed request metadata (``request_id``) is the priming request's.
    """

    def decide(self, request: RequestLike, *, trace: bool = False) -> Decision:
        """Evaluate one request on the server (trace elided unless asked)."""
        with self._pool.lease() as client:
            return client.decide(request, trace=trace)

    def decide_many(
        self, requests: Iterable[RequestLike], *, trace: bool = False
    ) -> List[Decision]:
        """Evaluate a batch on the server (one frame, server-side batch path)."""
        with self._pool.lease() as client:
            return client.decide_many(requests, trace=trace)

    def health(self) -> Dict[str, Any]:
        """The server's health document (round-trip + liveness probe)."""
        with self._pool.lease() as client:
            return client.health()


class RemotePep(_Remote):
    """The observation side of the embedded PEP, over the wire.

    ``observe_entry``/``observe_exit`` are synchronous (alerts returned);
    ``observe_many`` ships one waited batch; :meth:`ingestor` returns a
    local :class:`~repro.storage.ingest.MovementIngestor` whose sink ships
    record frames — the fully streaming tracker-adapter path.
    """

    def enforce(self, request: RequestLike, *, trace: bool = False) -> Decision:
        """Remote :meth:`~repro.api.pep.EnforcementPoint.enforce`: the
        decision is audited (and alerted on denial) **server-side**; cache
        hits are re-audited with a ``CACHED`` generation marker."""
        with self._pool.lease() as client:
            return client.enforce(request, trace=trace)

    def observe_entry(self, time: int, subject: str, location: str) -> List[Alert]:
        """Observe one entry through the server's monitor; returns its alerts."""
        with self._pool.lease() as client:
            return client.observe_entry(time, subject, location)

    def observe_exit(self, time: int, subject: str, location: str) -> List[Alert]:
        """Observe one exit through the server's monitor; returns its alerts."""
        with self._pool.lease() as client:
            return client.observe_exit(time, subject, location)

    def observe_many(
        self, records: Sequence[MovementRecord], *, mode: str = "monitor"
    ) -> Dict[str, Any]:
        """Ship one batch and wait for it to land; returns the ingest receipt.

        Unlike the embedded ``observe_many`` this cannot return the alerts —
        they are raised (and audited) server-side; query them remotely with
        ``VIOLATIONS`` or read the receipt counts here.
        """
        with self._pool.lease() as client:
            return client.observe_batch(records, mode=mode, wait=True)

    def ingestor(
        self,
        *,
        mode: str = "monitor",
        batch_size: int = DEFAULT_REMOTE_BATCH_SIZE,
        max_latency: float = DEFAULT_MAX_LATENCY,
        queue_size: int = DEFAULT_QUEUE_SIZE,
        checkpoint_policy: Optional[CheckpointPolicy] = None,
    ) -> MovementIngestor:
        """A local streaming ingestor whose sink ships batches to the server.

        Each local group commit becomes one waited ``observe_batch`` frame;
        server-side rejections surface on the local ``flush()``/``close()``
        with the dropped records attached.  A *checkpoint_policy* here
        schedules **remote** checkpoints (the ``checkpoint`` op) from the
        local writer thread; retention still applies server-side.
        """
        pool = self._pool

        def ship(batch: Sequence[MovementRecord]) -> None:
            with pool.lease() as client:
                client.observe_batch(batch, mode=mode, wait=True)

        extra: Dict[str, Any] = {}
        if checkpoint_policy is not None:

            def remote_checkpoint() -> Checkpoint:
                with pool.lease() as client:
                    return client.checkpoint(
                        compact=checkpoint_policy.compact,
                        retain=checkpoint_policy.retain_archived,
                    )

            extra = {"checkpoint_policy": checkpoint_policy, "checkpoint": remote_checkpoint}
        return MovementIngestor(
            ship,
            batch_size=batch_size,
            max_latency=max_latency,
            queue_size=queue_size,
            **extra,
        )
