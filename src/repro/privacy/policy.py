"""Location-privacy release policies.

The paper's fifth claim: *"LTAM protects the location privacy of the users by
restricting the location information in the central control station and not
releasing it to other applications."*  This module makes that restriction
explicit: a :class:`ReleasePolicy` decides, per requesting application and
per subject, at which granularity a location observation may leave the
control station —

* ``EXACT`` — the primitive location (only for the security console itself);
* ``COMPOSITE`` — generalized to the containing composite location (e.g.
  "somewhere in SCE"), losing room-level precision;
* ``PRESENCE`` — only the fact that the subject is on the premises;
* ``DENY`` — nothing is released.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Optional, Tuple

from repro.errors import PrivacyError
from repro.core.subjects import subject_name
from repro.locations.location import location_name
from repro.locations.multilevel import LocationHierarchy

__all__ = ["Granularity", "ReleaseDecision", "ReleasePolicy"]


class Granularity(str, Enum):
    """Granularity at which location information may be released."""

    EXACT = "exact"
    COMPOSITE = "composite"
    PRESENCE = "presence"
    DENY = "deny"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


#: Ordering from most to least revealing, used when combining constraints.
_STRICTNESS = {
    Granularity.EXACT: 0,
    Granularity.COMPOSITE: 1,
    Granularity.PRESENCE: 2,
    Granularity.DENY: 3,
}


@dataclass(frozen=True)
class ReleaseDecision:
    """What a requesting application is allowed to learn."""

    granularity: Granularity
    released_value: Optional[str]

    @property
    def released(self) -> bool:
        """``True`` when any information at all is released."""
        return self.granularity is not Granularity.DENY


class ReleasePolicy:
    """Per-application, per-subject location release policy.

    The default granularity applies when neither an application-specific nor
    a subject-specific rule matches; when both match, the *stricter* of the
    two wins (a subject's opt-out cannot be overridden by a permissive
    application rule).
    """

    def __init__(
        self,
        hierarchy: LocationHierarchy,
        *,
        default: Granularity = Granularity.DENY,
    ) -> None:
        self._hierarchy = hierarchy
        self._default = Granularity(default)
        self._per_application: Dict[str, Granularity] = {}
        self._per_subject: Dict[str, Granularity] = {}

    # ------------------------------------------------------------------ #
    # Configuration
    # ------------------------------------------------------------------ #
    def allow_application(self, application: str, granularity: Granularity) -> None:
        """Set the granularity an application may receive."""
        if not application or application.strip() != application:
            raise PrivacyError(f"application name must be a non-empty trimmed string, got {application!r}")
        self._per_application[application] = Granularity(granularity)

    def restrict_subject(self, subject: str, granularity: Granularity) -> None:
        """Set the maximum granularity at which a subject's location may be released."""
        self._per_subject[subject_name(subject)] = Granularity(granularity)

    # ------------------------------------------------------------------ #
    # Decisions
    # ------------------------------------------------------------------ #
    def granularity_for(self, application: str, subject: str) -> Granularity:
        """The effective granularity for *application* asking about *subject*."""
        application_level = self._per_application.get(application, self._default)
        subject_level = self._per_subject.get(subject_name(subject))
        if subject_level is None:
            return application_level
        # The stricter (less revealing) of the two constraints wins.
        return max(application_level, subject_level, key=lambda g: _STRICTNESS[g])

    def release(self, application: str, subject: str, location: Optional[str]) -> ReleaseDecision:
        """Decide what *application* may learn about *subject* being at *location*.

        *location* is the primitive location observed by the control station,
        or ``None`` when the subject is not currently tracked.
        """
        granularity = self.granularity_for(application, subject)
        if granularity is Granularity.DENY:
            return ReleaseDecision(Granularity.DENY, None)
        if location is None:
            # Nothing is known; the only honest answer is absence.
            value = "absent" if granularity is not Granularity.DENY else None
            return ReleaseDecision(granularity, value)
        primitive = location_name(location)
        if granularity is Granularity.EXACT:
            return ReleaseDecision(granularity, primitive)
        if granularity is Granularity.COMPOSITE:
            return ReleaseDecision(granularity, self.generalize(primitive))
        return ReleaseDecision(Granularity.PRESENCE, "present")

    def generalize(self, location: str) -> str:
        """Generalize a primitive location to its containing composite."""
        primitive = location_name(location)
        if not self._hierarchy.is_primitive(primitive):
            raise PrivacyError(f"{primitive!r} is not a primitive location of the hierarchy")
        return self._hierarchy.graph_of(primitive).name
