"""Anonymization of movement traces for release outside the control station.

Complementing the per-request release policy, deployments occasionally need
to export whole movement histories (e.g. the SARS contact-tracing scenario of
the paper's introduction).  :class:`TraceAnonymizer` applies two standard
sanitizations before such an export:

* **pseudonymization** — subject names are replaced by stable, per-export
  pseudonyms so traces of the same person remain linkable inside one export
  but not across exports;
* **spatial generalization with k-anonymity suppression** — locations are
  generalized to their containing composite, and records whose
  (composite, time-bucket) group contains fewer than *k* distinct subjects
  are suppressed, so that no released record isolates an individual in a
  sparsely occupied area.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import PrivacyError
from repro.locations.multilevel import LocationHierarchy
from repro.storage.movement_db import MovementKind, MovementRecord

__all__ = ["AnonymizedRecord", "TraceAnonymizer"]


@dataclass(frozen=True)
class AnonymizedRecord:
    """One sanitized movement record ready for release."""

    time_bucket: int
    pseudonym: str
    composite: str
    kind: MovementKind


class TraceAnonymizer:
    """Sanitize movement traces before releasing them to other applications.

    Parameters
    ----------
    hierarchy:
        Used to generalize primitive locations to their containing composite.
    k:
        Minimum number of distinct subjects that must share a
        (composite, time-bucket) group for its records to be released.
    time_bucket:
        Width of the temporal generalization buckets, in chronons.
    salt:
        Export-specific salt mixed into the pseudonyms; change it per export
        to prevent cross-export linkage.
    """

    def __init__(
        self,
        hierarchy: LocationHierarchy,
        *,
        k: int = 2,
        time_bucket: int = 10,
        salt: str = "ltam",
    ) -> None:
        if k < 1:
            raise PrivacyError(f"k must be at least 1, got {k}")
        if time_bucket < 1:
            raise PrivacyError(f"time_bucket must be at least 1, got {time_bucket}")
        self._hierarchy = hierarchy
        self._k = k
        self._time_bucket = time_bucket
        self._salt = salt
        self._pseudonyms: Dict[str, str] = {}

    # ------------------------------------------------------------------ #
    # Building blocks
    # ------------------------------------------------------------------ #
    def pseudonym_for(self, subject: str) -> str:
        """Stable pseudonym of *subject* for this anonymizer instance."""
        if subject not in self._pseudonyms:
            digest = hashlib.sha256(f"{self._salt}:{subject}".encode("utf-8")).hexdigest()
            self._pseudonyms[subject] = f"user-{digest[:8]}"
        return self._pseudonyms[subject]

    def generalize_location(self, location: str) -> str:
        """Generalize a primitive location to its containing composite name."""
        if not self._hierarchy.is_primitive(location):
            raise PrivacyError(f"{location!r} is not a primitive location of the hierarchy")
        return self._hierarchy.graph_of(location).name

    def bucket(self, time: int) -> int:
        """The temporal bucket (bucket start time) containing *time*."""
        return (time // self._time_bucket) * self._time_bucket

    # ------------------------------------------------------------------ #
    # Export
    # ------------------------------------------------------------------ #
    def anonymize(self, records: Iterable[MovementRecord]) -> List[AnonymizedRecord]:
        """Sanitize *records*, applying generalization and k-anonymity suppression."""
        generalized: List[Tuple[AnonymizedRecord, str]] = []
        for record in records:
            sanitized = AnonymizedRecord(
                self.bucket(record.time),
                self.pseudonym_for(record.subject),
                self.generalize_location(record.location),
                record.kind,
            )
            generalized.append((sanitized, record.subject))

        # Count distinct subjects per (composite, bucket) group.
        group_subjects: Dict[Tuple[str, int], set] = {}
        for sanitized, original_subject in generalized:
            key = (sanitized.composite, sanitized.time_bucket)
            group_subjects.setdefault(key, set()).add(original_subject)

        released = [
            sanitized
            for sanitized, _ in generalized
            if len(group_subjects[(sanitized.composite, sanitized.time_bucket)]) >= self._k
        ]
        return released

    def suppression_rate(self, records: Sequence[MovementRecord]) -> float:
        """Fraction of records suppressed by :meth:`anonymize` (0.0 for empty input)."""
        records = list(records)
        if not records:
            return 0.0
        kept = len(self.anonymize(records))
        return 1.0 - kept / len(records)
