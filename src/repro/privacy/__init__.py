"""Location privacy: release policies and movement-trace anonymization."""

from repro.privacy.anonymizer import AnonymizedRecord, TraceAnonymizer
from repro.privacy.policy import Granularity, ReleaseDecision, ReleasePolicy

__all__ = [
    "Granularity",
    "ReleaseDecision",
    "ReleasePolicy",
    "AnonymizedRecord",
    "TraceAnonymizer",
]
