"""Temporal substrate: chronons, time intervals, interval sets, calendars.

This package implements the time model of Section 3.1 of the paper (chronons,
time units, time intervals) plus the normalized interval-set algebra used by
Algorithm 1 and a small periodic-expression vocabulary for realistic
authorization workloads.
"""

from repro.temporal.calendar import (
    CalendarScale,
    DailyWindow,
    PeriodicExpression,
    WeeklyWindow,
    business_hours,
    expand_all,
)
from repro.temporal.chronon import CHRONON, FOREVER, Clock, TimePoint, TimeUnit, is_time_point, validate_time_point
from repro.temporal.interval import TimeInterval
from repro.temporal.interval_set import IntervalSet

__all__ = [
    "CHRONON",
    "FOREVER",
    "Clock",
    "TimePoint",
    "TimeUnit",
    "is_time_point",
    "validate_time_point",
    "TimeInterval",
    "IntervalSet",
    "PeriodicExpression",
    "DailyWindow",
    "WeeklyWindow",
    "CalendarScale",
    "business_hours",
    "expand_all",
]
