"""Normalized sets of disjoint time intervals.

Algorithm 1 of the paper associates with every location an *overall grant
time* and an *overall departure time*, each of which "consists of a set of
time intervals".  :class:`IntervalSet` is that data structure: an immutable,
normalized (sorted, disjoint, maximally coalesced) collection of
:class:`~repro.temporal.interval.TimeInterval` values supporting the set
algebra the fixpoint algorithm needs (union, intersection, difference,
membership, emptiness and equality tests).
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from repro.errors import TemporalError
from repro.temporal.chronon import FOREVER, TimePoint
from repro.temporal.interval import TimeInterval

__all__ = ["IntervalSet"]

IntervalLike = Union[TimeInterval, Tuple[TimePoint, TimePoint]]


def _coerce(interval: IntervalLike) -> TimeInterval:
    if isinstance(interval, TimeInterval):
        return interval
    if isinstance(interval, tuple) and len(interval) == 2:
        return TimeInterval(interval[0], interval[1])
    raise TemporalError(f"cannot interpret {interval!r} as a time interval")


class IntervalSet:
    """An immutable union of disjoint, coalesced time intervals.

    The constructor accepts intervals in any order, overlapping or adjacent;
    they are normalized on construction so that two interval sets denoting the
    same set of chronons always compare equal.

    Examples
    --------
    >>> IntervalSet([(1, 5), (6, 9)]) == IntervalSet([(1, 9)])
    True
    >>> IntervalSet([(2, 35)]).union(IntervalSet([(20, 35)]))
    IntervalSet([2, 35])
    """

    __slots__ = ("_intervals",)

    def __init__(self, intervals: Iterable[IntervalLike] = ()) -> None:
        self._intervals: Tuple[TimeInterval, ...] = self._normalize(
            _coerce(i) for i in intervals
        )

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def _normalize(intervals: Iterable[TimeInterval]) -> Tuple[TimeInterval, ...]:
        items = sorted(intervals, key=lambda i: (i.start, 0 if i.is_unbounded else 1))
        merged: List[TimeInterval] = []
        for interval in items:
            if not merged:
                merged.append(interval)
                continue
            last = merged[-1]
            if last.meets_or_overlaps(interval):
                merged[-1] = last.union(interval)[0]
            else:
                merged.append(interval)
        return tuple(merged)

    @classmethod
    def empty(cls) -> "IntervalSet":
        """The empty interval set (the paper's ``null`` / ``φ``)."""
        return cls(())

    @classmethod
    def everything(cls, start: int = 0) -> "IntervalSet":
        """The interval set ``[start, ∞]`` covering all time from *start* on."""
        return cls([TimeInterval(start, FOREVER)])

    @classmethod
    def single(cls, start: TimePoint, end: TimePoint) -> "IntervalSet":
        """Interval set containing the single interval ``[start, end]``."""
        return cls([TimeInterval(start, end)])

    @classmethod
    def from_interval(cls, interval: Optional[TimeInterval]) -> "IntervalSet":
        """Interval set containing *interval*, or the empty set for ``None``."""
        if interval is None:
            return cls.empty()
        return cls([interval])

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def intervals(self) -> Tuple[TimeInterval, ...]:
        """The normalized, sorted, disjoint intervals."""
        return self._intervals

    @property
    def is_empty(self) -> bool:
        """``True`` if the set contains no chronon."""
        return not self._intervals

    @property
    def is_unbounded(self) -> bool:
        """``True`` if the set extends to :data:`FOREVER`."""
        return bool(self._intervals) and self._intervals[-1].is_unbounded

    @property
    def earliest(self) -> Optional[int]:
        """The earliest chronon in the set, or ``None`` if empty."""
        return self._intervals[0].start if self._intervals else None

    @property
    def latest(self) -> Optional[TimePoint]:
        """The latest chronon in the set (possibly ``FOREVER``), or ``None`` if empty."""
        return self._intervals[-1].end if self._intervals else None

    @property
    def total_size(self) -> TimePoint:
        """Total number of chronons covered, ``FOREVER`` if unbounded."""
        if self.is_unbounded:
            return FOREVER
        return sum(int(i.size) for i in self._intervals)

    def contains(self, time: int) -> bool:
        """Return ``True`` if the chronon *time* belongs to the set."""
        return any(interval.contains(time) for interval in self._intervals)

    __contains__ = contains

    def covers(self, other: "IntervalSet") -> bool:
        """Return ``True`` if every chronon of *other* is in this set."""
        return other.difference(self).is_empty

    def first_contained_time(self, not_before: int = 0) -> Optional[int]:
        """Earliest chronon >= *not_before* contained in the set, or ``None``."""
        for interval in self._intervals:
            if interval.is_unbounded or int(interval.end) >= not_before:
                return max(interval.start, not_before)
        return None

    # ------------------------------------------------------------------ #
    # Set algebra
    # ------------------------------------------------------------------ #
    def union(self, other: Union["IntervalSet", IntervalLike]) -> "IntervalSet":
        """Union with another interval set or a single interval."""
        other_set = other if isinstance(other, IntervalSet) else IntervalSet([other])
        return IntervalSet(self._intervals + other_set._intervals)

    def intersection(self, other: Union["IntervalSet", IntervalLike]) -> "IntervalSet":
        """Intersection with another interval set or a single interval."""
        other_set = other if isinstance(other, IntervalSet) else IntervalSet([other])
        pieces: List[TimeInterval] = []
        for a in self._intervals:
            for b in other_set._intervals:
                overlap = a.intersect(b)
                if overlap is not None:
                    pieces.append(overlap)
        return IntervalSet(pieces)

    def difference(self, other: Union["IntervalSet", IntervalLike]) -> "IntervalSet":
        """Chronons of this set that are not in *other*."""
        other_set = other if isinstance(other, IntervalSet) else IntervalSet([other])
        remaining: List[TimeInterval] = list(self._intervals)
        for b in other_set._intervals:
            next_remaining: List[TimeInterval] = []
            for a in remaining:
                next_remaining.extend(a.difference(b))
            remaining = next_remaining
        return IntervalSet(remaining)

    def complement(self, horizon_start: int = 0, horizon_end: TimePoint = FOREVER) -> "IntervalSet":
        """Chronons in ``[horizon_start, horizon_end]`` that are *not* in the set."""
        return IntervalSet([TimeInterval(horizon_start, horizon_end)]).difference(self)

    def shift(self, delta: int) -> "IntervalSet":
        """Translate every interval by *delta* chronons."""
        return IntervalSet(interval.shift(delta) for interval in self._intervals)

    def clamp(self, lo: int, hi: TimePoint) -> "IntervalSet":
        """Restrict the set to the window ``[lo, hi]``."""
        return self.intersection(TimeInterval(lo, hi))

    # Operator sugar ---------------------------------------------------- #
    def __or__(self, other: "IntervalSet") -> "IntervalSet":
        return self.union(other)

    def __and__(self, other: "IntervalSet") -> "IntervalSet":
        return self.intersection(other)

    def __sub__(self, other: "IntervalSet") -> "IntervalSet":
        return self.difference(other)

    # ------------------------------------------------------------------ #
    # Dunder protocol
    # ------------------------------------------------------------------ #
    def __iter__(self) -> Iterator[TimeInterval]:
        return iter(self._intervals)

    def __len__(self) -> int:
        return len(self._intervals)

    def __bool__(self) -> bool:
        return not self.is_empty

    def __eq__(self, other: object) -> bool:
        if isinstance(other, IntervalSet):
            return self._intervals == other._intervals
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._intervals)

    def __repr__(self) -> str:
        if self.is_empty:
            return "IntervalSet(φ)"
        body = ", ".join(str(i) for i in self._intervals)
        return f"IntervalSet({body})"

    # ------------------------------------------------------------------ #
    # Serialization helpers
    # ------------------------------------------------------------------ #
    def to_pairs(self) -> List[Tuple[TimePoint, Optional[int]]]:
        """Return ``(start, end)`` pairs with ``None`` standing for FOREVER."""
        return [
            (i.start, None if i.is_unbounded else int(i.end)) for i in self._intervals
        ]

    @classmethod
    def from_pairs(cls, pairs: Sequence[Tuple[int, Optional[int]]]) -> "IntervalSet":
        """Inverse of :meth:`to_pairs`."""
        return cls(
            TimeInterval(start, FOREVER if end is None else end) for start, end in pairs
        )
