"""Periodic temporal expressions.

The paper adopts TAM's chronon-based time model and leaves richer temporal
expressions to future work.  Real deployments of a building-security system
express authorizations such as *"weekdays, 09:00–17:00"*; this module provides
that vocabulary while staying within the discrete-chronon substrate: a
:class:`PeriodicExpression` expands to an :class:`~repro.temporal.interval_set.IntervalSet`
over a bounded horizon, which the rest of the library consumes unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.errors import TemporalError
from repro.temporal.interval import TimeInterval
from repro.temporal.interval_set import IntervalSet

__all__ = [
    "PeriodicExpression",
    "DailyWindow",
    "WeeklyWindow",
    "CalendarScale",
]


@dataclass(frozen=True)
class CalendarScale:
    """Mapping between calendar units and chronons.

    The default scale uses one chronon per minute, which keeps the worked
    examples readable (a day is 1440 chronons).
    """

    chronons_per_minute: int = 1

    def __post_init__(self) -> None:
        if self.chronons_per_minute <= 0:
            raise TemporalError("chronons_per_minute must be positive")

    @property
    def minute(self) -> int:
        return self.chronons_per_minute

    @property
    def hour(self) -> int:
        return 60 * self.minute

    @property
    def day(self) -> int:
        return 24 * self.hour

    @property
    def week(self) -> int:
        return 7 * self.day


class PeriodicExpression:
    """Base class for periodic temporal expressions.

    Subclasses implement :meth:`occurrences`, which yields the bounded
    intervals of the expression inside ``[horizon_start, horizon_end]``.
    """

    def occurrences(self, horizon_start: int, horizon_end: int) -> Iterable[TimeInterval]:
        raise NotImplementedError

    def expand(self, horizon_start: int, horizon_end: int) -> IntervalSet:
        """Expand the expression to an interval set over the given horizon."""
        if horizon_end < horizon_start:
            raise TemporalError(
                f"horizon end ({horizon_end}) precedes horizon start ({horizon_start})"
            )
        return IntervalSet(self.occurrences(horizon_start, horizon_end))


@dataclass(frozen=True)
class DailyWindow(PeriodicExpression):
    """A window that repeats every day, e.g. *every day 09:00–17:00*.

    Parameters
    ----------
    start_minute, end_minute:
        Minutes after midnight delimiting the window (inclusive start,
        inclusive end).  ``end_minute`` must not precede ``start_minute``.
    scale:
        Calendar scale translating minutes/days to chronons.
    """

    start_minute: int
    end_minute: int
    scale: CalendarScale = CalendarScale()

    def __post_init__(self) -> None:
        if not 0 <= self.start_minute <= self.end_minute:
            raise TemporalError(
                "daily window requires 0 <= start_minute <= end_minute, got "
                f"[{self.start_minute}, {self.end_minute}]"
            )
        if self.end_minute >= 24 * 60:
            raise TemporalError("daily window must end before minute 1440")

    def occurrences(self, horizon_start: int, horizon_end: int) -> Iterable[TimeInterval]:
        day = self.scale.day
        first_day = horizon_start // day
        last_day = horizon_end // day
        for day_index in range(first_day, last_day + 1):
            start = day_index * day + self.start_minute * self.scale.minute
            end = day_index * day + (self.end_minute + 1) * self.scale.minute - 1
            clipped = TimeInterval(max(start, 0), end).clamp(horizon_start, horizon_end)
            if clipped is not None:
                yield clipped


@dataclass(frozen=True)
class WeeklyWindow(PeriodicExpression):
    """A daily window restricted to selected days of the week.

    Day ``0`` is the first day of the simulation calendar (there is no
    assumption about which weekday chronon 0 falls on).
    """

    days_of_week: Tuple[int, ...]
    start_minute: int
    end_minute: int
    scale: CalendarScale = CalendarScale()

    def __post_init__(self) -> None:
        if not self.days_of_week:
            raise TemporalError("weekly window requires at least one day of week")
        if any(d < 0 or d > 6 for d in self.days_of_week):
            raise TemporalError("days of week must be in the range 0..6")
        if not 0 <= self.start_minute <= self.end_minute or self.end_minute >= 24 * 60:
            raise TemporalError(
                "weekly window requires 0 <= start_minute <= end_minute < 1440"
            )

    def occurrences(self, horizon_start: int, horizon_end: int) -> Iterable[TimeInterval]:
        day = self.scale.day
        wanted = set(self.days_of_week)
        first_day = horizon_start // day
        last_day = horizon_end // day
        for day_index in range(first_day, last_day + 1):
            if day_index % 7 not in wanted:
                continue
            start = day_index * day + self.start_minute * self.scale.minute
            end = day_index * day + (self.end_minute + 1) * self.scale.minute - 1
            clipped = TimeInterval(max(start, 0), end).clamp(horizon_start, horizon_end)
            if clipped is not None:
                yield clipped


def business_hours(
    days: Optional[Sequence[int]] = None,
    start_minute: int = 9 * 60,
    end_minute: int = 17 * 60 - 1,
    scale: CalendarScale = CalendarScale(),
) -> PeriodicExpression:
    """Convenience constructor for the common "business hours" expression.

    Defaults to days 0–4 (a five-day working week) between 09:00 and 16:59.
    """
    selected: Tuple[int, ...] = tuple(days) if days is not None else (0, 1, 2, 3, 4)
    return WeeklyWindow(selected, start_minute, end_minute, scale)


def expand_all(
    expressions: Iterable[PeriodicExpression], horizon_start: int, horizon_end: int
) -> IntervalSet:
    """Expand several periodic expressions and union the results."""
    result = IntervalSet.empty()
    for expression in expressions:
        result = result.union(expression.expand(horizon_start, horizon_end))
    return result


__all__ += ["business_hours", "expand_all"]
