"""Closed time intervals over discrete chronons.

A *time interval* in the paper (Section 3.1) is a set of consecutive time
units written ``[t_s, t_e]``.  Both endpoints are inclusive; the end point may
be :data:`~repro.temporal.chronon.FOREVER` to model the paper's ``∞``.

The binary UNION and INTERSECTION temporal operators of Section 4 are
implemented here as :meth:`TimeInterval.union` and
:meth:`TimeInterval.intersect`, with exactly the semantics of the paper:

* ``UNION([t0, t1], [t2, t3])`` returns ``[t0, t3]`` when ``t2 <= t1`` and the
  pair ``[t0, t1], [t2, t3]`` otherwise;
* ``INTERSECTION([t0, t1], [t2, t3])`` returns ``[t2, t1]`` when ``t2 <= t1``
  and ``NULL`` (``None`` here) otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

from repro.errors import InvalidIntervalError, TemporalError
from repro.temporal.chronon import FOREVER, TimePoint, is_time_point

__all__ = ["TimeInterval"]


@dataclass(frozen=True, order=True)
class TimeInterval:
    """A closed interval ``[start, end]`` of chronons.

    Parameters
    ----------
    start:
        First chronon contained in the interval (inclusive, finite).
    end:
        Last chronon contained in the interval (inclusive); may be
        :data:`FOREVER`.

    Raises
    ------
    InvalidIntervalError
        If the endpoints are not valid time points or ``start > end``.
    """

    start: int
    end: TimePoint

    def __post_init__(self) -> None:
        if not is_time_point(self.start) or self.start is FOREVER:
            raise InvalidIntervalError(
                f"interval start must be a finite non-negative integer, got {self.start!r}"
            )
        if not is_time_point(self.end):
            raise InvalidIntervalError(
                f"interval end must be a non-negative integer or FOREVER, got {self.end!r}"
            )
        if self.end is not FOREVER and self.end < self.start:
            raise InvalidIntervalError(
                f"interval end ({self.end}) precedes its start ({self.start})"
            )

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_tuple(cls, pair: Tuple[TimePoint, TimePoint]) -> "TimeInterval":
        """Build an interval from a ``(start, end)`` pair."""
        start, end = pair
        return cls(start, end)

    @classmethod
    def instant(cls, time: int) -> "TimeInterval":
        """Build a degenerate interval containing the single chronon *time*."""
        return cls(time, time)

    @classmethod
    def from_onwards(cls, start: int) -> "TimeInterval":
        """Build the open-ended interval ``[start, ∞]``."""
        return cls(start, FOREVER)

    # ------------------------------------------------------------------ #
    # Basic properties
    # ------------------------------------------------------------------ #
    @property
    def is_unbounded(self) -> bool:
        """``True`` if the interval extends to :data:`FOREVER`."""
        return self.end is FOREVER

    @property
    def size(self) -> TimePoint:
        """Number of time units in the interval (Section 3.1), ``FOREVER`` if unbounded."""
        if self.is_unbounded:
            return FOREVER
        return int(self.end) - self.start + 1

    def contains(self, time: int) -> bool:
        """Return ``True`` if the chronon *time* lies inside the interval."""
        if not is_time_point(time):
            raise TemporalError(f"not a valid time point: {time!r}")
        if time is FOREVER:
            return self.is_unbounded
        if self.is_unbounded:
            return time >= self.start
        return self.start <= time <= self.end

    __contains__ = contains

    def contains_interval(self, other: "TimeInterval") -> bool:
        """Return ``True`` if *other* is entirely inside this interval."""
        if other.start < self.start:
            return False
        if self.is_unbounded:
            return True
        if other.is_unbounded:
            return False
        return other.end <= self.end

    # ------------------------------------------------------------------ #
    # Relations
    # ------------------------------------------------------------------ #
    def overlaps(self, other: "TimeInterval") -> bool:
        """Return ``True`` if the two intervals share at least one chronon."""
        lo = max(self.start, other.start)
        hi = self.end if other.is_unbounded else (other.end if self.is_unbounded else min(self.end, other.end))
        if hi is FOREVER:
            return True
        return lo <= hi

    def is_adjacent_to(self, other: "TimeInterval") -> bool:
        """Return ``True`` if the intervals touch without overlapping.

        In discrete time ``[1, 5]`` and ``[6, 9]`` are adjacent: their union
        is the contiguous interval ``[1, 9]``.
        """
        if self.overlaps(other):
            return False
        first, second = (self, other) if self.start <= other.start else (other, self)
        if first.is_unbounded:
            return False
        return int(first.end) + 1 == second.start

    def meets_or_overlaps(self, other: "TimeInterval") -> bool:
        """Return ``True`` if the intervals overlap or are adjacent."""
        return self.overlaps(other) or self.is_adjacent_to(other)

    def precedes(self, other: "TimeInterval") -> bool:
        """Return ``True`` if this interval ends strictly before *other* starts."""
        if self.is_unbounded:
            return False
        return int(self.end) < other.start

    # ------------------------------------------------------------------ #
    # Operators (paper Section 4 semantics)
    # ------------------------------------------------------------------ #
    def intersect(self, other: "TimeInterval") -> Optional["TimeInterval"]:
        """Intersection of two intervals; ``None`` when they are disjoint.

        This implements the paper's INTERSECTION operator generalized to
        arbitrary argument order (the paper assumes ``t0 <= t2``).
        """
        start = max(self.start, other.start)
        if self.is_unbounded and other.is_unbounded:
            end: TimePoint = FOREVER
        elif self.is_unbounded:
            end = other.end
        elif other.is_unbounded:
            end = self.end
        else:
            end = min(self.end, other.end)
        if end is not FOREVER and end < start:
            return None
        return TimeInterval(start, end)

    def union(self, other: "TimeInterval") -> List["TimeInterval"]:
        """Union of two intervals, as a list of one or two disjoint intervals.

        Follows the paper's UNION operator: a single merged interval when the
        inputs overlap (or are adjacent in discrete time), otherwise the two
        inputs sorted by start.
        """
        if self.meets_or_overlaps(other):
            start = min(self.start, other.start)
            if self.is_unbounded or other.is_unbounded:
                end: TimePoint = FOREVER
            else:
                end = max(int(self.end), int(other.end))
            return [TimeInterval(start, end)]
        return sorted([self, other])

    def difference(self, other: "TimeInterval") -> List["TimeInterval"]:
        """Chronons of this interval that are not in *other* (0, 1 or 2 intervals)."""
        overlap = self.intersect(other)
        if overlap is None:
            return [self]
        pieces: List[TimeInterval] = []
        if overlap.start > self.start:
            pieces.append(TimeInterval(self.start, overlap.start - 1))
        if not overlap.is_unbounded:
            tail_start = int(overlap.end) + 1
            if self.is_unbounded:
                pieces.append(TimeInterval(tail_start, FOREVER))
            elif tail_start <= int(self.end):
                pieces.append(TimeInterval(tail_start, self.end))
        return pieces

    def shift(self, delta: int) -> "TimeInterval":
        """Translate the interval by *delta* chronons (may be negative)."""
        new_start = self.start + delta
        if new_start < 0:
            raise InvalidIntervalError(
                f"shifting {self} by {delta} would move its start before time 0"
            )
        new_end = self.end if self.is_unbounded else int(self.end) + delta
        return TimeInterval(new_start, new_end)

    def clamp(self, lo: int, hi: TimePoint) -> Optional["TimeInterval"]:
        """Restrict the interval to ``[lo, hi]``; ``None`` if nothing remains."""
        return self.intersect(TimeInterval(lo, hi))

    # ------------------------------------------------------------------ #
    # Iteration / formatting
    # ------------------------------------------------------------------ #
    def iter_chronons(self) -> Iterator[int]:
        """Iterate over the chronons of a bounded interval."""
        if self.is_unbounded:
            raise TemporalError("cannot enumerate the chronons of an unbounded interval")
        return iter(range(self.start, int(self.end) + 1))

    def to_tuple(self) -> Tuple[TimePoint, TimePoint]:
        """Return the interval as a plain ``(start, end)`` tuple."""
        return (self.start, self.end)

    def __str__(self) -> str:
        end = "∞" if self.is_unbounded else str(self.end)
        return f"[{self.start}, {end}]"
