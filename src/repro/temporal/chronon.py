"""Chronons, time points and the simulation clock.

Section 3.1 of the paper adopts the temporal model of Bertino et al.'s TAM:
*"A time unit is a chronon or a fixed number of chronons, where a chronon
refers to the smallest indivisible unit of time."*

The reproduction models time points as non-negative integers counted in
chronons.  Open-ended intervals (the paper writes ``[t, ∞]``) use the
:data:`FOREVER` sentinel, which compares greater than every finite time
point.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Union

from repro.errors import TemporalError

__all__ = [
    "FOREVER",
    "TimePoint",
    "is_time_point",
    "validate_time_point",
    "Clock",
    "TimeUnit",
]


class _Forever:
    """Sentinel representing positive temporal infinity.

    The sentinel is a singleton: every instantiation returns the same object,
    so identity comparison (``end is FOREVER``) is reliable even across
    pickling.
    """

    _instance: "_Forever | None" = None

    def __new__(cls) -> "_Forever":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __reduce__(self):
        return (_Forever, ())

    # Ordering: FOREVER is strictly greater than every int and equal to itself.
    def __lt__(self, other: object) -> bool:
        if isinstance(other, (int, _Forever)):
            return False
        return NotImplemented

    def __le__(self, other: object) -> bool:
        if isinstance(other, _Forever):
            return True
        if isinstance(other, int):
            return False
        return NotImplemented

    def __gt__(self, other: object) -> bool:
        if isinstance(other, _Forever):
            return False
        if isinstance(other, int):
            return True
        return NotImplemented

    def __ge__(self, other: object) -> bool:
        if isinstance(other, (int, _Forever)):
            return True
        return NotImplemented

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _Forever)

    def __hash__(self) -> int:
        return hash("repro.temporal.FOREVER")

    def __add__(self, other: object) -> "_Forever":
        if isinstance(other, (int, _Forever)):
            return self
        return NotImplemented

    __radd__ = __add__

    def __sub__(self, other: object) -> "_Forever":
        if isinstance(other, int):
            return self
        return NotImplemented

    def __repr__(self) -> str:
        return "FOREVER"

    def __str__(self) -> str:
        return "∞"


FOREVER = _Forever()
"""Singleton sentinel for the paper's ``∞`` endpoint."""

#: A time point is either a non-negative integer number of chronons or
#: :data:`FOREVER`.
TimePoint = Union[int, _Forever]


def is_time_point(value: object) -> bool:
    """Return ``True`` if *value* is a valid time point.

    A valid time point is a non-negative ``int`` (``bool`` is rejected even
    though it subclasses ``int``) or the :data:`FOREVER` sentinel.
    """
    if value is FOREVER:
        return True
    return isinstance(value, int) and not isinstance(value, bool) and value >= 0


def validate_time_point(value: object, *, name: str = "time point") -> TimePoint:
    """Validate *value* as a time point, raising :class:`TemporalError` otherwise."""
    if not is_time_point(value):
        raise TemporalError(
            f"{name} must be a non-negative integer number of chronons or "
            f"FOREVER, got {value!r}"
        )
    return value  # type: ignore[return-value]


@dataclass(frozen=True)
class TimeUnit:
    """A time unit: a fixed number of chronons (Section 3.1).

    The paper allows the granularity of authorizations to be coarser than a
    single chronon.  A :class:`TimeUnit` converts between unit counts and
    chronons.

    Parameters
    ----------
    chronons:
        Number of chronons per unit; must be a positive integer.
    name:
        Optional human-readable name (e.g. ``"minute"``).
    """

    chronons: int
    name: str = "unit"

    def __post_init__(self) -> None:
        if not isinstance(self.chronons, int) or isinstance(self.chronons, bool) or self.chronons <= 0:
            raise TemporalError(
                f"a time unit must span a positive integer number of chronons, got {self.chronons!r}"
            )

    def to_chronons(self, units: int) -> int:
        """Convert *units* of this granularity to chronons."""
        if not isinstance(units, int) or isinstance(units, bool) or units < 0:
            raise TemporalError(f"unit count must be a non-negative integer, got {units!r}")
        return units * self.chronons

    def from_chronons(self, chronons: int) -> int:
        """Convert *chronons* to whole units, truncating any remainder."""
        if not is_time_point(chronons) or chronons is FOREVER:
            raise TemporalError(f"chronon count must be a finite time point, got {chronons!r}")
        return int(chronons) // self.chronons


CHRONON = TimeUnit(1, "chronon")
"""The smallest indivisible unit of time."""


@dataclass
class Clock:
    """A discrete simulation clock counted in chronons.

    The enforcement engine and the movement monitor are driven by an
    explicit clock rather than wall-clock time so that the worked examples of
    the paper (Section 5) and the benchmarks are deterministic.

    Parameters
    ----------
    now:
        The current time, initially ``0``.
    """

    now: int = 0
    _observers: list = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        validate_time_point(self.now, name="clock start time")
        if self.now is FOREVER:
            raise TemporalError("the clock cannot start at FOREVER")

    def advance(self, delta: int = 1) -> int:
        """Advance the clock by *delta* chronons and return the new time."""
        if not isinstance(delta, int) or isinstance(delta, bool) or delta < 0:
            raise TemporalError(f"clock can only advance by a non-negative integer, got {delta!r}")
        self.now += delta
        self._notify()
        return self.now

    def advance_to(self, time: int) -> int:
        """Advance the clock to the absolute *time*, which must not be in the past."""
        validate_time_point(time, name="target time")
        if time is FOREVER:
            raise TemporalError("cannot advance the clock to FOREVER")
        if time < self.now:
            raise TemporalError(
                f"cannot move the clock backwards (now={self.now}, requested={time})"
            )
        self.now = int(time)
        self._notify()
        return self.now

    def subscribe(self, callback) -> None:
        """Register *callback(now)* to be invoked after every advance."""
        self._observers.append(callback)

    def _notify(self) -> None:
        for callback in list(self._observers):
            callback(self.now)

    def ticks(self, until: int, step: int = 1) -> Iterator[int]:
        """Advance the clock in *step*-sized increments up to *until*, yielding each time."""
        if step <= 0:
            raise TemporalError(f"step must be positive, got {step!r}")
        while self.now < until:
            yield self.advance(min(step, until - self.now))
