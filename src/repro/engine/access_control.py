"""The Access Control Engine (Figure 3).

Section 5 gives the engine three jobs:

1. check the authorization database for an authorization matching an access
   request (Definition 7), consulting the movement database for the entry
   count already consumed;
2. invoke the query machinery to find out whether the user has violated any
   authorization (unauthorized accesses, over-staying) — delegated to the
   :class:`~repro.engine.monitor.MovementMonitor`;
3. evaluate newly specified rules against existing authorizations and user
   profiles and add the derived authorizations to the authorization database.

:class:`AccessControlEngine` wires the three databases, the monitor, the
derivation engine and the audit log together and is the main entry point of
the library (see ``examples/quickstart.py``).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

from repro.errors import EnforcementError
from repro.core.accessibility import AccessibilityReport, find_inaccessible
from repro.core.authorization import UNLIMITED_ENTRIES, LocationTemporalAuthorization
from repro.core.derivation import DerivationEngine, DerivationResult
from repro.core.requests import AccessDecision, AccessRequest, DenialReason
from repro.core.rules import AuthorizationRule
from repro.core.subjects import SubjectDirectory, subject_name
from repro.engine.alerts import Alert, AlertKind, AlertSink
from repro.engine.audit import AuditLog
from repro.engine.monitor import MovementMonitor
from repro.locations.location import location_name
from repro.locations.multilevel import LocationHierarchy
from repro.storage.authorization_db import AuthorizationDatabase, InMemoryAuthorizationDatabase
from repro.storage.movement_db import InMemoryMovementDatabase, MovementDatabase
from repro.storage.profile_db import InMemoryUserProfileDatabase, UserProfileDatabase
from repro.temporal.chronon import Clock

__all__ = ["AccessControlEngine"]


class AccessControlEngine:
    """End-to-end enforcement of LTAM authorizations over a location hierarchy.

    Parameters
    ----------
    hierarchy:
        The protected location layout.
    authorization_db, movement_db, profile_db:
        The three databases of Figure 3; in-memory backends are created when
        omitted.
    clock:
        Simulation clock; created at time 0 when omitted.
    alert_sink:
        Destination for monitor alerts; created when omitted.
    audit_log:
        Audit log; created when omitted.
    """

    def __init__(
        self,
        hierarchy: LocationHierarchy,
        *,
        authorization_db: Optional[AuthorizationDatabase] = None,
        movement_db: Optional[MovementDatabase] = None,
        profile_db: Optional[UserProfileDatabase] = None,
        clock: Optional[Clock] = None,
        alert_sink: Optional[AlertSink] = None,
        audit_log: Optional[AuditLog] = None,
    ) -> None:
        self.hierarchy = hierarchy
        self.authorization_db = authorization_db if authorization_db is not None else InMemoryAuthorizationDatabase()
        self.movement_db = movement_db if movement_db is not None else InMemoryMovementDatabase(hierarchy)
        self.profile_db = profile_db if profile_db is not None else InMemoryUserProfileDatabase()
        self.clock = clock if clock is not None else Clock()
        self.alerts = alert_sink if alert_sink is not None else AlertSink()
        self.audit = audit_log if audit_log is not None else AuditLog()
        self.monitor = MovementMonitor(self.authorization_db, self.movement_db, self.alerts)
        self._rules: List[AuthorizationRule] = []
        self.derivation = DerivationEngine(self.profile_db.directory(), hierarchy)
        # Overstay checks run automatically as simulation time advances.
        self.clock.subscribe(self.monitor.check_overstays)

    # ------------------------------------------------------------------ #
    # Administration
    # ------------------------------------------------------------------ #
    def grant(self, authorization: LocationTemporalAuthorization) -> LocationTemporalAuthorization:
        """Store an authorization, validating its location against the hierarchy."""
        if not self.hierarchy.is_primitive(authorization.location):
            raise EnforcementError(
                f"authorization {authorization.auth_id!r} references {authorization.location!r}, "
                "which is not a primitive location of the protected hierarchy"
            )
        return self.authorization_db.add(authorization)

    def grant_all(
        self, authorizations: Iterable[LocationTemporalAuthorization]
    ) -> List[LocationTemporalAuthorization]:
        """Store several authorizations."""
        return [self.grant(auth) for auth in authorizations]

    def revoke(self, auth_id: str, *, cascade: bool = True) -> List[LocationTemporalAuthorization]:
        """Revoke an authorization, cascading to derived authorizations by default."""
        if cascade:
            return self.authorization_db.revoke_cascading(auth_id)
        return [self.authorization_db.revoke(auth_id)]

    def add_rule(self, rule: AuthorizationRule, *, derive_now: bool = True) -> DerivationResult:
        """Register an authorization rule and (by default) derive immediately.

        Section 5: *"When the administrator specifies new rules, the access
        control engine will evaluate the new rules on the existing
        authorizations and user profiles.  The derived authorizations are
        then added to the authorization database."*
        """
        self._rules.append(rule)
        if not derive_now:
            return DerivationResult((), (), ())
        return self.derive_authorizations(rules=[rule])

    @property
    def rules(self) -> Tuple[AuthorizationRule, ...]:
        """Every rule registered with the engine."""
        return tuple(self._rules)

    def derive_authorizations(
        self, *, rules: Optional[Sequence[AuthorizationRule]] = None
    ) -> DerivationResult:
        """Run (selected) rules against the stored authorizations and persist the results."""
        # The directory may have changed since construction (profile updates),
        # so refresh the derivation engine's view of it and re-register the
        # engine's rules against the fresh directory.
        self.derivation = DerivationEngine(self.profile_db.directory(), self.hierarchy)
        for rule in self._rules:
            self.derivation.add_rule(rule)
        selected = list(rules) if rules is not None else list(self._rules)
        result = self.derivation.derive(
            self.authorization_db.all(), now=self.clock.now, rules=selected
        )
        stored = 0
        existing = set(self.authorization_db.all())
        for authorization in result.derived:
            if authorization in existing:
                continue
            self.authorization_db.add(authorization)
            existing.add(authorization)
            stored += 1
        for batch in result.batches:
            self.audit.record_derivation(
                self.clock.now,
                batch.base.subject,
                f"rule {batch.rule_id} derived {len(batch.derived)} authorization(s)",
            )
        return result

    # ------------------------------------------------------------------ #
    # Request evaluation (Definition 7)
    # ------------------------------------------------------------------ #
    def check_request(self, request: AccessRequest) -> AccessDecision:
        """Evaluate an access request without recording anything."""
        if not self.hierarchy.is_primitive(request.location):
            return AccessDecision.deny(request, DenialReason.UNKNOWN_LOCATION)

        candidates = self.authorization_db.for_subject_location(request.subject, request.location)
        if not candidates:
            return AccessDecision.deny(request, DenialReason.NO_AUTHORIZATION)

        in_window = [auth for auth in candidates if auth.permits_entry_at(request.time)]
        if not in_window:
            return AccessDecision.deny(request, DenialReason.OUTSIDE_ENTRY_DURATION)

        exhausted_used = 0
        for authorization in in_window:
            used = self.movement_db.entry_count(
                request.subject, request.location, authorization.entry_duration
            )
            remaining = authorization.entries_remaining(used)
            if remaining is UNLIMITED_ENTRIES or int(remaining) > 0:
                return AccessDecision.grant(request, authorization, entries_used=used)
            exhausted_used = max(exhausted_used, used)
        return AccessDecision.deny(
            request, DenialReason.ENTRY_LIMIT_EXHAUSTED, entries_used=exhausted_used
        )

    def request_access(
        self, time: int, subject: str, location: str, *, record: bool = True
    ) -> AccessDecision:
        """Evaluate the access request ``(time, subject, location)`` and audit it."""
        request = AccessRequest(time, subject_name(subject), location_name(location))
        decision = self.check_request(request)
        if record:
            self.audit.record_decision(decision)
            if not decision.granted:
                alert = self.alerts.emit(
                    Alert(
                        time,
                        AlertKind.DENIED_REQUEST,
                        request.subject,
                        request.location,
                        str(decision.reason),
                    )
                )
                self.audit.record_alert(alert)
        return decision

    # ------------------------------------------------------------------ #
    # Movement observation (continuous monitoring)
    # ------------------------------------------------------------------ #
    def observe_entry(self, time: int, subject: str, location: str) -> List[Alert]:
        """Record that *subject* was observed entering *location* at *time*."""
        alerts = self.monitor.observe_entry(time, subject, location)
        self.audit.record_movement(self.movement_db.history(subject=subject, location=location)[-1])
        for alert in alerts:
            self.audit.record_alert(alert)
        return alerts

    def observe_exit(self, time: int, subject: str, location: str) -> List[Alert]:
        """Record that *subject* was observed leaving *location* at *time*."""
        alerts = self.monitor.observe_exit(time, subject, location)
        self.audit.record_movement(self.movement_db.history(subject=subject, location=location)[-1])
        for alert in alerts:
            self.audit.record_alert(alert)
        return alerts

    def request_and_enter(self, time: int, subject: str, location: str) -> AccessDecision:
        """Convenience: pose a request and, when granted, record the entry."""
        decision = self.request_access(time, subject, location)
        if decision.granted:
            self.observe_entry(time, subject, location)
        return decision

    def set_capacity(self, location: str, limit: int) -> None:
        """Set an occupancy limit for *location* (monitored continuously)."""
        if not self.hierarchy.is_primitive(location):
            raise EnforcementError(f"{location!r} is not a primitive location of the protected hierarchy")
        self.monitor.set_capacity(location, limit)

    def tick(self, delta: int = 1) -> int:
        """Advance the clock (overstay checks run via the clock subscription)."""
        return self.clock.advance(delta)

    def advance_to(self, time: int) -> int:
        """Advance the clock to an absolute time."""
        return self.clock.advance_to(time)

    # ------------------------------------------------------------------ #
    # Reasoning
    # ------------------------------------------------------------------ #
    def inaccessible_locations(self, subject: str) -> AccessibilityReport:
        """Run Algorithm 1 for *subject* against the stored authorizations."""
        return find_inaccessible(self.hierarchy, subject, self.authorization_db)

    def where_is(self, subject: str) -> Optional[str]:
        """The location the subject is currently inside, or ``None``."""
        return self.movement_db.current_location(subject)

    def occupants(self, location: str) -> List[str]:
        """Subjects currently inside *location*."""
        return self.movement_db.occupants(location)
