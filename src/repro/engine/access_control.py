"""The Access Control Engine (Figure 3) — backwards-compatible facade.

Section 5 gives the engine three jobs: check access requests against the
authorization database (Definition 7), monitor movements for violations, and
derive authorizations from newly specified rules.  Those jobs now live in the
PDP/PEP layers of :mod:`repro.api`:

* decisions run through the pluggable stage pipeline of
  :class:`~repro.api.pdp.DecisionPoint` (and return
  :class:`~repro.api.decision.Decision` objects carrying a per-stage trace);
* side effects (audit, alerts, movement recording) belong to
  :class:`~repro.api.pep.EnforcementPoint`;
* construction is fluent via :meth:`~repro.api.builder.Ltam.builder`.

:class:`AccessControlEngine` subclasses :class:`~repro.api.builder.Ltam` and
only adds the seed's method names, so existing code keeps working unchanged.

Migration guide (old → new):

==============================  =======================================
``check_request(request)``      ``decide(request)``
``request_access(t, s, l)``     ``enforce((t, s, l))``
``request_access(..., record=False)``  ``decide((t, s, l))``
``request_and_enter(t, s, l)``  ``enforce_and_enter((t, s, l))``
``AccessControlEngine(h)``      ``Ltam.builder().hierarchy(h).build()``
==============================  =======================================

Occupancy reads (``where_is``, ``occupants``, ``occupancy``, the entry
counting behind every decision) are served by the movement database's
event-indexed :class:`~repro.storage.occupancy.OccupancyService` projection
— O(1)/O(log n) per read — rather than by replaying movement history, so
the legacy facade scales the same way the new API does.
"""

from __future__ import annotations

from repro.core.requests import AccessDecision, AccessRequest
from repro.api.builder import Ltam

__all__ = ["AccessControlEngine"]


class AccessControlEngine(Ltam):
    """End-to-end enforcement of LTAM authorizations over a location hierarchy.

    A thin, backwards-compatible shim over :class:`~repro.api.builder.Ltam`:
    every decision still runs through the PDP pipeline (so it carries a
    trace) and every side effect through the PEP; only the seed's method
    names are added here.  See the module docstring for the migration table.
    """

    # ------------------------------------------------------------------ #
    # Request evaluation (Definition 7) — legacy names
    # ------------------------------------------------------------------ #
    def check_request(self, request: AccessRequest) -> AccessDecision:
        """Evaluate an access request without recording anything.

        Legacy alias of :meth:`~repro.api.builder.Ltam.decide`.
        """
        return self.decide(request)

    def request_access(
        self, time: int, subject: str, location: str, *, record: bool = True
    ) -> AccessDecision:
        """Evaluate the access request ``(time, subject, location)`` and audit it.

        Legacy alias of :meth:`~repro.api.builder.Ltam.enforce`
        (or :meth:`~repro.api.builder.Ltam.decide` when ``record=False``).
        """
        request = AccessRequest(time, subject, location)
        if record:
            return self.enforce(request)
        return self.decide(request)

    def request_and_enter(self, time: int, subject: str, location: str) -> AccessDecision:
        """Convenience: pose a request and, when granted, record the entry.

        Legacy alias of :meth:`~repro.api.builder.Ltam.enforce_and_enter`.
        """
        return self.enforce_and_enter(AccessRequest(time, subject, location))

    # ------------------------------------------------------------------ #
    # Occupancy reads — legacy names
    # ------------------------------------------------------------------ #
    def current_occupancy(self, location: str) -> int:
        """Number of subjects currently inside *location*.

        Legacy alias of :meth:`~repro.api.builder.Ltam.occupancy` — an O(1)
        read of the occupancy projection.
        """
        return self.occupancy(location)
