"""Occupancy sessions: who is inside which location under which authorization.

The movement monitor keeps one open :class:`OccupancySession` per subject
currently inside a location.  The session remembers the authorization that
admitted the subject (or ``None`` for an unauthorized entry) so that overstay
and exit-window checks can be evaluated without re-querying the authorization
database.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import EnforcementError
from repro.core.authorization import LocationTemporalAuthorization
from repro.core.subjects import subject_name
from repro.locations.location import LocationName, location_name

__all__ = ["OccupancySession", "SessionTable"]


@dataclass
class OccupancySession:
    """One subject's current stay inside one location."""

    subject: str
    location: LocationName
    entered_at: int
    authorization: Optional[LocationTemporalAuthorization] = None
    exited_at: Optional[int] = None

    def __post_init__(self) -> None:
        self.subject = subject_name(self.subject)
        self.location = location_name(self.location)

    @property
    def is_open(self) -> bool:
        """``True`` while the subject has not been observed leaving."""
        return self.exited_at is None

    @property
    def is_authorized(self) -> bool:
        """``True`` when the stay is covered by an authorization."""
        return self.authorization is not None

    def close(self, time: int) -> None:
        """Mark the session as ended at *time*."""
        if not self.is_open:
            raise EnforcementError(
                f"session of {self.subject!r} in {self.location!r} is already closed"
            )
        if time < self.entered_at:
            raise EnforcementError(
                f"cannot close a session before it started (entered {self.entered_at}, exit {time})"
            )
        self.exited_at = time

    def overstayed_at(self, now: int) -> bool:
        """``True`` when the stay has outlived the authorization's exit window."""
        if not self.is_open or self.authorization is None:
            return False
        exit_duration = self.authorization.exit_duration
        return not exit_duration.is_unbounded and now > int(exit_duration.end)

    def duration(self, now: Optional[int] = None) -> int:
        """Length of the stay, up to *now* for open sessions."""
        end = self.exited_at if self.exited_at is not None else now
        if end is None:
            raise EnforcementError("duration of an open session requires the current time")
        return max(0, end - self.entered_at)


class SessionTable:
    """Open and historical occupancy sessions, keyed by subject."""

    def __init__(self) -> None:
        self._open: Dict[str, OccupancySession] = {}
        self._closed: List[OccupancySession] = []

    def open(
        self,
        subject: str,
        location: str,
        time: int,
        authorization: Optional[LocationTemporalAuthorization] = None,
    ) -> OccupancySession:
        """Open a session; an existing open session for the subject is force-closed.

        Trackers may miss an exit event (a subject walks out of coverage);
        force-closing keeps the table consistent with the latest observation.
        """
        name = subject_name(subject)
        existing = self._open.get(name)
        if existing is not None:
            existing.close(time)
            self._closed.append(existing)
        session = OccupancySession(name, location, time, authorization)
        self._open[name] = session
        return session

    def close(self, subject: str, time: int) -> Optional[OccupancySession]:
        """Close the subject's open session, returning it (``None`` when absent)."""
        name = subject_name(subject)
        session = self._open.pop(name, None)
        if session is None:
            return None
        session.close(time)
        self._closed.append(session)
        return session

    def current(self, subject: str) -> Optional[OccupancySession]:
        """The subject's open session, or ``None``."""
        return self._open.get(subject_name(subject))

    def open_sessions(self) -> List[OccupancySession]:
        """All currently open sessions."""
        return list(self._open.values())

    def closed_sessions(self) -> List[OccupancySession]:
        """All sessions that have ended."""
        return list(self._closed)

    def forget(self, subject: str) -> None:
        """Drop every trace of *subject* — open session and closed history.

        Partition handoff: when a subject migrates to another partition its
        open session travels there; the local copy is discarded (not closed
        — the stay continues, just elsewhere).
        """
        name = subject_name(subject)
        self._open.pop(name, None)
        self._closed = [session for session in self._closed if session.subject != name]

    def occupants(self, location: str) -> List[str]:
        """Subjects whose open session is inside *location*."""
        wanted = location_name(location)
        return sorted(s.subject for s in self._open.values() if s.location == wanted)

    def __len__(self) -> int:
        return len(self._open)

    def __iter__(self) -> Iterator[OccupancySession]:
        return iter(self._open.values())
