"""The Query Engine of Figure 3.

*"The query engine evaluates queries by the system administrators and the
access control engine based on the information stored in all of the
databases."*  :class:`QueryEngine` executes parsed queries (or raw query
strings) against an :class:`~repro.engine.access_control.AccessControlEngine`
— its authorization, movement and profile databases, its audit log/alert
sink, and the location hierarchy — and returns tabular
:class:`~repro.engine.query.ast.QueryResult` objects.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Tuple, Union

from repro.errors import QueryError
from repro.core.authorization import UNLIMITED_ENTRIES
from repro.engine.query.ast import (
    AccessibleQuery,
    AuthorizationsQuery,
    CanEnterQuery,
    EntriesQuery,
    HistoryScope,
    InaccessibleQuery,
    Query,
    QueryResult,
    RouteQuery,
    ViolationsQuery,
    WhereIsQuery,
    WhoIsInQuery,
)
from repro.engine.query.parser import parse
from repro.locations.routes import find_route
from repro.core.grant import authorize_route
from repro.storage.movement_db import MovementKind

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.access_control import AccessControlEngine
from repro.temporal.interval import TimeInterval

__all__ = ["QueryEngine"]


class QueryEngine:
    """Evaluate LTAM queries against an access-control engine's state."""

    def __init__(self, engine: AccessControlEngine) -> None:
        self._engine = engine

    # ------------------------------------------------------------------ #
    # Entry point
    # ------------------------------------------------------------------ #
    def evaluate(self, query: Union[str, Query]) -> QueryResult:
        """Evaluate a query given as text or as an AST node."""
        node = parse(query) if isinstance(query, str) else query
        handler = self._HANDLERS.get(type(node))
        if handler is None:
            raise QueryError(f"unsupported query type {type(node).__name__}")
        return handler(self, node)

    def explain(self, query: Union[str, Query]) -> str:
        """Return the parsed AST representation of a query (for debugging)."""
        node = parse(query) if isinstance(query, str) else query
        return repr(node)

    # ------------------------------------------------------------------ #
    # Handlers
    # ------------------------------------------------------------------ #
    def _who_is_in(self, query: WhoIsInQuery) -> QueryResult:
        if query.time is None:
            occupants = self._engine.occupants(query.location)
        else:
            occupants = self._occupants_at(query.location, query.time, query.scope)
        rows = tuple((subject,) for subject in occupants)
        return QueryResult("who_is_in", ("subject",), rows)

    def _occupants_at(self, location: str, time: int, scope: HistoryScope) -> List[str]:
        """Replay the movement history up to *time* to find occupants then.

        The statement's scope chooses the replay span: the default
        ``ARCHIVED`` reads the full log (archive included), ``LIVE`` only
        the events since the last compaction — bounded, but blind to state
        established before the checkpoint.
        """
        inside: Dict[str, str] = {}
        for record in self._engine.movement_db.history(
            include_archived=scope.include_archived
        ):
            if record.time > time:
                # Filter, don't stop: the history is only guaranteed
                # time-ordered *per subject* — a partition that adopted a
                # migrated subject's past holds it after native records, and
                # occupancy replay depends on per-subject order alone.
                continue
            if record.kind is MovementKind.ENTER:
                inside[record.subject] = record.location
            else:
                if inside.get(record.subject) == record.location:
                    del inside[record.subject]
        return sorted(subject for subject, loc in inside.items() if loc == location)

    def _where_is(self, query: WhereIsQuery) -> QueryResult:
        if query.time is None:
            location = self._engine.where_is(query.subject)
        else:
            location = self._location_at(query.subject, query.time, query.scope)
        rows = ((query.subject, location),) if location is not None else ()
        return QueryResult("where_is", ("subject", "location"), rows, scalar=location)

    def _location_at(self, subject: str, time: int, scope: HistoryScope) -> Optional[str]:
        location: Optional[str] = None
        for record in self._engine.movement_db.history(
            subject=subject, include_archived=scope.include_archived
        ):
            if record.time > time:
                break
            location = record.location if record.kind is MovementKind.ENTER else None
        return location

    def _can_enter(self, query: CanEnterQuery) -> QueryResult:
        decision = self._engine.decide((query.time, query.subject, query.location))
        reason = "" if decision.granted else str(decision.reason)
        rows = ((query.subject, query.location, query.time, decision.granted, reason),)
        return QueryResult(
            "can_enter",
            ("subject", "location", "time", "granted", "reason"),
            rows,
            scalar=decision.granted,
        )

    def _authorizations(self, query: AuthorizationsQuery) -> QueryResult:
        if query.location is not None:
            auths = self._engine.authorization_db.for_subject_location(query.subject, query.location)
        else:
            auths = self._engine.authorization_db.for_subject(query.subject)
        rows = tuple(
            (
                auth.auth_id,
                auth.location,
                str(auth.entry_duration),
                str(auth.exit_duration),
                "∞" if auth.max_entries is UNLIMITED_ENTRIES else int(auth.max_entries),
                auth.derived_from or "",
            )
            for auth in auths
        )
        return QueryResult(
            "authorizations",
            ("auth_id", "location", "entry_duration", "exit_duration", "max_entries", "derived_from"),
            rows,
        )

    def _inaccessible(self, query: InaccessibleQuery) -> QueryResult:
        report = self._engine.inaccessible_locations(query.subject)
        rows = tuple((location,) for location in sorted(report.inaccessible))
        return QueryResult("inaccessible", ("location",), rows)

    def _accessible(self, query: AccessibleQuery) -> QueryResult:
        report = self._engine.inaccessible_locations(query.subject)
        rows = tuple((location,) for location in sorted(report.accessible))
        return QueryResult("accessible", ("location",), rows)

    def _violations(self, query: ViolationsQuery) -> QueryResult:
        alerts = list(self._engine.alerts.alerts)
        if query.scope is HistoryScope.LIVE:
            # Only alerts raised after the archived era: the ones whose
            # underlying movements are still in the live log.  The boundary
            # is the movement store's archived_through time; with no
            # compaction yet, everything is live.  Boundary-time alerts are
            # *included*: movement times may repeat, so an alert at exactly
            # archived_through can belong to a live-era movement — for a
            # security surface, over-reporting the boundary chronon beats
            # hiding a live violation.
            boundary = getattr(self._engine.movement_db, "archived_through", None)
            if boundary is not None:
                alerts = [alert for alert in alerts if alert.time >= boundary]
        if query.subject is not None:
            alerts = [alert for alert in alerts if alert.subject == query.subject]
        if query.window is not None:
            alerts = [alert for alert in alerts if query.window.contains(alert.time)]
        rows = tuple(
            (alert.time, str(alert.kind), alert.subject, alert.location, alert.message)
            for alert in alerts
        )
        return QueryResult("violations", ("time", "kind", "subject", "location", "message"), rows)

    def _entries(self, query: EntriesQuery) -> QueryResult:
        if query.scope is HistoryScope.LIVE:
            # Count the ENTER rows still in the live log — bounded by the
            # last compaction, blind to archived entries.  The default
            # (ARCHIVED) stays the projection's O(1) lifetime counter, which
            # is exact even past archive pruning.
            count = sum(
                1
                for record in self._engine.movement_db.history(
                    subject=query.subject, location=query.location
                )
                if record.kind is MovementKind.ENTER
            )
        else:
            count = self._engine.movement_db.entry_count(query.subject, query.location)
        rows = ((query.subject, query.location, count),)
        return QueryResult("entries", ("subject", "location", "entries"), rows, scalar=count)

    def _route(self, query: RouteQuery) -> QueryResult:
        route = find_route(self._engine.hierarchy, query.source, query.destination)
        if route is None:
            return QueryResult("route", ("step", "location", "authorized"), (), scalar=False)
        authorized: Optional[bool] = None
        if query.subject is not None:
            check = authorize_route(route, query.subject, self._engine.authorization_db)
            authorized = check.authorized
        rows = tuple(
            (index, location, "" if authorized is None else authorized)
            for index, location in enumerate(route)
        )
        return QueryResult("route", ("step", "location", "authorized"), rows, scalar=authorized)

    _HANDLERS = {
        WhoIsInQuery: _who_is_in,
        WhereIsQuery: _where_is,
        CanEnterQuery: _can_enter,
        AuthorizationsQuery: _authorizations,
        InaccessibleQuery: _inaccessible,
        AccessibleQuery: _accessible,
        ViolationsQuery: _violations,
        EntriesQuery: _entries,
        RouteQuery: _route,
    }
