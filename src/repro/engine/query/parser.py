"""Parser for the LTAM query language.

The language is deliberately small and keyword-driven; the grammar (keywords
are case-insensitive, names may be double-quoted to include spaces):

.. code-block:: text

    query := WHO IS IN <location> [AT <time>] [scope]
           | WHERE IS <subject> [AT <time>] [scope]
           | CAN <subject> ENTER <location> AT <time>
           | AUTHORIZATIONS FOR <subject> [AT <location>]
           | INACCESSIBLE [LOCATIONS] FOR <subject>
           | ACCESSIBLE [LOCATIONS] FOR <subject>
           | VIOLATIONS [FOR <subject>] [BETWEEN <time> AND <time>] [scope]
           | ENTRIES OF <subject> INTO <location> [scope]
           | ROUTE FROM <location> TO <location> [FOR <subject>]

    scope := LIVE | ARCHIVED

The optional trailing scope bounds how much history a statement reads.  For
the point-in-time replays (``WHO IS IN``/``WHERE IS``), ``ARCHIVED`` (the
default) spans the full movement log including compacted checkpoints'
archive, ``LIVE`` only the events since the last compaction.  For the
alert- and counter-backed statements: ``VIOLATIONS ... LIVE`` reports only
alerts raised after the archived era (alert retention itself follows
archive pruning — see :meth:`~repro.engine.alerts.AlertSink.prune_before`),
and ``ENTRIES ... LIVE`` counts only the ENTER records still in the live
log, while the default remains the projection's exact lifetime counter.

Like every keyword of the language, ``LIVE`` and ``ARCHIVED`` are reserved
words — a subject or location literally named ``Live``/``Archived`` must be
double-quoted (``WHERE IS "Live"``), exactly as for names containing
spaces.
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from repro.errors import QuerySyntaxError
from repro.engine.query.ast import (
    AccessibleQuery,
    AuthorizationsQuery,
    CanEnterQuery,
    EntriesQuery,
    HistoryScope,
    InaccessibleQuery,
    Query,
    RouteQuery,
    ViolationsQuery,
    WhereIsQuery,
    WhoIsInQuery,
)
from repro.temporal.interval import TimeInterval

__all__ = ["tokenize", "parse"]

_TOKEN_PATTERN = re.compile(r'"[^"]*"|\S+')

#: Keywords of the language (upper-cased during tokenization comparison).
_KEYWORDS = {
    "WHO",
    "IS",
    "IN",
    "AT",
    "WHERE",
    "CAN",
    "ENTER",
    "AUTHORIZATIONS",
    "FOR",
    "INACCESSIBLE",
    "ACCESSIBLE",
    "LOCATIONS",
    "VIOLATIONS",
    "BETWEEN",
    "AND",
    "ENTRIES",
    "OF",
    "INTO",
    "ROUTE",
    "FROM",
    "TO",
    "LIVE",
    "ARCHIVED",
}


def tokenize(text: str) -> List[str]:
    """Split a query string into tokens, honouring double-quoted names."""
    if not isinstance(text, str) or not text.strip():
        raise QuerySyntaxError("query text must be a non-empty string")
    tokens: List[str] = []
    for match in _TOKEN_PATTERN.finditer(text.strip()):
        token = match.group(0)
        if token.startswith('"') and token.endswith('"') and len(token) >= 2:
            tokens.append(token[1:-1])
        else:
            tokens.append(token)
    return tokens


class _Cursor:
    """Small helper walking the token list with keyword-aware accessors."""

    def __init__(self, tokens: List[str], text: str) -> None:
        self._tokens = tokens
        self._text = text
        self._position = 0

    @property
    def exhausted(self) -> bool:
        return self._position >= len(self._tokens)

    def peek_keyword(self) -> Optional[str]:
        if self.exhausted:
            return None
        token = self._tokens[self._position].upper()
        return token if token in _KEYWORDS else None

    def expect_keyword(self, *keywords: str) -> str:
        if self.exhausted:
            raise QuerySyntaxError(
                f"unexpected end of query {self._text!r}: expected {' or '.join(keywords)}"
            )
        token = self._tokens[self._position].upper()
        if token not in keywords:
            raise QuerySyntaxError(
                f"expected {' or '.join(keywords)} but found {self._tokens[self._position]!r} in {self._text!r}"
            )
        self._position += 1
        return token

    def accept_keyword(self, *keywords: str) -> Optional[str]:
        if self.exhausted:
            return None
        token = self._tokens[self._position].upper()
        if token in keywords:
            self._position += 1
            return token
        return None

    def take_name(self, what: str) -> str:
        if self.exhausted:
            raise QuerySyntaxError(f"unexpected end of query {self._text!r}: expected a {what}")
        token = self._tokens[self._position]
        if token.upper() in _KEYWORDS:
            raise QuerySyntaxError(f"expected a {what} but found keyword {token!r} in {self._text!r}")
        self._position += 1
        return token

    def take_time(self) -> int:
        token = self.take_name("time")
        try:
            value = int(token)
        except ValueError:
            raise QuerySyntaxError(f"expected an integer time, got {token!r}") from None
        if value < 0:
            raise QuerySyntaxError(f"time must be non-negative, got {value}")
        return value

    def finish(self) -> None:
        if not self.exhausted:
            trailing = " ".join(self._tokens[self._position:])
            raise QuerySyntaxError(f"unexpected trailing tokens {trailing!r} in {self._text!r}")


def _accept_scope(cursor: _Cursor) -> HistoryScope:
    """Consume an optional trailing LIVE/ARCHIVED scope (default: full history)."""
    token = cursor.accept_keyword("LIVE", "ARCHIVED")
    if token == "LIVE":
        return HistoryScope.LIVE
    return HistoryScope.ARCHIVED


def parse(text: str) -> Query:
    """Parse a query string into its AST node.

    Raises
    ------
    QuerySyntaxError
        If the text does not conform to the grammar.
    """
    cursor = _Cursor(tokenize(text), text)
    head = cursor.expect_keyword(
        "WHO", "WHERE", "CAN", "AUTHORIZATIONS", "INACCESSIBLE", "ACCESSIBLE",
        "VIOLATIONS", "ENTRIES", "ROUTE",
    )

    if head == "WHO":
        cursor.expect_keyword("IS")
        cursor.expect_keyword("IN")
        location = cursor.take_name("location")
        time = cursor.take_time() if cursor.accept_keyword("AT") else None
        scope = _accept_scope(cursor)
        cursor.finish()
        return WhoIsInQuery(location, time, scope)

    if head == "WHERE":
        cursor.expect_keyword("IS")
        subject = cursor.take_name("subject")
        time = cursor.take_time() if cursor.accept_keyword("AT") else None
        scope = _accept_scope(cursor)
        cursor.finish()
        return WhereIsQuery(subject, time, scope)

    if head == "CAN":
        subject = cursor.take_name("subject")
        cursor.expect_keyword("ENTER")
        location = cursor.take_name("location")
        cursor.expect_keyword("AT")
        time = cursor.take_time()
        cursor.finish()
        return CanEnterQuery(subject, location, time)

    if head == "AUTHORIZATIONS":
        cursor.expect_keyword("FOR")
        subject = cursor.take_name("subject")
        location = cursor.take_name("location") if cursor.accept_keyword("AT") else None
        cursor.finish()
        return AuthorizationsQuery(subject, location)

    if head in ("INACCESSIBLE", "ACCESSIBLE"):
        cursor.accept_keyword("LOCATIONS")
        cursor.expect_keyword("FOR")
        subject = cursor.take_name("subject")
        cursor.finish()
        return InaccessibleQuery(subject) if head == "INACCESSIBLE" else AccessibleQuery(subject)

    if head == "VIOLATIONS":
        subject = cursor.take_name("subject") if cursor.accept_keyword("FOR") else None
        window = None
        if cursor.accept_keyword("BETWEEN"):
            start = cursor.take_time()
            cursor.expect_keyword("AND")
            end = cursor.take_time()
            if end < start:
                raise QuerySyntaxError(f"BETWEEN window is inverted: [{start}, {end}]")
            window = TimeInterval(start, end)
        scope = _accept_scope(cursor)
        cursor.finish()
        return ViolationsQuery(subject, window, scope)

    if head == "ENTRIES":
        cursor.expect_keyword("OF")
        subject = cursor.take_name("subject")
        cursor.expect_keyword("INTO")
        location = cursor.take_name("location")
        scope = _accept_scope(cursor)
        cursor.finish()
        return EntriesQuery(subject, location, scope)

    # head == "ROUTE"
    cursor.expect_keyword("FROM")
    source = cursor.take_name("location")
    cursor.expect_keyword("TO")
    destination = cursor.take_name("location")
    subject = cursor.take_name("subject") if cursor.accept_keyword("FOR") else None
    cursor.finish()
    return RouteQuery(source, destination, subject)
