"""The LTAM query language and query engine (Figure 3's Query Engine)."""

from repro.engine.query.ast import (
    AccessibleQuery,
    AuthorizationsQuery,
    CanEnterQuery,
    EntriesQuery,
    HistoryScope,
    InaccessibleQuery,
    Query,
    QueryResult,
    RouteQuery,
    ViolationsQuery,
    WhereIsQuery,
    WhoIsInQuery,
)
from repro.engine.query.evaluator import QueryEngine
from repro.engine.query.parser import parse, tokenize

__all__ = [
    "HistoryScope",
    "Query",
    "QueryResult",
    "QueryEngine",
    "parse",
    "tokenize",
    "WhoIsInQuery",
    "WhereIsQuery",
    "CanEnterQuery",
    "AuthorizationsQuery",
    "InaccessibleQuery",
    "AccessibleQuery",
    "ViolationsQuery",
    "EntriesQuery",
    "RouteQuery",
]
