"""Abstract syntax of the LTAM query language.

The paper defers the query language to future work but enumerates the kinds
of questions it must answer (Sections 5 and 6): who is where, whether a user
may enter a location, which locations are (in)accessible, and which
authorizations have been violated.  Each query form is a small frozen
dataclass; :mod:`repro.engine.query.parser` builds them from text and
:mod:`repro.engine.query.evaluator` executes them against the enforcement
engine's databases.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional, Tuple, Union

from repro.temporal.interval import TimeInterval

__all__ = [
    "HistoryScope",
    "Query",
    "WhoIsInQuery",
    "WhereIsQuery",
    "CanEnterQuery",
    "AuthorizationsQuery",
    "InaccessibleQuery",
    "AccessibleQuery",
    "ViolationsQuery",
    "EntriesQuery",
    "RouteQuery",
    "QueryResult",
]


class Query:
    """Marker base class for all query AST nodes."""


class HistoryScope(str, Enum):
    """How much movement history a point-in-time replay may read.

    ``ARCHIVED`` (the default) spans the full log — live records plus the
    prefix moved to the archive by compacting checkpoints; ``LIVE``
    restricts the replay to events since the last compaction, trading
    completeness for a bounded scan.  Queries that read the projection
    (current occupancy, entry counters) are scope-insensitive.
    """

    LIVE = "live"
    ARCHIVED = "archived"

    @property
    def include_archived(self) -> bool:
        """The ``history(include_archived=...)`` flag this scope maps to."""
        return self is HistoryScope.ARCHIVED

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class WhoIsInQuery(Query):
    """``WHO IS IN <location> [AT <time>] [LIVE|ARCHIVED]`` — occupants of a location."""

    location: str
    time: Optional[int] = None
    scope: HistoryScope = HistoryScope.ARCHIVED


@dataclass(frozen=True)
class WhereIsQuery(Query):
    """``WHERE IS <subject> [AT <time>] [LIVE|ARCHIVED]`` — a subject's (historical) location."""

    subject: str
    time: Optional[int] = None
    scope: HistoryScope = HistoryScope.ARCHIVED


@dataclass(frozen=True)
class CanEnterQuery(Query):
    """``CAN <subject> ENTER <location> AT <time>`` — a hypothetical access request."""

    subject: str
    location: str
    time: int


@dataclass(frozen=True)
class AuthorizationsQuery(Query):
    """``AUTHORIZATIONS FOR <subject> [AT <location>]`` — stored authorizations."""

    subject: str
    location: Optional[str] = None


@dataclass(frozen=True)
class InaccessibleQuery(Query):
    """``INACCESSIBLE LOCATIONS FOR <subject>`` — Definition 9 via Algorithm 1."""

    subject: str


@dataclass(frozen=True)
class AccessibleQuery(Query):
    """``ACCESSIBLE LOCATIONS FOR <subject>`` — complement of the inaccessible set."""

    subject: str


@dataclass(frozen=True)
class ViolationsQuery(Query):
    """``VIOLATIONS [FOR <subject>] [BETWEEN <t1> AND <t2>] [LIVE|ARCHIVED]``.

    Recorded alerts.  ``ARCHIVED`` (the default) reports every retained
    alert; ``LIVE`` only those raised after the movement store's archived
    era (times past
    :attr:`~repro.storage.movement_db.MovementDatabase.archived_through`) —
    the alerts whose underlying movements are still in the live log.
    """

    subject: Optional[str] = None
    window: Optional[TimeInterval] = None
    scope: HistoryScope = HistoryScope.ARCHIVED


@dataclass(frozen=True)
class EntriesQuery(Query):
    """``ENTRIES OF <subject> INTO <location>`` [LIVE|ARCHIVED]``.

    Consumed entry count.  ``ARCHIVED`` (the default) is the projection's
    exact lifetime counter — it folded in every entry ever recorded, even
    ones whose log rows were later archived or pruned; ``LIVE`` counts only
    the ENTER records still in the live log (since the last compaction).
    """

    subject: str
    location: str
    scope: HistoryScope = HistoryScope.ARCHIVED


@dataclass(frozen=True)
class RouteQuery(Query):
    """``ROUTE FROM <source> TO <destination> [FOR <subject>]``.

    Returns a shortest route; with a subject, also whether that route is
    authorized for an access-request duration of ``[0, ∞)``.
    """

    source: str
    destination: str
    subject: Optional[str] = None


@dataclass(frozen=True)
class QueryResult:
    """Tabular result of a query.

    Parameters
    ----------
    kind:
        Machine-readable name of the query form that produced the result.
    columns:
        Column headers.
    rows:
        Result rows (tuples aligned with *columns*).
    scalar:
        Single-value answer for queries that have one (e.g. ``CAN … ENTER``);
        ``None`` otherwise.
    """

    kind: str
    columns: Tuple[str, ...]
    rows: Tuple[Tuple, ...]
    scalar: object = None

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def first(self) -> Optional[Tuple]:
        """The first row, or ``None`` when the result is empty."""
        return self.rows[0] if self.rows else None

    def to_text(self) -> str:
        """Render the result as a small fixed-width table."""
        if self.scalar is not None and not self.rows:
            return f"{self.kind}: {self.scalar}"
        header = " | ".join(self.columns)
        lines = [header, "-" * len(header)]
        for row in self.rows:
            lines.append(" | ".join(str(cell) for cell in row))
        return "\n".join(lines)
