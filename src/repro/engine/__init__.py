"""Enforcement layer: access-control engine, monitor, alerts, audit, queries.

Implements the system architecture of Figure 3 on top of the storage layer:
the continuous movement monitor with its security alerts, occupancy sessions,
the audit log, and the Query Engine with its small query language.  The
decision/enforcement split itself (PDP/PEP) lives in :mod:`repro.api`;
:class:`AccessControlEngine` remains here as the backwards-compatible facade
over it.
"""

from typing import TYPE_CHECKING

from repro.engine.alerts import Alert, AlertKind, AlertSink
from repro.engine.audit import AuditEntry, AuditEntryKind, AuditLog
from repro.engine.monitor import MovementMonitor
from repro.engine.query import QueryEngine, QueryResult, parse
from repro.engine.session import OccupancySession, SessionTable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.access_control import AccessControlEngine

__all__ = [
    "AccessControlEngine",
    "MovementMonitor",
    "Alert",
    "AlertKind",
    "AlertSink",
    "AuditLog",
    "AuditEntry",
    "AuditEntryKind",
    "OccupancySession",
    "SessionTable",
    "QueryEngine",
    "QueryResult",
    "parse",
]


def __getattr__(name: str):
    # AccessControlEngine is imported lazily: it is built on repro.api, which
    # in turn imports this package's monitor/audit/alerts submodules — eager
    # import here would be circular.
    if name == "AccessControlEngine":
        from repro.engine.access_control import AccessControlEngine

        globals()["AccessControlEngine"] = AccessControlEngine
        return AccessControlEngine
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
