"""Enforcement layer: access-control engine, monitor, alerts, audit, queries.

Implements the system architecture of Figure 3 on top of the storage layer:
the Access Control Engine (request checking, rule derivation), the continuous
movement monitor with its security alerts, occupancy sessions, the audit log,
and the Query Engine with its small query language.
"""

from repro.engine.access_control import AccessControlEngine
from repro.engine.alerts import Alert, AlertKind, AlertSink
from repro.engine.audit import AuditEntry, AuditEntryKind, AuditLog
from repro.engine.monitor import MovementMonitor
from repro.engine.query import QueryEngine, QueryResult, parse
from repro.engine.session import OccupancySession, SessionTable

__all__ = [
    "AccessControlEngine",
    "MovementMonitor",
    "Alert",
    "AlertKind",
    "AlertSink",
    "AuditLog",
    "AuditEntry",
    "AuditEntryKind",
    "OccupancySession",
    "SessionTable",
    "QueryEngine",
    "QueryResult",
    "parse",
]
