"""Audit log of decisions, movements and alerts.

Every action the enforcement engine takes is appended to an audit log so that
administrators can answer *"what happened?"* after the fact — the query
engine's violation queries and the analysis reports read from it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Iterable, Iterator, List, Optional, Tuple, Union

from repro.core.requests import AccessDecision
from repro.core.subjects import subject_name
from repro.engine.alerts import Alert
from repro.storage.movement_db import MovementRecord
from repro.temporal.interval import TimeInterval

__all__ = ["AuditEntryKind", "AuditEntry", "AuditLog"]


class AuditEntryKind(str, Enum):
    """The kinds of events the audit log records."""

    DECISION = "decision"
    MOVEMENT = "movement"
    ALERT = "alert"
    DERIVATION = "derivation"
    NOTE = "note"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class AuditEntry:
    """One audit record: a timestamped payload with a kind tag."""

    time: int
    kind: AuditEntryKind
    subject: str
    payload: Union[AccessDecision, MovementRecord, Alert, str]

    def __str__(self) -> str:
        return f"[t={self.time}] {self.kind.value} {self.subject}: {self.payload}"


class AuditLog:
    """Append-only in-memory audit log."""

    def __init__(self) -> None:
        self._entries: List[AuditEntry] = []

    # ------------------------------------------------------------------ #
    # Appending
    # ------------------------------------------------------------------ #
    def record_decision(self, decision: AccessDecision) -> AuditEntry:
        """Record an access-control decision."""
        entry = AuditEntry(
            decision.request.time, AuditEntryKind.DECISION, decision.request.subject, decision
        )
        self._entries.append(entry)
        return entry

    def record_movement(self, movement: MovementRecord) -> AuditEntry:
        """Record an observed movement."""
        entry = AuditEntry(movement.time, AuditEntryKind.MOVEMENT, movement.subject, movement)
        self._entries.append(entry)
        return entry

    def record_alert(self, alert: Alert) -> AuditEntry:
        """Record a security alert."""
        entry = AuditEntry(alert.time, AuditEntryKind.ALERT, alert.subject, alert)
        self._entries.append(entry)
        return entry

    def record_derivation(self, time: int, subject: str, description: str) -> AuditEntry:
        """Record a rule-derivation action (free-text description)."""
        entry = AuditEntry(time, AuditEntryKind.DERIVATION, subject_name(subject), description)
        self._entries.append(entry)
        return entry

    def record_note(self, time: int, subject: str, description: str) -> AuditEntry:
        """Record a free-text operational note (e.g. an anomaly worth keeping)."""
        entry = AuditEntry(time, AuditEntryKind.NOTE, subject_name(subject), description)
        self._entries.append(entry)
        return entry

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    @property
    def entries(self) -> Tuple[AuditEntry, ...]:
        """Every audit entry, in append order."""
        return tuple(self._entries)

    def of_kind(self, kind: AuditEntryKind) -> List[AuditEntry]:
        """Entries of one kind."""
        wanted = AuditEntryKind(kind)
        return [entry for entry in self._entries if entry.kind is wanted]

    def for_subject(self, subject: str) -> List[AuditEntry]:
        """Entries concerning one subject."""
        wanted = subject_name(subject)
        return [entry for entry in self._entries if entry.subject == wanted]

    def within(self, window: TimeInterval) -> List[AuditEntry]:
        """Entries whose time lies inside *window*."""
        return [entry for entry in self._entries if window.contains(entry.time)]

    def decisions(self, *, granted: Optional[bool] = None) -> List[AccessDecision]:
        """All recorded decisions, optionally filtered by outcome."""
        found = [entry.payload for entry in self.of_kind(AuditEntryKind.DECISION)]
        decisions = [payload for payload in found if isinstance(payload, AccessDecision)]
        if granted is None:
            return decisions
        return [decision for decision in decisions if decision.granted is granted]

    def alerts(self) -> List[Alert]:
        """All recorded alerts."""
        return [entry.payload for entry in self.of_kind(AuditEntryKind.ALERT) if isinstance(entry.payload, Alert)]

    def counts(self) -> Dict[AuditEntryKind, int]:
        """Number of entries per kind."""
        result: Dict[AuditEntryKind, int] = {}
        for entry in self._entries:
            result[entry.kind] = result.get(entry.kind, 0) + 1
        return result

    def clear(self) -> None:
        """Remove every entry."""
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[AuditEntry]:
        return iter(self._entries)
