"""Security alerts raised by the movement monitor.

The paper motivates continuous monitoring with exactly these situations: a
group of users entering on a single authorization (tailgating → unauthorized
entry), a user failing to leave during the exit duration (*"a warning signal
to the security guards will be generated"* → overstay), and leaving outside
the permitted exit window.  Alerts are plain value objects delivered to an
:class:`AlertSink`, which collects them and optionally forwards them to
callbacks (a real deployment would page the guards; the tests and benchmarks
inspect the collected list).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.core.subjects import subject_name
from repro.locations.location import location_name

__all__ = ["AlertKind", "Alert", "AlertSink"]


class AlertKind(str, Enum):
    """Classification of security alerts."""

    #: A subject was observed entering a location without a valid authorization
    #: (covers tailgating behind an authorized user).
    UNAUTHORIZED_ENTRY = "unauthorized_entry"
    #: A subject is still inside a location after its exit duration has closed.
    OVERSTAY = "overstay"
    #: A subject left a location at a time outside the authorized exit duration.
    EXIT_OUTSIDE_DURATION = "exit_outside_duration"
    #: An access request was denied (informational; useful for auditing).
    DENIED_REQUEST = "denied_request"
    #: A subject was observed exiting a location it was never observed entering.
    UNTRACKED_EXIT = "untracked_exit"
    #: A location holds more occupants than its configured capacity limit.
    OVER_CAPACITY = "over_capacity"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class Alert:
    """One security alert."""

    time: int
    kind: AlertKind
    subject: str
    location: str
    message: str = ""
    authorization_id: Optional[str] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "subject", subject_name(self.subject))
        object.__setattr__(self, "location", location_name(self.location))
        object.__setattr__(self, "kind", AlertKind(self.kind))

    def __str__(self) -> str:
        suffix = f" — {self.message}" if self.message else ""
        return f"[t={self.time}] {self.kind.value}: {self.subject} @ {self.location}{suffix}"


class AlertSink:
    """Collects alerts and fans them out to registered callbacks."""

    def __init__(self) -> None:
        self._alerts: List[Alert] = []
        self._callbacks: List[Callable[[Alert], None]] = []

    def emit(self, alert: Alert) -> Alert:
        """Record *alert* and notify the callbacks."""
        self._alerts.append(alert)
        for callback in list(self._callbacks):
            callback(alert)
        return alert

    def subscribe(self, callback: Callable[[Alert], None]) -> None:
        """Register *callback* to be invoked for every future alert."""
        self._callbacks.append(callback)

    @property
    def alerts(self) -> Tuple[Alert, ...]:
        """All alerts emitted so far, in order."""
        return tuple(self._alerts)

    def of_kind(self, kind: AlertKind) -> List[Alert]:
        """Alerts of one kind."""
        return [alert for alert in self._alerts if alert.kind is AlertKind(kind)]

    def for_subject(self, subject: str) -> List[Alert]:
        """Alerts concerning one subject."""
        wanted = subject_name(subject)
        return [alert for alert in self._alerts if alert.subject == wanted]

    def counts_by_kind(self) -> Dict[AlertKind, int]:
        """Number of alerts per kind."""
        counts: Dict[AlertKind, int] = {}
        for alert in self._alerts:
            counts[alert.kind] = counts.get(alert.kind, 0) + 1
        return counts

    def extract_for(self, subjects: Iterable[str]) -> List[Alert]:
        """Remove and return every alert concerning *subjects*, in order.

        The partition-handoff path: when subjects migrate to another
        partition their alert history travels with them (see
        :meth:`adopt`), so ``VIOLATIONS FOR s`` keeps answering identically
        no matter which partition now owns *s* — and the source stops
        reporting violations for subjects it no longer serves.
        """
        wanted = {subject_name(s) for s in subjects}
        extracted = [alert for alert in self._alerts if alert.subject in wanted]
        if extracted:
            self._alerts[:] = [a for a in self._alerts if a.subject not in wanted]
        return extracted

    def adopt(self, alerts: Iterable[Alert]) -> int:
        """Fold alerts handed off by another partition into this sink.

        Adopted alerts are appended and the sink is re-sorted by time
        (Python's stable sort keeps same-time alerts in emit order within
        each origin), so ``VIOLATIONS`` reads remain deterministic across a
        migration.  Callbacks are *not* re-fired — these alerts already
        paged whoever they were going to page on the partition that raised
        them.
        """
        adopted = list(alerts)
        if adopted:
            self._alerts.extend(adopted)
            self._alerts.sort(key=lambda alert: alert.time)
        return len(adopted)

    def prune_before(self, time: Optional[int]) -> int:
        """Drop alerts raised strictly before *time*; returns how many.

        Alert retention follows archive pruning: when
        :meth:`~repro.storage.movement_db.MovementDatabase.prune_archive`
        drops a movement era, the alerts attesting to it point at history
        that can no longer be replayed — a scheduled
        :class:`~repro.storage.ingest.CheckpointPolicy` passes the store's
        ``oldest_retained_time`` here so ``VIOLATIONS`` never outlives the
        movements it reports on.  ``None`` is a no-op (nothing was pruned).
        """
        if time is None:
            return 0
        kept = [alert for alert in self._alerts if alert.time >= time]
        dropped = len(self._alerts) - len(kept)
        if dropped:
            self._alerts[:] = kept
        return dropped

    def clear(self) -> None:
        """Forget every collected alert (callbacks stay registered)."""
        self._alerts.clear()

    def __len__(self) -> int:
        return len(self._alerts)

    def __iter__(self):
        return iter(self._alerts)
