"""Continuous movement monitoring.

The first bullet of the paper's introduction distinguishes LTAM from existing
card-reader systems: *"The existing systems only enforce access control upon
access requests while LTAM monitors the user movement at all times.  This
eliminates situation where a group of users enters a restricted location
based on a single user authorization."*

:class:`MovementMonitor` consumes the movement observations produced by the
tracking substrate (or directly by tests/simulations), keeps occupancy
sessions, and raises alerts for:

* **unauthorized entry** — a subject observed inside a location with no valid
  authorization at that time (tailgating, door held open, forced entry);
* **exit outside the exit duration** — leaving earlier or later than the
  authorized exit window;
* **overstay** — still inside after the exit window has closed (checked by
  :meth:`check_overstays`, which the engine calls on every clock tick).

Observed entries also consume the authorization's entry budget by being
recorded in the movement database.
"""

from __future__ import annotations

import threading
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.core.authorization import LocationTemporalAuthorization, UNLIMITED_ENTRIES
from repro.core.subjects import subject_name
from repro.engine.alerts import Alert, AlertKind, AlertSink
from repro.engine.session import OccupancySession, SessionTable
from repro.locations.location import location_name
from repro.storage.authorization_db import AuthorizationDatabase
from repro.storage.movement_db import MovementDatabase, MovementKind, MovementRecord

__all__ = ["MovementMonitor"]


class MovementMonitor:
    """Watch movement observations and raise security alerts.

    Parameters
    ----------
    authorization_db:
        Source of authorizations used to judge observed movements.
    movement_db:
        Movement history store; every observation is recorded here (this is
        also what makes entry counting work).
    alert_sink:
        Destination for raised alerts; a fresh sink is created when omitted.
    """

    def __init__(
        self,
        authorization_db: AuthorizationDatabase,
        movement_db: MovementDatabase,
        alert_sink: Optional[AlertSink] = None,
    ) -> None:
        self._authorization_db = authorization_db
        self._movement_db = movement_db
        self._alerts = alert_sink if alert_sink is not None else AlertSink()
        self._sessions = SessionTable()
        # Observation handling mutates the session table and the movement
        # store together; the streaming observe path runs it from a
        # background writer thread, so the monitor serializes on this lock
        # (reentrant: observe_many wraps the per-record handlers).
        self._observe_lock = threading.RLock()
        #: subjects already flagged for overstaying their current session, so
        #: repeated ticks do not re-alert for the same stay.
        self._overstay_flagged: set = set()
        #: optional occupancy limits per location (extension: the paper's
        #: future-work item of "more access constraints").
        self._capacity_limits: dict = {}

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #
    @property
    def alert_sink(self) -> AlertSink:
        """The sink collecting this monitor's alerts."""
        return self._alerts

    @property
    def sessions(self) -> SessionTable:
        """The occupancy session table."""
        return self._sessions

    def set_capacity(self, location: str, limit: int) -> None:
        """Set an occupancy limit for *location*; entries beyond it raise alerts."""
        if not isinstance(limit, int) or isinstance(limit, bool) or limit < 1:
            raise ValueError(f"capacity limit must be a positive integer, got {limit!r}")
        self._capacity_limits[location_name(location)] = limit

    def capacity_of(self, location: str) -> Optional[int]:
        """The configured occupancy limit of *location*, or ``None``."""
        return self._capacity_limits.get(location_name(location))

    # ------------------------------------------------------------------ #
    # Observation handling
    # ------------------------------------------------------------------ #
    def observe(self, record: MovementRecord) -> List[Alert]:
        """Process one movement observation, returning any alerts raised."""
        if record.kind is MovementKind.ENTER:
            return self.observe_entry(record.time, record.subject, record.location)
        return self.observe_exit(record.time, record.subject, record.location)

    def observe_many(self, records: Iterable[MovementRecord], *, on_record=None) -> List[Alert]:
        """Process a batch of observations inside one storage transaction.

        Alert logic runs record by record (entry counting must see each
        prior entry), but every movement write lands in a single
        :meth:`~repro.storage.movement_db.MovementDatabase.bulk` scope — one
        commit on the SQLite backend instead of one per observation.
        *on_record*, when given, runs after each observation inside the same
        scope (the enforcement point hangs its per-record audit on it).
        """
        alerts: List[Alert] = []
        with self._observe_lock:
            with self._movement_db.bulk():
                for record in records:
                    alerts.extend(self.observe(record))
                    if on_record is not None:
                        on_record(record)
        return alerts

    def observe_entry(self, time: int, subject: str, location: str) -> List[Alert]:
        """Process an observed entry of *subject* into *location* at *time*."""
        with self._observe_lock:
            return self._observe_entry(time, subject, location)

    def _observe_entry(self, time: int, subject: str, location: str) -> List[Alert]:
        subject = subject_name(subject)
        location = location_name(location)
        alerts: List[Alert] = []

        authorization = self._admitting_authorization(time, subject, location)
        if authorization is None:
            alerts.append(
                self._alerts.emit(
                    Alert(
                        time,
                        AlertKind.UNAUTHORIZED_ENTRY,
                        subject,
                        location,
                        "entered without a valid authorization",
                    )
                )
            )
        # Record the movement regardless of authorization: the database holds
        # the observed truth, and the entry count must reflect actual entries.
        self._movement_db.record_entry(time, subject, location)
        self._sessions.open(subject, location, time, authorization)
        self._overstay_flagged.discard(subject)

        limit = self._capacity_limits.get(location)
        if limit is not None:
            occupants = len(self._sessions.occupants(location))
            if occupants > limit:
                alerts.append(
                    self._alerts.emit(
                        Alert(
                            time,
                            AlertKind.OVER_CAPACITY,
                            subject,
                            location,
                            f"{occupants} occupants exceed the capacity limit of {limit}",
                        )
                    )
                )
        return alerts

    def observe_exit(self, time: int, subject: str, location: str) -> List[Alert]:
        """Process an observed exit of *subject* from *location* at *time*."""
        with self._observe_lock:
            return self._observe_exit(time, subject, location)

    def _observe_exit(self, time: int, subject: str, location: str) -> List[Alert]:
        subject = subject_name(subject)
        location = location_name(location)
        alerts: List[Alert] = []

        session = self._sessions.current(subject)
        if session is None or session.location != location:
            alerts.append(
                self._alerts.emit(
                    Alert(
                        time,
                        AlertKind.UNTRACKED_EXIT,
                        subject,
                        location,
                        "exit observed without a matching entry",
                    )
                )
            )
        else:
            authorization = session.authorization
            if authorization is not None and not authorization.permits_exit_at(time):
                alerts.append(
                    self._alerts.emit(
                        Alert(
                            time,
                            AlertKind.EXIT_OUTSIDE_DURATION,
                            subject,
                            location,
                            f"exit at {time} is outside the exit duration {authorization.exit_duration}",
                            authorization_id=authorization.auth_id,
                        )
                    )
                )
            self._sessions.close(subject, time)
        self._movement_db.record_exit(time, subject, location)
        self._overstay_flagged.discard(subject)
        return alerts

    # ------------------------------------------------------------------ #
    # Partition handoff
    # ------------------------------------------------------------------ #
    def export_sessions(self, subjects: Iterable[str]) -> List[Tuple]:
        """The open-session state of *subjects*, for partition migration.

        Returns ``(subject, location, entered_at, auth_id, overstay_flagged)``
        tuples — everything another monitor needs to keep judging the stay
        (exit matching, exit-window checks, overstay sweeps) as if it had
        observed the entry itself.  Closed-session history stays behind:
        it is local diagnostics, consulted by no query or alert path.
        """
        wanted = {subject_name(subject) for subject in subjects}
        with self._observe_lock:
            exported = []
            for session in self._sessions.open_sessions():
                if session.subject not in wanted:
                    continue
                authorization = session.authorization
                exported.append(
                    (
                        session.subject,
                        session.location,
                        session.entered_at,
                        authorization.auth_id if authorization is not None else None,
                        session.subject in self._overstay_flagged,
                    )
                )
            return exported

    def adopt_session(
        self,
        subject: str,
        location: str,
        entered_at: int,
        authorization: Optional[LocationTemporalAuthorization] = None,
        *,
        overstay_flagged: bool = False,
    ) -> OccupancySession:
        """Install a migrated subject's open session without observing it.

        The entry was already recorded and judged on the source partition —
        no movement is written and no alert is raised here; the overstay
        flag travels so an already-reported overstay is not re-alerted.
        """
        with self._observe_lock:
            session = self._sessions.open(subject, location, entered_at, authorization)
            if overstay_flagged:
                self._overstay_flagged.add(session.subject)
            return session

    def drop_sessions(self, subjects: Iterable[str]) -> None:
        """Discard *subjects*' session state after they migrated away."""
        with self._observe_lock:
            for subject in subjects:
                name = subject_name(subject)
                self._sessions.forget(name)
                self._overstay_flagged.discard(name)

    def check_overstays(self, now: int) -> List[Alert]:
        """Raise an overstay alert for every open session past its exit window."""
        with self._observe_lock:
            return self._check_overstays(now)

    def _check_overstays(self, now: int) -> List[Alert]:
        """The overstay sweep, run under the observation lock."""
        alerts: List[Alert] = []
        for session in self._sessions.open_sessions():
            if session.subject in self._overstay_flagged:
                continue
            if session.overstayed_at(now):
                authorization = session.authorization
                alerts.append(
                    self._alerts.emit(
                        Alert(
                            now,
                            AlertKind.OVERSTAY,
                            session.subject,
                            session.location,
                            "still inside after the exit duration closed",
                            authorization_id=authorization.auth_id if authorization else None,
                        )
                    )
                )
                self._overstay_flagged.add(session.subject)
        return alerts

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _admitting_authorization(
        self, time: int, subject: str, location: str
    ) -> Optional[LocationTemporalAuthorization]:
        """The authorization under which an observed entry is legitimate.

        Mirrors Definition 7: the entry duration must contain *time* and the
        entry budget must not be exhausted (entries are counted within the
        authorization's entry duration, excluding the entry being processed).
        """
        candidates = self._authorization_db.for_subject_location(subject, location)
        best: Optional[LocationTemporalAuthorization] = None
        for authorization in candidates:
            if not authorization.permits_entry_at(time):
                continue
            used = self._movement_db.entry_count(subject, location, authorization.entry_duration)
            remaining = authorization.entries_remaining(used)
            if remaining is UNLIMITED_ENTRIES or int(remaining) > 0:
                if best is None or _prefer(authorization, best):
                    best = authorization
        return best


def _prefer(candidate: LocationTemporalAuthorization, incumbent: LocationTemporalAuthorization) -> bool:
    """Prefer the authorization with the later exit deadline (more permissive stay)."""
    candidate_end = candidate.exit_duration.end
    incumbent_end = incumbent.exit_duration.end
    if candidate_end is incumbent_end:
        return False
    if candidate.exit_duration.is_unbounded:
        return True
    if incumbent.exit_duration.is_unbounded:
        return False
    return int(candidate_end) > int(incumbent_end)
