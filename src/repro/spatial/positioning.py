"""Simulated positioning and tracking infrastructure.

The paper assumes an RFID-like tracking infrastructure: *"The ability of user
tracking is also assumed in this research."*  Physical readers are hardware
we do not have, so this module provides the closest synthetic equivalent that
exercises the same code path:

* :class:`PositionFix` — a raw (subject, point, time) observation, optionally
  noisy, as a positioning system would emit;
* :class:`RfidReader` / :class:`ReaderEvent` — door-mounted readers that
  report subjects crossing between two locations;
* :class:`TrackingSimulator` — converts a sequence of position fixes into the
  ENTER/EXIT movement events the enforcement engine consumes, by resolving
  fixes against a :class:`~repro.spatial.boundary.BoundaryMap` and detecting
  location changes.

The enforcement pipeline downstream of this module (movement database,
monitor, alerts) is identical to what real hardware would drive; only the
source of observations is synthetic.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.errors import SpatialError
from repro.locations.location import LocationName, location_name
from repro.spatial.boundary import BoundaryMap
from repro.spatial.geometry import Point

__all__ = [
    "PositionFix",
    "ReaderEvent",
    "RfidReader",
    "LocationObservation",
    "TrackingSimulator",
    "GaussianNoiseModel",
]


@dataclass(frozen=True)
class PositionFix:
    """A raw positioning observation: *subject* was at *point* at *time*."""

    time: int
    subject: str
    point: Point

    def __post_init__(self) -> None:
        if self.time < 0:
            raise SpatialError(f"position fix time must be non-negative, got {self.time}")


@dataclass(frozen=True)
class LocationObservation:
    """A position fix resolved to a semantic location (or ``None`` when outside)."""

    time: int
    subject: str
    location: Optional[LocationName]


@dataclass(frozen=True)
class ReaderEvent:
    """An event emitted by a door reader: *subject* crossed from one side to the other."""

    time: int
    subject: str
    reader_id: str
    from_location: Optional[LocationName]
    to_location: Optional[LocationName]


@dataclass(frozen=True)
class RfidReader:
    """A door-mounted reader between two locations (either side may be outdoors)."""

    reader_id: str
    side_a: Optional[LocationName]
    side_b: Optional[LocationName]

    def __post_init__(self) -> None:
        if self.side_a is None and self.side_b is None:
            raise SpatialError("a reader must be attached to at least one location")

    def crossing(self, time: int, subject: str, entering_side_b: bool) -> ReaderEvent:
        """Build the event for a subject crossing the reader.

        *entering_side_b* is ``True`` when the subject moves from side A to
        side B, ``False`` for the opposite direction.
        """
        if entering_side_b:
            return ReaderEvent(time, subject, self.reader_id, self.side_a, self.side_b)
        return ReaderEvent(time, subject, self.reader_id, self.side_b, self.side_a)


@dataclass(frozen=True)
class GaussianNoiseModel:
    """Additive Gaussian noise applied to position fixes (metres of std-dev)."""

    sigma: float = 0.0

    def __post_init__(self) -> None:
        if self.sigma < 0:
            raise SpatialError("noise sigma must be non-negative")

    def perturb(self, point: Point, rng: random.Random) -> Point:
        """Return *point* displaced by zero-mean Gaussian noise."""
        if self.sigma == 0.0:
            return point
        return Point(point.x + rng.gauss(0.0, self.sigma), point.y + rng.gauss(0.0, self.sigma))


class TrackingSimulator:
    """Resolve position fixes to locations and derive movement transitions.

    Parameters
    ----------
    boundary_map:
        Mapping from coordinates to locations.
    noise:
        Optional noise model applied to every fix before resolution.
    seed:
        Seed for the noise RNG (deterministic by default).
    """

    def __init__(
        self,
        boundary_map: BoundaryMap,
        *,
        noise: GaussianNoiseModel = GaussianNoiseModel(0.0),
        seed: int = 0,
    ) -> None:
        self._boundary_map = boundary_map
        self._noise = noise
        self._rng = random.Random(seed)
        #: last known location per subject (None = outside every boundary)
        self._last_location: Dict[str, Optional[LocationName]] = {}

    @property
    def boundary_map(self) -> BoundaryMap:
        """The boundary map used to resolve fixes."""
        return self._boundary_map

    def resolve(self, fix: PositionFix) -> LocationObservation:
        """Resolve a single fix to a semantic location observation."""
        observed_point = self._noise.perturb(fix.point, self._rng)
        location = self._boundary_map.locate(observed_point)
        return LocationObservation(fix.time, fix.subject, location)

    def transitions(self, fixes: Iterable[PositionFix]) -> Iterator[Tuple[LocationObservation, Optional[LocationName]]]:
        """Yield ``(observation, previous_location)`` for fixes that change location.

        The previous location is ``None`` when the subject had not been
        observed before or was outside every boundary.
        """
        for fix in sorted(fixes, key=lambda f: (f.time, f.subject)):
            observation = self.resolve(fix)
            previous = self._last_location.get(fix.subject)
            if observation.location != previous:
                self._last_location[fix.subject] = observation.location
                yield observation, previous

    def current_location(self, subject: str) -> Optional[LocationName]:
        """Last location the subject was resolved to, or ``None``."""
        return self._last_location.get(subject)

    def fixes_for_path(
        self,
        subject: str,
        locations: Sequence[str],
        *,
        start_time: int = 0,
        dwell: int = 1,
    ) -> List[PositionFix]:
        """Fabricate position fixes that walk *subject* through *locations*.

        Each visited location contributes one fix at its boundary centroid,
        *dwell* chronons after the previous one.  This is the bridge the
        simulator and the examples use to turn an intended walk into the raw
        observations the tracking pipeline expects.
        """
        if dwell <= 0:
            raise SpatialError("dwell must be positive")
        fixes: List[PositionFix] = []
        time = start_time
        for loc in locations:
            name = location_name(loc)
            fixes.append(PositionFix(time, subject, self._boundary_map.center_of(name)))
            time += dwell
        return fixes
