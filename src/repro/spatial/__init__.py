"""Spatial substrate: geometry, location boundaries, simulated positioning.

The paper assumes locations have absolute spatial coordinates and that an
RFID-like infrastructure tracks user movement.  This package supplies a
pure-Python geometric model, a boundary registry mapping coordinates to
semantic locations, and a tracking simulator standing in for the positioning
hardware (see DESIGN.md, substitutions).
"""

from repro.spatial.boundary import BoundaryMap, grid_boundaries
from repro.spatial.geometry import Point, Polygon, Rectangle
from repro.spatial.positioning import (
    GaussianNoiseModel,
    LocationObservation,
    PositionFix,
    ReaderEvent,
    RfidReader,
    TrackingSimulator,
)

__all__ = [
    "Point",
    "Polygon",
    "Rectangle",
    "BoundaryMap",
    "grid_boundaries",
    "PositionFix",
    "LocationObservation",
    "ReaderEvent",
    "RfidReader",
    "TrackingSimulator",
    "GaussianNoiseModel",
]
