"""Minimal 2-D geometry for physical location boundaries.

Section 3.1: *"When represented physically, a location is described by its
absolute spatial coordinates.  The physical location information are used to
define the spatial boundaries of location so that it is possible to track
users in different locations."*

The reproduction does not depend on an external geometry package; this module
provides exactly the primitives the tracking substrate needs: points,
axis-aligned rectangles and simple polygons with point-in-polygon tests
(ray casting, with boundary points counted as inside, which is the right
convention for "is the user inside this room").
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

from repro.errors import SpatialError

__all__ = ["Point", "Rectangle", "Polygon"]


@dataclass(frozen=True, order=True)
class Point:
    """A point in the building's absolute coordinate system (metres)."""

    x: float
    y: float

    def distance_to(self, other: "Point") -> float:
        """Euclidean distance to *other*."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def translate(self, dx: float, dy: float) -> "Point":
        """Return the point shifted by ``(dx, dy)``."""
        return Point(self.x + dx, self.y + dy)

    def as_tuple(self) -> Tuple[float, float]:
        """Return ``(x, y)``."""
        return (self.x, self.y)

    def __str__(self) -> str:
        return f"({self.x:g}, {self.y:g})"


@dataclass(frozen=True)
class Rectangle:
    """An axis-aligned rectangle, the common shape of rooms in floor plans."""

    min_x: float
    min_y: float
    max_x: float
    max_y: float

    def __post_init__(self) -> None:
        if self.max_x < self.min_x or self.max_y < self.min_y:
            raise SpatialError(
                f"rectangle extents are inverted: "
                f"[{self.min_x}, {self.max_x}] x [{self.min_y}, {self.max_y}]"
            )

    @classmethod
    def from_corner_and_size(cls, corner: Point, width: float, height: float) -> "Rectangle":
        """Build a rectangle from its lower-left corner and its dimensions."""
        if width < 0 or height < 0:
            raise SpatialError("rectangle width and height must be non-negative")
        return cls(corner.x, corner.y, corner.x + width, corner.y + height)

    @property
    def width(self) -> float:
        return self.max_x - self.min_x

    @property
    def height(self) -> float:
        return self.max_y - self.min_y

    @property
    def area(self) -> float:
        """Area of the rectangle."""
        return self.width * self.height

    @property
    def center(self) -> Point:
        """Centroid of the rectangle."""
        return Point((self.min_x + self.max_x) / 2.0, (self.min_y + self.max_y) / 2.0)

    def contains(self, point: Point) -> bool:
        """Return ``True`` if *point* lies inside or on the boundary."""
        return self.min_x <= point.x <= self.max_x and self.min_y <= point.y <= self.max_y

    __contains__ = contains

    def intersects(self, other: "Rectangle") -> bool:
        """Return ``True`` if the two rectangles share any area or boundary."""
        return not (
            other.min_x > self.max_x
            or other.max_x < self.min_x
            or other.min_y > self.max_y
            or other.max_y < self.min_y
        )

    def to_polygon(self) -> "Polygon":
        """Return the rectangle as a :class:`Polygon` (counter-clockwise)."""
        return Polygon(
            (
                Point(self.min_x, self.min_y),
                Point(self.max_x, self.min_y),
                Point(self.max_x, self.max_y),
                Point(self.min_x, self.max_y),
            )
        )


class Polygon:
    """A simple polygon given by its vertices in order (no self-intersections).

    Point containment uses ray casting with an explicit edge test so that
    points exactly on the boundary are treated as inside.
    """

    __slots__ = ("_vertices",)

    def __init__(self, vertices: Iterable[Point]) -> None:
        verts = tuple(
            v if isinstance(v, Point) else Point(float(v[0]), float(v[1])) for v in vertices
        )
        if len(verts) < 3:
            raise SpatialError(f"a polygon needs at least 3 vertices, got {len(verts)}")
        self._vertices = verts

    @property
    def vertices(self) -> Tuple[Point, ...]:
        """The polygon's vertices in order."""
        return self._vertices

    @property
    def area(self) -> float:
        """Unsigned area (shoelace formula)."""
        return abs(self._signed_area())

    def _signed_area(self) -> float:
        total = 0.0
        verts = self._vertices
        for i, current in enumerate(verts):
            following = verts[(i + 1) % len(verts)]
            total += current.x * following.y - following.x * current.y
        return total / 2.0

    @property
    def centroid(self) -> Point:
        """Centroid of the polygon (falls back to vertex mean for zero area)."""
        signed = self._signed_area()
        if abs(signed) < 1e-12:
            xs = sum(v.x for v in self._vertices) / len(self._vertices)
            ys = sum(v.y for v in self._vertices) / len(self._vertices)
            return Point(xs, ys)
        cx = cy = 0.0
        verts = self._vertices
        for i, current in enumerate(verts):
            following = verts[(i + 1) % len(verts)]
            cross = current.x * following.y - following.x * current.y
            cx += (current.x + following.x) * cross
            cy += (current.y + following.y) * cross
        factor = 1.0 / (6.0 * signed)
        return Point(cx * factor, cy * factor)

    def bounding_box(self) -> Rectangle:
        """Axis-aligned bounding rectangle of the polygon."""
        xs = [v.x for v in self._vertices]
        ys = [v.y for v in self._vertices]
        return Rectangle(min(xs), min(ys), max(xs), max(ys))

    def contains(self, point: Point) -> bool:
        """Return ``True`` if *point* is inside the polygon or on its boundary."""
        if self._on_boundary(point):
            return True
        inside = False
        verts = self._vertices
        n = len(verts)
        j = n - 1
        for i in range(n):
            vi, vj = verts[i], verts[j]
            intersects = (vi.y > point.y) != (vj.y > point.y)
            if intersects:
                x_cross = (vj.x - vi.x) * (point.y - vi.y) / (vj.y - vi.y) + vi.x
                if point.x < x_cross:
                    inside = not inside
            j = i
        return inside

    __contains__ = contains

    def _on_boundary(self, point: Point, tolerance: float = 1e-9) -> bool:
        verts = self._vertices
        n = len(verts)
        for i in range(n):
            a, b = verts[i], verts[(i + 1) % n]
            if _point_on_segment(point, a, b, tolerance):
                return True
        return False

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Polygon):
            return self._vertices == other._vertices
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._vertices)

    def __repr__(self) -> str:
        return f"Polygon({len(self._vertices)} vertices, area={self.area:.2f})"


def _point_on_segment(p: Point, a: Point, b: Point, tolerance: float) -> bool:
    cross = (b.x - a.x) * (p.y - a.y) - (b.y - a.y) * (p.x - a.x)
    if abs(cross) > tolerance:
        return False
    dot = (p.x - a.x) * (b.x - a.x) + (p.y - a.y) * (b.y - a.y)
    if dot < -tolerance:
        return False
    length_sq = (b.x - a.x) ** 2 + (b.y - a.y) ** 2
    return dot <= length_sq + tolerance
