"""Mapping between physical coordinates and semantic locations.

A :class:`BoundaryMap` associates each primitive location with a spatial
boundary (rectangle or polygon) in the building's coordinate system and
answers the question the tracking infrastructure needs: *given a position
fix, which location is the user in?*  This realizes the paper's statement
that physical location information defines the spatial boundaries used to
track users in different locations (Section 3.1).
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional, Tuple, Union

from repro.errors import SpatialError, UnknownLocationError
from repro.locations.location import LocationName, location_name
from repro.locations.multilevel import LocationHierarchy
from repro.spatial.geometry import Point, Polygon, Rectangle

__all__ = ["BoundaryMap", "grid_boundaries"]

Boundary = Union[Rectangle, Polygon]


class BoundaryMap:
    """Registry of spatial boundaries for primitive locations.

    Parameters
    ----------
    hierarchy:
        Optional location hierarchy.  When given, registrations are checked
        against it so that a boundary can only be attached to a known
        primitive location, and :meth:`coverage` can report which locations
        are still missing a boundary.
    """

    def __init__(self, hierarchy: Optional[LocationHierarchy] = None) -> None:
        self._hierarchy = hierarchy
        self._boundaries: Dict[LocationName, Boundary] = {}

    # ------------------------------------------------------------------ #
    # Registration
    # ------------------------------------------------------------------ #
    def register(self, location: str, boundary: Boundary) -> None:
        """Attach *boundary* to *location*, replacing any previous boundary."""
        name = location_name(location)
        if self._hierarchy is not None and not self._hierarchy.is_primitive(name):
            raise UnknownLocationError(
                f"cannot attach a boundary to {name!r}: not a primitive location of the hierarchy"
            )
        if not isinstance(boundary, (Rectangle, Polygon)):
            raise SpatialError(
                f"boundary must be a Rectangle or Polygon, got {type(boundary).__name__}"
            )
        self._boundaries[name] = boundary

    def register_all(self, boundaries: Mapping[str, Boundary]) -> None:
        """Attach several boundaries at once."""
        for name, boundary in boundaries.items():
            self.register(name, boundary)

    # ------------------------------------------------------------------ #
    # Lookup
    # ------------------------------------------------------------------ #
    def boundary_of(self, location: str) -> Boundary:
        """Return the boundary registered for *location*."""
        name = location_name(location)
        try:
            return self._boundaries[name]
        except KeyError:
            raise UnknownLocationError(f"no boundary registered for location {name!r}") from None

    def has_boundary(self, location: str) -> bool:
        """Return ``True`` if a boundary is registered for *location*."""
        return location_name(location) in self._boundaries

    def locate(self, point: Point) -> Optional[LocationName]:
        """Return the location whose boundary contains *point*, or ``None``.

        When boundaries overlap (e.g. a doorway shared by two rooms) the
        location with the smallest boundary area wins, which matches the
        intuition that the most specific room should be reported.
        """
        matches = [
            (name, boundary)
            for name, boundary in self._boundaries.items()
            if boundary.contains(point)
        ]
        if not matches:
            return None
        matches.sort(key=lambda item: (_boundary_area(item[1]), item[0]))
        return matches[0][0]

    def locations(self) -> Tuple[LocationName, ...]:
        """Names of all locations with a registered boundary."""
        return tuple(sorted(self._boundaries))

    def center_of(self, location: str) -> Point:
        """A representative interior point of *location* (centroid of its boundary)."""
        boundary = self.boundary_of(location)
        if isinstance(boundary, Rectangle):
            return boundary.center
        return boundary.centroid

    def coverage(self) -> Tuple[Tuple[LocationName, ...], Tuple[LocationName, ...]]:
        """Return ``(covered, missing)`` location names relative to the hierarchy.

        Without a hierarchy, *missing* is always empty.
        """
        covered = tuple(sorted(self._boundaries))
        if self._hierarchy is None:
            return covered, ()
        missing = tuple(sorted(self._hierarchy.primitive_names - set(self._boundaries)))
        return covered, missing

    def __len__(self) -> int:
        return len(self._boundaries)

    def __contains__(self, location: object) -> bool:
        try:
            return location_name(location) in self._boundaries  # type: ignore[arg-type]
        except Exception:
            return False


def _boundary_area(boundary: Boundary) -> float:
    return boundary.area


def grid_boundaries(
    locations: Iterable[str],
    *,
    cell_size: float = 10.0,
    columns: int = 4,
    origin: Point = Point(0.0, 0.0),
    hierarchy: Optional[LocationHierarchy] = None,
) -> BoundaryMap:
    """Lay the given locations out on a rectangular grid of square rooms.

    This is the standard synthetic floor plan used by the tracking simulator
    and the benchmarks: it makes every location physically realizable without
    requiring hand-drawn geometry.

    Parameters
    ----------
    locations:
        Primitive location names, laid out row-major.
    cell_size:
        Side length of each square room.
    columns:
        Number of rooms per row.
    origin:
        Lower-left corner of the first room.
    hierarchy:
        Optional hierarchy used to validate the location names.
    """
    if cell_size <= 0:
        raise SpatialError("cell_size must be positive")
    if columns <= 0:
        raise SpatialError("columns must be positive")
    boundary_map = BoundaryMap(hierarchy)
    for index, location in enumerate(sorted(location_name(l) for l in locations)):
        row, col = divmod(index, columns)
        corner = Point(origin.x + col * cell_size, origin.y + row * cell_size)
        boundary_map.register(
            location, Rectangle.from_corner_and_size(corner, cell_size, cell_size)
        )
    return boundary_map
