"""Canonical fixtures reproducing the paper's worked examples verbatim.

Every concrete authorization, rule and scenario that appears in the paper's
text is collected here so that tests, benchmarks and EXPERIMENTS.md all refer
to a single source of truth:

* Section 3.2 — the authorization ``([5, 40], [20, 100], (Alice, CAIS), 1)``;
* Section 4 — base authorization ``a1`` and rules ``r1``–``r3`` (Examples
  1–3) plus the expected derived authorizations ``a2`` and ``a3``;
* Section 5 — authorizations ``A1``/``A2`` and the access-request timeline
  for Alice and Bob;
* Section 6 — Table 1's authorization set for the Figure 4 graph, together
  with the final ``T_g``/``T_d`` values of Table 2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.core.authorization import LocationTemporalAuthorization
from repro.core.operators.location import AllRouteFrom, SameLocation
from repro.core.operators.numeric import ConstantEntries
from repro.core.operators.subject import SupervisorOf
from repro.core.operators.temporal import Intersection, Whenever
from repro.core.rules import AuthorizationRule, OperatorTuple
from repro.core.subjects import SubjectDirectory
from repro.locations.layouts import figure4_hierarchy, ntu_campus_hierarchy
from repro.locations.multilevel import LocationHierarchy
from repro.temporal.interval_set import IntervalSet

__all__ = [
    "ALICE",
    "BOB",
    "paper_directory",
    "section32_authorization",
    "example_base_authorization_a1",
    "example_rule_r1",
    "example_rule_r2",
    "example_rule_r3",
    "expected_derived_a2",
    "expected_derived_a3",
    "section5_authorizations",
    "Section5Step",
    "section5_timeline",
    "table1_authorizations",
    "table2_expected_times",
    "figure4_expected_inaccessible",
]

ALICE = "Alice"
BOB = "Bob"


def paper_directory() -> SubjectDirectory:
    """The user profile database of the paper's examples: Bob supervises Alice."""
    directory = SubjectDirectory()
    directory.add_subject(ALICE, display_name="Alice")
    directory.add_subject(BOB, display_name="Bob")
    directory.set_supervisor(ALICE, BOB)
    return directory


# --------------------------------------------------------------------- #
# Section 3.2
# --------------------------------------------------------------------- #
def section32_authorization() -> LocationTemporalAuthorization:
    """``([5, 40], [20, 100], (Alice, CAIS), 1)`` from Section 3.2."""
    return LocationTemporalAuthorization((ALICE, "CAIS"), (5, 40), (20, 100), 1, auth_id="sec32")


# --------------------------------------------------------------------- #
# Section 4 — Examples 1-3
# --------------------------------------------------------------------- #
def example_base_authorization_a1() -> LocationTemporalAuthorization:
    """``a1: ([5, 20], [15, 50], (Alice, CAIS), 2)``."""
    return LocationTemporalAuthorization((ALICE, "CAIS"), (5, 20), (15, 50), 2, auth_id="a1")


def example_rule_r1(base: LocationTemporalAuthorization) -> AuthorizationRule:
    """``r1: ⟨7: a1, (WHENEVER, WHENEVER, Supervisor_Of, CAIS, 2)⟩`` (Example 1)."""
    return AuthorizationRule(
        7,
        base,
        OperatorTuple(
            op_entry=Whenever(),
            op_exit=Whenever(),
            op_subject=SupervisorOf(),
            op_location=SameLocation(),
            exp_n=ConstantEntries(2),
        ),
        rule_id="r1",
        description="Alice's supervisor gets the same authorization on CAIS",
    )


def example_rule_r2(base: LocationTemporalAuthorization) -> AuthorizationRule:
    """``r2: ⟨7: a1, (INTERSECTION([10, 30]), WHENEVER, Supervisor_Of, CAIS, 2)⟩`` (Example 2)."""
    return AuthorizationRule(
        7,
        base,
        OperatorTuple(
            op_entry=Intersection((10, 30)),
            op_exit=Whenever(),
            op_subject=SupervisorOf(),
            op_location=SameLocation(),
            exp_n=ConstantEntries(2),
        ),
        rule_id="r2",
        description="Alice's supervisor may enter CAIS during [10, 30] but only while Alice may",
    )


def example_rule_r3(base: LocationTemporalAuthorization) -> AuthorizationRule:
    """``r3: ⟨7: a1, (WHENEVER, WHENEVER, –, all_route_from(SCE.GO), 2)⟩`` (Example 3)."""
    return AuthorizationRule(
        7,
        base,
        OperatorTuple(
            op_entry=Whenever(),
            op_exit=Whenever(),
            op_location=AllRouteFrom("SCE.GO"),
            exp_n=ConstantEntries(2),
        ),
        rule_id="r3",
        description="grant Alice every location on the route from SCE.GO to CAIS",
    )


def expected_derived_a2() -> LocationTemporalAuthorization:
    """``a2: ([5, 20], [15, 50], (Bob, CAIS), 2)`` — the expected result of r1."""
    return LocationTemporalAuthorization((BOB, "CAIS"), (5, 20), (15, 50), 2, auth_id="a2")


def expected_derived_a3() -> LocationTemporalAuthorization:
    """``a3: ([10, 20], [15, 50], (Bob, CAIS), 2)`` — the expected result of r2."""
    return LocationTemporalAuthorization((BOB, "CAIS"), (10, 20), (15, 50), 2, auth_id="a3")


# --------------------------------------------------------------------- #
# Section 5 — enforcement worked example
# --------------------------------------------------------------------- #
def section5_authorizations() -> List[LocationTemporalAuthorization]:
    """``A1: ([10, 20], [10, 50], (Alice, CAIS), 2)`` and ``A2: ([5, 35], [20, 100], (Bob, CHIPES), 1)``."""
    return [
        LocationTemporalAuthorization((ALICE, "CAIS"), (10, 20), (10, 50), 2, auth_id="A1"),
        LocationTemporalAuthorization((BOB, "CHIPES"), (5, 35), (20, 100), 1, auth_id="A2"),
    ]


@dataclass(frozen=True)
class Section5Step:
    """One step of the Section 5 timeline: either an access request or an exit."""

    time: int
    subject: str
    location: str
    action: str  # "request" or "exit"
    expected_granted: bool | None = None  # None for exits
    note: str = ""


def section5_timeline() -> List[Section5Step]:
    """The request/exit timeline of Section 5, with the paper's expected outcomes."""
    return [
        Section5Step(10, ALICE, "CAIS", "request", True, "granted according to A1"),
        Section5Step(15, BOB, "CAIS", "request", False, "no authorization for Bob on CAIS"),
        Section5Step(16, BOB, "CHIPES", "request", True, "authorized based on A2"),
        Section5Step(20, BOB, "CHIPES", "exit", None, "Bob leaves CHIPES"),
        Section5Step(30, BOB, "CHIPES", "request", False, "Bob has only one entry to CHIPES"),
    ]


# --------------------------------------------------------------------- #
# Section 6 — Table 1, Table 2, Figure 4
# --------------------------------------------------------------------- #
def table1_authorizations() -> List[LocationTemporalAuthorization]:
    """The authorization set of Table 1 (all for Alice on the Figure 4 graph)."""
    return [
        LocationTemporalAuthorization((ALICE, "A"), (2, 35), (20, 50), 1, auth_id="T1-A"),
        LocationTemporalAuthorization((ALICE, "B"), (40, 60), (55, 80), 1, auth_id="T1-B"),
        LocationTemporalAuthorization((ALICE, "C"), (38, 45), (70, 90), 1, auth_id="T1-C"),
        LocationTemporalAuthorization((ALICE, "D"), (5, 25), (10, 30), 1, auth_id="T1-D"),
    ]


def table2_expected_times() -> Dict[str, Tuple[IntervalSet, IntervalSet]]:
    """Final ``(T_g, T_d)`` per location from the last row of Table 2."""
    return {
        "A": (IntervalSet([(2, 35)]), IntervalSet([(20, 50)])),
        "B": (IntervalSet([(40, 50)]), IntervalSet([(55, 80)])),
        "C": (IntervalSet.empty(), IntervalSet.empty()),
        "D": (IntervalSet([(20, 25)]), IntervalSet([(20, 30)])),
    }


def figure4_expected_inaccessible() -> frozenset:
    """The paper's conclusion: only location C is inaccessible to Alice."""
    return frozenset({"C"})
