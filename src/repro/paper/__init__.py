"""Canonical fixtures for the paper's figures, tables and worked examples."""

from repro.paper.fixtures import (
    ALICE,
    BOB,
    Section5Step,
    example_base_authorization_a1,
    example_rule_r1,
    example_rule_r2,
    example_rule_r3,
    expected_derived_a2,
    expected_derived_a3,
    figure4_expected_inaccessible,
    paper_directory,
    section32_authorization,
    section5_authorizations,
    section5_timeline,
    table1_authorizations,
    table2_expected_times,
)

__all__ = [
    "ALICE",
    "BOB",
    "Section5Step",
    "paper_directory",
    "section32_authorization",
    "example_base_authorization_a1",
    "example_rule_r1",
    "example_rule_r2",
    "example_rule_r3",
    "expected_derived_a2",
    "expected_derived_a3",
    "section5_authorizations",
    "section5_timeline",
    "table1_authorizations",
    "table2_expected_times",
    "figure4_expected_inaccessible",
]
