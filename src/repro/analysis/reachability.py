"""Reachability and coverage analysis across subjects.

Administrators use Algorithm 1 to audit an authorization database: *"to
ensure that a subject can visit a location, one should check that the
location is not inaccessible instead of just defining the authorizations for
that location"* (Section 6).  This module aggregates the per-subject
:class:`~repro.core.accessibility.AccessibilityReport` objects into the
reports an administrator actually reads: which locations each subject can
reach, which locations nobody can reach (dead space), and how much of the
building each subject's authorization set really covers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Mapping, Sequence, Tuple

from repro.core.accessibility import AccessibilityReport, find_inaccessible
from repro.core.grant import AuthSource
from repro.locations.multilevel import LocationHierarchy

__all__ = ["SubjectReachability", "ReachabilityMatrix", "build_reachability_matrix"]


@dataclass(frozen=True)
class SubjectReachability:
    """One subject's reachability summary."""

    subject: str
    accessible: FrozenSet[str]
    inaccessible: FrozenSet[str]

    @property
    def coverage(self) -> float:
        """Fraction of the building's locations the subject can reach."""
        total = len(self.accessible) + len(self.inaccessible)
        return len(self.accessible) / total if total else 0.0


@dataclass(frozen=True)
class ReachabilityMatrix:
    """Reachability of every analysed subject over one hierarchy."""

    hierarchy_name: str
    locations: Tuple[str, ...]
    per_subject: Mapping[str, SubjectReachability]

    def reachable_by(self, location: str) -> List[str]:
        """Subjects that can reach *location*."""
        return sorted(
            subject
            for subject, summary in self.per_subject.items()
            if location in summary.accessible
        )

    def dead_locations(self) -> List[str]:
        """Locations no analysed subject can reach."""
        return [location for location in self.locations if not self.reachable_by(location)]

    def coverage_by_subject(self) -> Dict[str, float]:
        """Coverage fraction per subject."""
        return {subject: summary.coverage for subject, summary in self.per_subject.items()}

    def to_rows(self) -> List[Tuple[str, int, int, float]]:
        """Rows of (subject, #accessible, #inaccessible, coverage) for reporting."""
        return [
            (
                subject,
                len(summary.accessible),
                len(summary.inaccessible),
                round(summary.coverage, 3),
            )
            for subject, summary in sorted(self.per_subject.items())
        ]


def build_reachability_matrix(
    hierarchy: LocationHierarchy,
    subjects: Sequence[str],
    authorizations: AuthSource,
) -> ReachabilityMatrix:
    """Run Algorithm 1 for every subject and aggregate the results."""
    per_subject: Dict[str, SubjectReachability] = {}
    for subject in subjects:
        report: AccessibilityReport = find_inaccessible(hierarchy, subject, authorizations)
        per_subject[subject] = SubjectReachability(subject, report.accessible, report.inaccessible)
    return ReachabilityMatrix(
        hierarchy.root.name, tuple(sorted(hierarchy.primitive_names)), per_subject
    )
