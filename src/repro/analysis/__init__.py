"""Analysis and reporting over authorization databases and audit trails."""

from repro.analysis.contacts import Contact, Stay, contact_graph, find_contacts, stays_of
from repro.analysis.reachability import (
    ReachabilityMatrix,
    SubjectReachability,
    build_reachability_matrix,
)
from repro.analysis.reports import (
    DetectionStats,
    ViolationReport,
    build_violation_report,
    busiest_locations,
    detection_stats,
)

__all__ = [
    "Stay",
    "Contact",
    "stays_of",
    "find_contacts",
    "contact_graph",
    "SubjectReachability",
    "ReachabilityMatrix",
    "build_reachability_matrix",
    "ViolationReport",
    "DetectionStats",
    "build_violation_report",
    "detection_stats",
    "busiest_locations",
]
