"""Violation and activity reports built from the audit trail.

The query engine answers point questions; these reports aggregate a whole
monitoring period into the summaries a security officer reviews at the end of
the day: violations per kind and per subject, denied requests, busiest
locations, and detection statistics against a known ground truth (used by the
baseline-comparison benchmark E8).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.core.requests import AccessDecision
from repro.engine.alerts import Alert, AlertKind
from repro.engine.audit import AuditLog
from repro.simulation.movement import GroundTruth
from repro.storage.movement_db import MovementDatabase, MovementKind

__all__ = ["ViolationReport", "DetectionStats", "build_violation_report", "detection_stats", "busiest_locations"]


@dataclass(frozen=True)
class ViolationReport:
    """Summary of a monitoring period."""

    total_decisions: int
    granted: int
    denied: int
    alerts_by_kind: Mapping[AlertKind, int]
    alerts_by_subject: Mapping[str, int]

    @property
    def total_alerts(self) -> int:
        """Total number of alerts in the period."""
        return sum(self.alerts_by_kind.values())

    @property
    def grant_rate(self) -> float:
        """Fraction of decisions that granted access (0.0 when no decisions)."""
        return self.granted / self.total_decisions if self.total_decisions else 0.0


def build_violation_report(audit: AuditLog) -> ViolationReport:
    """Aggregate an audit log into a :class:`ViolationReport`."""
    decisions: List[AccessDecision] = audit.decisions()
    granted = sum(1 for decision in decisions if decision.granted)
    alerts = audit.alerts()
    by_kind: Dict[AlertKind, int] = {}
    by_subject: Dict[str, int] = {}
    for alert in alerts:
        by_kind[alert.kind] = by_kind.get(alert.kind, 0) + 1
        by_subject[alert.subject] = by_subject.get(alert.subject, 0) + 1
    return ViolationReport(
        total_decisions=len(decisions),
        granted=granted,
        denied=len(decisions) - granted,
        alerts_by_kind=by_kind,
        alerts_by_subject=by_subject,
    )


@dataclass(frozen=True)
class DetectionStats:
    """Recall of a monitoring system against simulated ground truth."""

    injected_unauthorized: int
    detected_unauthorized: int
    injected_overstays: int
    detected_overstays: int

    @property
    def unauthorized_recall(self) -> float:
        """Fraction of injected unauthorized entries that were detected."""
        if self.injected_unauthorized == 0:
            return 1.0
        return self.detected_unauthorized / self.injected_unauthorized

    @property
    def overstay_recall(self) -> float:
        """Fraction of injected overstays that were detected."""
        if self.injected_overstays == 0:
            return 1.0
        return self.detected_overstays / self.injected_overstays

    @property
    def overall_recall(self) -> float:
        """Recall over all injected violations."""
        injected = self.injected_unauthorized + self.injected_overstays
        if injected == 0:
            return 1.0
        return (self.detected_unauthorized + self.detected_overstays) / injected


def detection_stats(alerts: Iterable[Alert], truth: GroundTruth) -> DetectionStats:
    """Compare raised alerts against the simulator's ground truth.

    Unauthorized entries are matched on (subject, location, time); overstays
    on (subject, location) — the alert time is the detection time, not the
    injected deadline, so only the identity of the stay is compared.
    """
    alerts = list(alerts)
    unauthorized_alerts = {
        (alert.subject, alert.location, alert.time)
        for alert in alerts
        if alert.kind is AlertKind.UNAUTHORIZED_ENTRY
    }
    overstay_alerts = {
        (alert.subject, alert.location)
        for alert in alerts
        if alert.kind in (AlertKind.OVERSTAY, AlertKind.EXIT_OUTSIDE_DURATION)
    }
    detected_unauthorized = sum(
        1
        for time, subject, location in truth.unauthorized_entries
        if (subject, location, time) in unauthorized_alerts
    )
    detected_overstays = sum(
        1
        for subject, location, _deadline in truth.overstays
        if (subject, location) in overstay_alerts
    )
    return DetectionStats(
        injected_unauthorized=len(truth.unauthorized_entries),
        detected_unauthorized=detected_unauthorized,
        injected_overstays=len(truth.overstays),
        detected_overstays=detected_overstays,
    )


def busiest_locations(movement_db: MovementDatabase, *, top: int = 5) -> List[Tuple[str, int]]:
    """Locations ranked by number of recorded entries (descending)."""
    counts: Dict[str, int] = {}
    for record in movement_db.history(include_archived=True):
        if record.kind is MovementKind.ENTER:
            counts[record.location] = counts.get(record.location, 0) + 1
    ranked = sorted(counts.items(), key=lambda item: (-item[1], item[0]))
    return ranked[: max(0, top)]
