"""Co-location analysis (contact tracing) over the movement history.

The paper's introduction motivates LTAM with Singapore's SARS response:
*"From the user movement data, users who were in contact with diagnosed SARS
patients could be traced and placed in quarantine or observations."*  This
module provides that query as a first-class analysis: reconstruct per-subject
stays from the Location & Movements Database and report who shared a location
with whom, when, and for how long.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.subjects import subject_name
from repro.locations.location import LocationName
from repro.storage.movement_db import MovementDatabase, MovementKind
from repro.temporal.chronon import FOREVER, TimePoint
from repro.temporal.interval import TimeInterval

__all__ = ["Stay", "Contact", "stays_of", "find_contacts", "contact_graph"]


@dataclass(frozen=True)
class Stay:
    """One reconstructed stay of a subject inside a location."""

    subject: str
    location: LocationName
    start: int
    end: TimePoint  # FOREVER when the subject never exited within the history

    @property
    def interval(self) -> TimeInterval:
        """The stay as a time interval."""
        return TimeInterval(self.start, self.end)


@dataclass(frozen=True)
class Contact:
    """Two subjects overlapping in the same location."""

    subject: str
    other: str
    location: LocationName
    overlap: TimeInterval

    @property
    def duration(self) -> TimePoint:
        """Length of the co-location period in chronons."""
        return self.overlap.size


def stays_of(movement_db: MovementDatabase, subject: Optional[str] = None) -> List[Stay]:
    """Reconstruct stays from the ENTER/EXIT history (open stays end at FOREVER)."""
    wanted = subject_name(subject) if subject is not None else None
    open_stays: Dict[Tuple[str, LocationName], int] = {}
    stays: List[Stay] = []
    # Contact tracing must see the whole log — stays predating a
    # compacting checkpoint live in the archive.
    for record in movement_db.history(subject=wanted, include_archived=True):
        key = (record.subject, record.location)
        if record.kind is MovementKind.ENTER:
            # An unmatched previous entry is closed implicitly at the new entry time.
            if key in open_stays:
                stays.append(Stay(record.subject, record.location, open_stays.pop(key), record.time))
            open_stays[key] = record.time
        else:
            start = open_stays.pop(key, None)
            if start is not None:
                stays.append(Stay(record.subject, record.location, start, record.time))
    for (subj, location), start in open_stays.items():
        stays.append(Stay(subj, location, start, FOREVER))
    return sorted(stays, key=lambda stay: (stay.start, stay.subject, stay.location))


def find_contacts(
    movement_db: MovementDatabase,
    subject: str,
    *,
    window: Optional[TimeInterval] = None,
    min_overlap: int = 1,
) -> List[Contact]:
    """Everyone who shared a location with *subject* for at least *min_overlap* chronons.

    Parameters
    ----------
    window:
        Restrict the analysis to stays overlapping this interval (e.g. the
        patient's infectious period).
    min_overlap:
        Minimum number of co-located chronons for a contact to be reported.
    """
    index_subject = subject_name(subject)
    all_stays = stays_of(movement_db)
    subject_stays = [stay for stay in all_stays if stay.subject == index_subject]
    if window is not None:
        subject_stays = [
            stay for stay in subject_stays if stay.interval.overlaps(window)
        ]
    contacts: List[Contact] = []
    for stay in subject_stays:
        for other in all_stays:
            if other.subject == index_subject or other.location != stay.location:
                continue
            overlap = stay.interval.intersect(other.interval)
            if window is not None and overlap is not None:
                overlap = overlap.intersect(window)
            if overlap is None:
                continue
            if overlap.size is not FOREVER and int(overlap.size) < min_overlap:
                continue
            contacts.append(Contact(index_subject, other.subject, stay.location, overlap))
    return sorted(contacts, key=lambda c: (c.overlap.start, c.other, c.location))


def contact_graph(
    movement_db: MovementDatabase, *, min_overlap: int = 1
) -> Dict[str, Dict[str, int]]:
    """Pairwise co-location totals: ``graph[a][b]`` = chronons a and b shared a location.

    Open-ended overlaps (both subjects still inside) are excluded from the
    totals because their duration is unbounded.
    """
    all_stays = stays_of(movement_db)
    graph: Dict[str, Dict[str, int]] = {}
    for index, stay in enumerate(all_stays):
        for other in all_stays[index + 1:]:
            if other.subject == stay.subject or other.location != stay.location:
                continue
            overlap = stay.interval.intersect(other.interval)
            if overlap is None or overlap.is_unbounded:
                continue
            duration = int(overlap.size)
            if duration < min_overlap:
                continue
            graph.setdefault(stay.subject, {}).setdefault(other.subject, 0)
            graph.setdefault(other.subject, {}).setdefault(stay.subject, 0)
            graph[stay.subject][other.subject] += duration
            graph[other.subject][stay.subject] += duration
    return graph
