"""Secondary indexes used by the storage backends.

The access-control engine answers *"which authorizations of subject s for
location l are valid at time t?"* on every request; the authorization
database therefore keeps, besides its hash index on ``(subject, location)``,
an :class:`IntervalIndex` over entry durations so that point-in-time and
window-overlap queries do not rescan every record.

:class:`IntervalIndex` is an **augmented interval tree**: an AVL tree keyed
by interval start (insertion order breaks ties, so iteration stays stable)
where every node also carries the maximum interval end of its subtree.  The
max-end augmentation lets stabbing (:meth:`IntervalIndex.at`) and overlap
(:meth:`IntervalIndex.overlapping`) queries prune whole subtrees whose
intervals all end before the query — O(log n + k) for k hits, instead of the
old start-sorted prefix walk that was O(n) whenever early intervals stayed
live (exactly the shape of long-lived authorizations).

Removal uses **tombstones**: a removed entry is only marked dead (queries
skip it when reporting; the max-end pruning bound is merely loosened), and
the tree is rebuilt compact when dead nodes outnumber live ones — so a
revocation-heavy workload pays O(log n) per targeted :meth:`remove_one`
plus an O(n) rebuild amortized over O(n) removals, instead of the previous
O(n) rebuild on *every* removal.
"""

from __future__ import annotations

from typing import Generic, Iterator, List, Optional, Tuple, TypeVar

from repro.temporal.chronon import FOREVER
from repro.temporal.interval import TimeInterval

__all__ = ["IntervalIndex"]

T = TypeVar("T")

#: Internal representation of an unbounded interval end.
_INF = float("inf")


class _Node(Generic[T]):
    """One interval of the tree, augmented with its subtree's maximum end."""

    __slots__ = ("start", "end", "seq", "payload", "left", "right", "height", "max_end", "dead")

    def __init__(self, start: int, end: float, seq: int, payload: T) -> None:
        self.start = start
        self.end = end
        self.seq = seq
        self.payload = payload
        self.left: Optional["_Node[T]"] = None
        self.right: Optional["_Node[T]"] = None
        self.height = 1
        self.max_end = end
        self.dead = False

    @property
    def key(self) -> Tuple[int, int]:
        return (self.start, self.seq)


def _height(node: Optional[_Node[T]]) -> int:
    return node.height if node is not None else 0


def _update(node: _Node[T]) -> None:
    node.height = 1 + max(_height(node.left), _height(node.right))
    max_end = node.end
    if node.left is not None and node.left.max_end > max_end:
        max_end = node.left.max_end
    if node.right is not None and node.right.max_end > max_end:
        max_end = node.right.max_end
    node.max_end = max_end


def _rotate_right(node: _Node[T]) -> _Node[T]:
    pivot = node.left
    node.left = pivot.right
    pivot.right = node
    _update(node)
    _update(pivot)
    return pivot


def _rotate_left(node: _Node[T]) -> _Node[T]:
    pivot = node.right
    node.right = pivot.left
    pivot.left = node
    _update(node)
    _update(pivot)
    return pivot


def _rebalance(node: _Node[T]) -> _Node[T]:
    _update(node)
    balance = _height(node.left) - _height(node.right)
    if balance > 1:
        if _height(node.left.left) < _height(node.left.right):
            node.left = _rotate_left(node.left)
        return _rotate_right(node)
    if balance < -1:
        if _height(node.right.right) < _height(node.right.left):
            node.right = _rotate_right(node.right)
        return _rotate_left(node)
    return node


def _insert(node: Optional[_Node[T]], fresh: _Node[T]) -> _Node[T]:
    if node is None:
        return fresh
    if fresh.key < node.key:
        node.left = _insert(node.left, fresh)
    else:
        node.right = _insert(node.right, fresh)
    return _rebalance(node)


def _build_balanced(nodes: List[_Node[T]], lo: int, hi: int) -> Optional[_Node[T]]:
    """Rebuild a balanced tree from key-sorted, detached nodes."""
    if lo > hi:
        return None
    mid = (lo + hi) // 2
    root = nodes[mid]
    root.left = _build_balanced(nodes, lo, mid - 1)
    root.right = _build_balanced(nodes, mid + 1, hi)
    _update(root)
    return root


class IntervalIndex(Generic[T]):
    """An index of payloads keyed by time intervals.

    Supports point stabbing queries (:meth:`at`) and window overlap queries
    (:meth:`overlapping`), both O(log n + k) thanks to the max-end
    augmentation.  Iteration and query results are ordered by interval
    start, insertion order breaking ties — the same observable order as the
    sorted-list index this tree replaced.
    """

    #: Dead nodes are tolerated until they both exceed this floor and
    #: outnumber the live nodes; then the tree is rebuilt compact.
    _COMPACT_FLOOR = 16

    def __init__(self) -> None:
        self._root: Optional[_Node[T]] = None
        self._size = 0
        self._seq = 0
        self._dead = 0

    def add(self, interval: TimeInterval, payload: T) -> None:
        """Insert *payload* under *interval* — O(log n)."""
        end = _INF if interval.is_unbounded else int(interval.end)
        node = _Node(interval.start, end, self._seq, payload)
        self._seq += 1
        self._root = _insert(self._root, node)
        self._size += 1

    def remove(self, predicate) -> int:
        """Remove every entry whose payload satisfies *predicate*; return the count.

        One O(n) marking scan, no rebuild: matches become tombstones, and
        compaction is deferred until dead nodes outnumber live ones.  When
        the caller knows the entry's interval, :meth:`remove_one` skips the
        scan too.
        """
        removed = 0
        for node in self._nodes_inorder():
            if not node.dead and predicate(node.payload):
                node.dead = True
                removed += 1
        if removed:
            self._size -= removed
            self._dead += removed
            self._maybe_compact()
        return removed

    def remove_one(self, interval: TimeInterval, payload: T) -> bool:
        """Tombstone the entry stored under exactly (*interval*, *payload*).

        Descends by interval start — O(log n + t) for t same-start entries —
        which is what keeps revocation-heavy workloads off the O(n) scan of
        :meth:`remove`: the authorization database knows the revoked grant's
        entry duration and passes it here.  Returns whether an entry died.
        """
        start = interval.start
        end = _INF if interval.is_unbounded else int(interval.end)
        stack: List[_Node[T]] = []
        if self._root is not None:
            stack.append(self._root)
        while stack:
            node = stack.pop()
            if start < node.start:
                if node.left is not None:
                    stack.append(node.left)
                continue
            if start > node.start:
                if node.right is not None:
                    stack.append(node.right)
                continue
            # Equal starts: matching seqs may sit on either side.
            if not node.dead and node.end == end and node.payload == payload:
                node.dead = True
                self._size -= 1
                self._dead += 1
                self._maybe_compact()
                return True
            if node.left is not None:
                stack.append(node.left)
            if node.right is not None:
                stack.append(node.right)
        return False

    def _maybe_compact(self) -> None:
        """Rebuild without tombstones once they dominate — amortized O(1) per removal."""
        if self._dead < self._COMPACT_FLOOR or self._dead <= self._size:
            return
        kept = [node for node in self._nodes_inorder() if not node.dead]
        for node in kept:
            node.left = node.right = None
        self._root = _build_balanced(kept, 0, len(kept) - 1)
        self._size = len(kept)
        self._dead = 0

    @property
    def tombstones(self) -> int:
        """How many dead nodes the tree currently carries (observability)."""
        return self._dead

    def at(self, time) -> List[T]:
        """Payloads whose interval contains the chronon *time* — O(log n + k).

        ``FOREVER`` is a valid time point: it stabs exactly the unbounded
        intervals (mirroring :meth:`TimeInterval.contains`).
        """
        stab = _INF if time is FOREVER else time
        results: List[T] = []
        stack: List[Tuple[_Node[T], bool]] = []
        if self._root is not None:
            stack.append((self._root, False))
        while stack:
            node, expanded = stack.pop()
            if node.max_end < stab:
                continue
            if not expanded:
                # In-order: right first onto the stack, then the node, then left.
                if node.right is not None and node.start <= stab:
                    stack.append((node.right, False))
                stack.append((node, True))
                if node.left is not None:
                    stack.append((node.left, False))
            elif not node.dead and node.start <= stab <= node.end:
                results.append(node.payload)
        return results

    def overlapping(self, window: TimeInterval) -> List[T]:
        """Payloads whose interval overlaps *window* — O(log n + k)."""
        lo = window.start
        hi = _INF if window.is_unbounded else int(window.end)
        results: List[T] = []
        stack: List[Tuple[_Node[T], bool]] = []
        if self._root is not None:
            stack.append((self._root, False))
        while stack:
            node, expanded = stack.pop()
            if node.max_end < lo:
                continue
            if not expanded:
                if node.right is not None and node.start <= hi:
                    stack.append((node.right, False))
                stack.append((node, True))
                if node.left is not None:
                    stack.append((node.left, False))
            elif not node.dead and node.start <= hi and node.end >= lo:
                results.append(node.payload)
        return results

    def intervals(self) -> List[Tuple[TimeInterval, T]]:
        """Every (interval, payload) pair, ordered by start then insertion."""
        pairs: List[Tuple[TimeInterval, T]] = []
        for node in self._nodes_inorder():
            if node.dead:
                continue
            end = FOREVER if node.end == _INF else int(node.end)
            pairs.append((TimeInterval(node.start, end), node.payload))
        return pairs

    def _nodes_inorder(self) -> Iterator[_Node[T]]:
        stack: List[_Node[T]] = []
        node = self._root
        while stack or node is not None:
            while node is not None:
                stack.append(node)
                node = node.left
            node = stack.pop()
            yield node
            node = node.right

    def __len__(self) -> int:
        return self._size

    def __iter__(self) -> Iterator[T]:
        return iter(node.payload for node in self._nodes_inorder() if not node.dead)
