"""Secondary indexes used by the storage backends.

The access-control engine answers *"which authorizations of subject s for
location l are valid at time t?"* on every request; the authorization
database therefore keeps, besides its hash index on ``(subject, location)``,
an :class:`IntervalIndex` over entry durations so that point-in-time and
window-overlap queries do not rescan every record.  The index is deliberately
simple (sorted start times + linear filtering of candidates); benchmark E11
compares it against a full scan.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Dict, Generic, Iterable, List, Optional, Tuple, TypeVar

from repro.temporal.chronon import FOREVER, TimePoint
from repro.temporal.interval import TimeInterval

__all__ = ["IntervalIndex"]

T = TypeVar("T")


@dataclass
class _Entry(Generic[T]):
    start: int
    end: TimePoint
    payload: T


class IntervalIndex(Generic[T]):
    """An index of payloads keyed by time intervals.

    Supports point stabbing queries (:meth:`at`) and window overlap queries
    (:meth:`overlapping`).  Entries are kept sorted by interval start; because
    an entry with an earlier start can still be "live" at a later time, the
    stabbing query walks the prefix of entries whose start is ``<= t`` and
    filters by end — adequate for the authorization workloads the engine sees
    (hundreds to a few thousand intervals per subject/location pair at most).
    """

    def __init__(self) -> None:
        self._starts: List[int] = []
        self._entries: List[_Entry[T]] = []

    def add(self, interval: TimeInterval, payload: T) -> None:
        """Insert *payload* under *interval*."""
        position = bisect.bisect_right(self._starts, interval.start)
        self._starts.insert(position, interval.start)
        self._entries.insert(position, _Entry(interval.start, interval.end, payload))

    def remove(self, predicate) -> int:
        """Remove every entry whose payload satisfies *predicate*; return the count."""
        kept_starts: List[int] = []
        kept_entries: List[_Entry[T]] = []
        removed = 0
        for start, entry in zip(self._starts, self._entries):
            if predicate(entry.payload):
                removed += 1
            else:
                kept_starts.append(start)
                kept_entries.append(entry)
        self._starts = kept_starts
        self._entries = kept_entries
        return removed

    def at(self, time: int) -> List[T]:
        """Payloads whose interval contains the chronon *time*."""
        upper = bisect.bisect_right(self._starts, time)
        results: List[T] = []
        for entry in self._entries[:upper]:
            if entry.end is FOREVER or entry.end >= time:
                results.append(entry.payload)
        return results

    def overlapping(self, window: TimeInterval) -> List[T]:
        """Payloads whose interval overlaps *window*."""
        if window.is_unbounded:
            upper = len(self._entries)
        else:
            upper = bisect.bisect_right(self._starts, int(window.end))
        results: List[T] = []
        for entry in self._entries[:upper]:
            if entry.end is FOREVER or entry.end >= window.start:
                results.append(entry.payload)
        return results

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self):
        return iter(entry.payload for entry in self._entries)
