"""The Authorization Database of Figure 3.

*"The authorization database stores all authorizations defined by the system
administrators"* — plus, after rule evaluation, the derived authorizations.
The database offers the lookups the access-control engine and Algorithm 1
need:

* all authorizations of a subject, of a location, or of a pair;
* the authorizations valid (enterable) at a given time;
* revocation, including cascading revocation of derived authorizations when
  their base authorization is revoked (Example 1's supervisor change).

Two implementations share the interface: an in-memory store with hash and
interval indexes (:class:`InMemoryAuthorizationDatabase`) and an SQLite-backed
store (:class:`SqliteAuthorizationDatabase`) for deployments that need
persistence.
"""

from __future__ import annotations

import sqlite3
from abc import ABC, abstractmethod
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.errors import DuplicateRecordError, MissingRecordError, StorageError
from repro.core.authorization import UNLIMITED_ENTRIES, LocationTemporalAuthorization
from repro.core.subjects import subject_name
from repro.locations.location import location_name
from repro.storage.indexes import IntervalIndex
from repro.temporal.chronon import FOREVER, TimePoint
from repro.temporal.interval import TimeInterval

__all__ = [
    "AuthorizationDatabase",
    "InMemoryAuthorizationDatabase",
    "SqliteAuthorizationDatabase",
]


class AuthorizationDatabase(ABC):
    """Interface shared by the authorization-database backends."""

    # -- writes --------------------------------------------------------- #
    @abstractmethod
    def add(self, authorization: LocationTemporalAuthorization) -> LocationTemporalAuthorization:
        """Store an authorization; duplicate ids are rejected."""

    def add_all(
        self, authorizations: Iterable[LocationTemporalAuthorization]
    ) -> List[LocationTemporalAuthorization]:
        """Store several authorizations and return them."""
        return [self.add(auth) for auth in authorizations]

    @abstractmethod
    def revoke(self, auth_id: str) -> LocationTemporalAuthorization:
        """Remove the authorization with the given id and return it."""

    def revoke_derived_from(self, base_auth_id: str) -> List[LocationTemporalAuthorization]:
        """Revoke every authorization derived from *base_auth_id* (cascade)."""
        doomed = [auth for auth in self.all() if auth.derived_from == base_auth_id]
        return [self.revoke(auth.auth_id) for auth in doomed]

    def revoke_cascading(self, auth_id: str) -> List[LocationTemporalAuthorization]:
        """Revoke an authorization together with everything derived from it."""
        revoked = [self.revoke(auth_id)]
        revoked.extend(self.revoke_derived_from(auth_id))
        return revoked

    @abstractmethod
    def clear(self) -> None:
        """Remove every authorization."""

    # -- reads ---------------------------------------------------------- #
    @abstractmethod
    def get(self, auth_id: str) -> LocationTemporalAuthorization:
        """Return the authorization with the given id."""

    @abstractmethod
    def all(self) -> List[LocationTemporalAuthorization]:
        """Return every stored authorization."""

    @abstractmethod
    def for_subject_location(self, subject: str, location: str) -> List[LocationTemporalAuthorization]:
        """All authorizations of *subject* for *location*."""

    @abstractmethod
    def for_subject(self, subject: str) -> List[LocationTemporalAuthorization]:
        """All authorizations of *subject*."""

    @abstractmethod
    def for_location(self, location: str) -> List[LocationTemporalAuthorization]:
        """All authorizations concerning *location*."""

    def enterable_at(
        self, time: int, subject: Optional[str] = None, location: Optional[str] = None
    ) -> List[LocationTemporalAuthorization]:
        """Authorizations whose entry duration contains *time*, optionally filtered."""
        if subject is not None and location is not None:
            candidates = self.for_subject_location(subject, location)
        elif subject is not None:
            candidates = self.for_subject(subject)
        elif location is not None:
            candidates = self.for_location(location)
        else:
            candidates = self.all()
        return [auth for auth in candidates if auth.permits_entry_at(time)]

    def __len__(self) -> int:
        return len(self.all())

    def __iter__(self) -> Iterator[LocationTemporalAuthorization]:
        return iter(self.all())

    def __contains__(self, auth_id: object) -> bool:
        try:
            self.get(str(auth_id))
            return True
        except MissingRecordError:
            return False


class InMemoryAuthorizationDatabase(AuthorizationDatabase):
    """Dictionary-backed authorization store with secondary indexes."""

    def __init__(self, authorizations: Iterable[LocationTemporalAuthorization] = ()) -> None:
        self._by_id: Dict[str, LocationTemporalAuthorization] = {}
        self._by_pair: Dict[Tuple[str, str], List[str]] = {}
        self._by_subject: Dict[str, List[str]] = {}
        self._by_location: Dict[str, List[str]] = {}
        self._entry_index: IntervalIndex[str] = IntervalIndex()
        # Per-(subject, location) interval trees over entry durations: the
        # time-first candidate lookup stabs these with the request time, so
        # a subject with hundreds of expired grants for a location touches
        # O(log g + live) of them instead of filtering all g.
        self._pair_entry_index: Dict[Tuple[str, str], IntervalIndex[str]] = {}
        # Insertion sequence per id: stabbing results are re-sorted to
        # storage order so time-first lookups pick the same grant the
        # storage-order scan would.
        self._seq_of: Dict[str, int] = {}
        self._next_seq = 0
        self.add_all(authorizations)

    # -- writes --------------------------------------------------------- #
    def add(self, authorization: LocationTemporalAuthorization) -> LocationTemporalAuthorization:
        if authorization.auth_id in self._by_id:
            raise DuplicateRecordError(
                f"an authorization with id {authorization.auth_id!r} already exists"
            )
        self._by_id[authorization.auth_id] = authorization
        key = (authorization.subject, authorization.location)
        self._by_pair.setdefault(key, []).append(authorization.auth_id)
        self._by_subject.setdefault(authorization.subject, []).append(authorization.auth_id)
        self._by_location.setdefault(authorization.location, []).append(authorization.auth_id)
        self._entry_index.add(authorization.entry_duration, authorization.auth_id)
        pair_index = self._pair_entry_index.get(key)
        if pair_index is None:
            pair_index = self._pair_entry_index[key] = IntervalIndex()
        pair_index.add(authorization.entry_duration, authorization.auth_id)
        self._seq_of[authorization.auth_id] = self._next_seq
        self._next_seq += 1
        return authorization

    def revoke(self, auth_id: str) -> LocationTemporalAuthorization:
        try:
            authorization = self._by_id.pop(auth_id)
        except KeyError:
            raise MissingRecordError(f"no authorization with id {auth_id!r}") from None
        key = (authorization.subject, authorization.location)
        self._by_pair[key].remove(auth_id)
        self._by_subject[authorization.subject].remove(auth_id)
        self._by_location[authorization.location].remove(auth_id)
        # Targeted O(log n) tombstone removals — the grant's entry duration
        # is known, so neither tree needs a full predicate scan.
        self._entry_index.remove_one(authorization.entry_duration, auth_id)
        pair_index = self._pair_entry_index.get(key)
        if pair_index is not None:
            pair_index.remove_one(authorization.entry_duration, auth_id)
            if not len(pair_index):
                del self._pair_entry_index[key]
        self._seq_of.pop(auth_id, None)
        return authorization

    def clear(self) -> None:
        self._by_id.clear()
        self._by_pair.clear()
        self._by_subject.clear()
        self._by_location.clear()
        self._entry_index = IntervalIndex()
        self._pair_entry_index.clear()
        self._seq_of.clear()
        self._next_seq = 0

    # -- reads ---------------------------------------------------------- #
    def get(self, auth_id: str) -> LocationTemporalAuthorization:
        try:
            return self._by_id[auth_id]
        except KeyError:
            raise MissingRecordError(f"no authorization with id {auth_id!r}") from None

    def all(self) -> List[LocationTemporalAuthorization]:
        return list(self._by_id.values())

    def for_subject_location(self, subject: str, location: str) -> List[LocationTemporalAuthorization]:
        key = (subject_name(subject), location_name(location))
        return [self._by_id[auth_id] for auth_id in self._by_pair.get(key, ())]

    def for_subject(self, subject: str) -> List[LocationTemporalAuthorization]:
        return [self._by_id[auth_id] for auth_id in self._by_subject.get(subject_name(subject), ())]

    def for_location(self, location: str) -> List[LocationTemporalAuthorization]:
        return [self._by_id[auth_id] for auth_id in self._by_location.get(location_name(location), ())]

    def enterable_at(
        self, time: int, subject: Optional[str] = None, location: Optional[str] = None
    ) -> List[LocationTemporalAuthorization]:
        if subject is not None and location is not None:
            # Time-first pair lookup: stab the pair's own interval tree —
            # O(log g + live) in the pair's grant count — then restore
            # storage order so callers see the same candidate order as
            # for_subject_location (grant selection depends on it).
            key = (subject_name(subject), location_name(location))
            pair_index = self._pair_entry_index.get(key)
            if pair_index is None:
                return []
            hits = pair_index.at(time)
            hits.sort(key=self._seq_of.__getitem__)
            return [self._by_id[auth_id] for auth_id in hits]
        # The global interval index narrows candidates to authorizations
        # whose entry duration contains the time; the filters then apply.
        candidates = [self._by_id[auth_id] for auth_id in self._entry_index.at(time) if auth_id in self._by_id]
        if subject is not None:
            wanted_subject = subject_name(subject)
            candidates = [auth for auth in candidates if auth.subject == wanted_subject]
        if location is not None:
            wanted_location = location_name(location)
            candidates = [auth for auth in candidates if auth.location == wanted_location]
        return candidates

    def __len__(self) -> int:
        return len(self._by_id)


class SqliteAuthorizationDatabase(AuthorizationDatabase):
    """SQLite-backed authorization store (``:memory:`` by default).

    Interval endpoints that are ``FOREVER`` and unlimited entry budgets are
    stored as SQL ``NULL``.
    """

    _SCHEMA = """
        CREATE TABLE IF NOT EXISTS authorizations (
            auth_id      TEXT PRIMARY KEY,
            subject      TEXT NOT NULL,
            location     TEXT NOT NULL,
            entry_start  INTEGER NOT NULL,
            entry_end    INTEGER,
            exit_start   INTEGER NOT NULL,
            exit_end     INTEGER,
            max_entries  INTEGER,
            created_at   INTEGER NOT NULL,
            derived_from TEXT,
            rule_id      TEXT
        );
        CREATE INDEX IF NOT EXISTS idx_auth_pair ON authorizations (subject, location);
        CREATE INDEX IF NOT EXISTS idx_auth_subject ON authorizations (subject);
        CREATE INDEX IF NOT EXISTS idx_auth_location ON authorizations (location);
        CREATE INDEX IF NOT EXISTS idx_auth_entry ON authorizations (entry_start, entry_end);
    """

    def __init__(self, path: str = ":memory:") -> None:
        # check_same_thread=False: the streaming observe path
        # (MovementIngestor) drives enforcement — and therefore these
        # stores — from its background writer thread while the constructing
        # thread keeps reading.  The sqlite3 module serializes statement
        # execution internally, so sharing the connection is safe; write
        # discipline (one logical writer) is unchanged.
        self._connection = sqlite3.connect(path, check_same_thread=False)
        # Match the movement store: WAL keeps reads of a shared database file
        # live while another connection holds a batch write transaction.
        self._connection.execute("PRAGMA journal_mode=WAL")
        self._connection.execute("PRAGMA busy_timeout=5000")
        self._connection.executescript(self._SCHEMA)
        self._connection.commit()

    # -- helpers -------------------------------------------------------- #
    @staticmethod
    def _to_row(auth: LocationTemporalAuthorization) -> Tuple:
        return (
            auth.auth_id,
            auth.subject,
            auth.location,
            auth.entry_duration.start,
            None if auth.entry_duration.is_unbounded else int(auth.entry_duration.end),
            auth.exit_duration.start,
            None if auth.exit_duration.is_unbounded else int(auth.exit_duration.end),
            None if auth.max_entries is UNLIMITED_ENTRIES else int(auth.max_entries),
            auth.created_at,
            auth.derived_from,
            auth.rule_id,
        )

    @staticmethod
    def _from_row(row: Tuple) -> LocationTemporalAuthorization:
        (
            auth_id,
            subject,
            location,
            entry_start,
            entry_end,
            exit_start,
            exit_end,
            max_entries,
            created_at,
            derived_from,
            rule_id,
        ) = row
        return LocationTemporalAuthorization(
            (subject, location),
            TimeInterval(entry_start, FOREVER if entry_end is None else entry_end),
            TimeInterval(exit_start, FOREVER if exit_end is None else exit_end),
            UNLIMITED_ENTRIES if max_entries is None else max_entries,
            created_at=created_at,
            auth_id=auth_id,
            derived_from=derived_from,
            rule_id=rule_id,
        )

    def _query(self, where: str = "", parameters: Tuple = ()) -> List[LocationTemporalAuthorization]:
        sql = "SELECT * FROM authorizations" + (f" WHERE {where}" if where else "") + " ORDER BY rowid"
        rows = self._connection.execute(sql, parameters).fetchall()
        return [self._from_row(row) for row in rows]

    # -- writes --------------------------------------------------------- #
    def add(self, authorization: LocationTemporalAuthorization) -> LocationTemporalAuthorization:
        try:
            self._connection.execute(
                "INSERT INTO authorizations VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                self._to_row(authorization),
            )
        except sqlite3.IntegrityError as exc:
            raise DuplicateRecordError(
                f"an authorization with id {authorization.auth_id!r} already exists"
            ) from exc
        self._connection.commit()
        return authorization

    def revoke(self, auth_id: str) -> LocationTemporalAuthorization:
        authorization = self.get(auth_id)
        self._connection.execute("DELETE FROM authorizations WHERE auth_id = ?", (auth_id,))
        self._connection.commit()
        return authorization

    def clear(self) -> None:
        self._connection.execute("DELETE FROM authorizations")
        self._connection.commit()

    # -- reads ---------------------------------------------------------- #
    def get(self, auth_id: str) -> LocationTemporalAuthorization:
        rows = self._query("auth_id = ?", (auth_id,))
        if not rows:
            raise MissingRecordError(f"no authorization with id {auth_id!r}")
        return rows[0]

    def all(self) -> List[LocationTemporalAuthorization]:
        return self._query()

    def for_subject_location(self, subject: str, location: str) -> List[LocationTemporalAuthorization]:
        return self._query("subject = ? AND location = ?", (subject_name(subject), location_name(location)))

    def for_subject(self, subject: str) -> List[LocationTemporalAuthorization]:
        return self._query("subject = ?", (subject_name(subject),))

    def for_location(self, location: str) -> List[LocationTemporalAuthorization]:
        return self._query("location = ?", (location_name(location),))

    def enterable_at(
        self, time: int, subject: Optional[str] = None, location: Optional[str] = None
    ) -> List[LocationTemporalAuthorization]:
        where = "entry_start <= ? AND (entry_end IS NULL OR entry_end >= ?)"
        parameters: List = [time, time]
        if subject is not None:
            where += " AND subject = ?"
            parameters.append(subject_name(subject))
        if location is not None:
            where += " AND location = ?"
            parameters.append(location_name(location))
        return self._query(where, tuple(parameters))

    def close(self) -> None:
        """Close the underlying SQLite connection."""
        self._connection.close()

    def __len__(self) -> int:
        (count,) = self._connection.execute("SELECT COUNT(*) FROM authorizations").fetchone()
        return int(count)
