"""The User Profile Database of Figure 3.

*"The user profile database stores user profiles, which are used for creating
authorizations, or deriving authorizations, etc."*  Subject operators such as
``Supervisor_Of`` resolve against it.

The in-memory backend is a thin persistence facade over
:class:`~repro.core.subjects.SubjectDirectory`; the SQLite backend persists
subjects, the supervision relation and group membership and rebuilds a
directory on demand so that the derivation engine always works against the
same in-memory interface.
"""

from __future__ import annotations

import json
import sqlite3
from abc import ABC, abstractmethod
from typing import Iterable, List, Optional, Tuple

from repro.errors import MissingRecordError, StorageError
from repro.core.subjects import Subject, SubjectDirectory, subject_name

__all__ = ["UserProfileDatabase", "InMemoryUserProfileDatabase", "SqliteUserProfileDatabase"]


class UserProfileDatabase(ABC):
    """Interface shared by the profile-database backends."""

    # -- writes --------------------------------------------------------- #
    @abstractmethod
    def add_subject(self, subject: "Subject | str", **kwargs) -> Subject:
        """Register a subject."""

    @abstractmethod
    def set_supervisor(self, subordinate: str, supervisor: str) -> None:
        """Record the supervision relationship."""

    @abstractmethod
    def add_to_group(self, group: str, *members: str) -> None:
        """Add subjects to a group."""

    # -- reads ---------------------------------------------------------- #
    @abstractmethod
    def directory(self) -> SubjectDirectory:
        """Return the directory view used by the rule operators."""

    def get(self, name: str) -> Subject:
        """Return the subject called *name*."""
        return self.directory().get(name)

    def supervisor_of(self, subject: str) -> Optional[Subject]:
        """The direct supervisor of *subject*, or ``None``."""
        return self.directory().supervisor_of(subject)

    def members_of(self, group: str) -> List[Subject]:
        """Members of *group*."""
        return self.directory().members_of(group)

    def __contains__(self, name: object) -> bool:
        try:
            return subject_name(name) in self.directory()  # type: ignore[arg-type]
        except Exception:
            return False

    def __len__(self) -> int:
        return len(self.directory())


class InMemoryUserProfileDatabase(UserProfileDatabase):
    """Profile database backed directly by a :class:`SubjectDirectory`."""

    def __init__(self, directory: Optional[SubjectDirectory] = None) -> None:
        self._directory = directory if directory is not None else SubjectDirectory()

    def add_subject(self, subject: "Subject | str", **kwargs) -> Subject:
        return self._directory.add_subject(subject, **kwargs)

    def set_supervisor(self, subordinate: str, supervisor: str) -> None:
        self._directory.set_supervisor(subordinate, supervisor)

    def add_to_group(self, group: str, *members: str) -> None:
        self._directory.add_to_group(group, *members)

    def directory(self) -> SubjectDirectory:
        return self._directory


class SqliteUserProfileDatabase(UserProfileDatabase):
    """SQLite-backed profile store (``:memory:`` by default).

    Profile attributes and roles are stored as JSON columns; the directory
    view is rebuilt lazily and cached until the next write.
    """

    _SCHEMA = """
        CREATE TABLE IF NOT EXISTS subjects (
            name         TEXT PRIMARY KEY,
            display_name TEXT NOT NULL DEFAULT '',
            roles        TEXT NOT NULL DEFAULT '[]',
            attributes   TEXT NOT NULL DEFAULT '{}'
        );
        CREATE TABLE IF NOT EXISTS supervisors (
            subordinate TEXT PRIMARY KEY REFERENCES subjects(name),
            supervisor  TEXT NOT NULL REFERENCES subjects(name)
        );
        CREATE TABLE IF NOT EXISTS group_members (
            group_name TEXT NOT NULL,
            member     TEXT NOT NULL REFERENCES subjects(name),
            PRIMARY KEY (group_name, member)
        );
    """

    def __init__(self, path: str = ":memory:") -> None:
        # check_same_thread=False: the streaming observe path
        # (MovementIngestor) drives enforcement — and therefore these
        # stores — from its background writer thread while the constructing
        # thread keeps reading.  The sqlite3 module serializes statement
        # execution internally, so sharing the connection is safe; write
        # discipline (one logical writer) is unchanged.
        self._connection = sqlite3.connect(path, check_same_thread=False)
        # Match the movement store: WAL keeps reads of a shared database file
        # live while another connection holds a batch write transaction.
        self._connection.execute("PRAGMA journal_mode=WAL")
        self._connection.execute("PRAGMA busy_timeout=5000")
        self._connection.executescript(self._SCHEMA)
        self._connection.commit()
        self._cached_directory: Optional[SubjectDirectory] = None

    def _invalidate(self) -> None:
        self._cached_directory = None

    def add_subject(self, subject: "Subject | str", **kwargs) -> Subject:
        resolved = subject if isinstance(subject, Subject) else Subject(subject_name(subject), **kwargs)
        self._connection.execute(
            "INSERT OR REPLACE INTO subjects (name, display_name, roles, attributes) VALUES (?, ?, ?, ?)",
            (
                resolved.name,
                resolved.display_name,
                json.dumps(sorted(resolved.roles)),
                json.dumps(dict(resolved.attributes)),
            ),
        )
        self._connection.commit()
        self._invalidate()
        return resolved

    def set_supervisor(self, subordinate: str, supervisor: str) -> None:
        for name in (subordinate, supervisor):
            if not self._exists(subject_name(name)):
                self.add_subject(name)
        # Validate against the in-memory rules (self-supervision, cycles)
        # before persisting.
        probe = self.directory()
        probe.set_supervisor(subordinate, supervisor)
        self._connection.execute(
            "INSERT OR REPLACE INTO supervisors (subordinate, supervisor) VALUES (?, ?)",
            (subject_name(subordinate), subject_name(supervisor)),
        )
        self._connection.commit()
        self._invalidate()

    def add_to_group(self, group: str, *members: str) -> None:
        if not group or group.strip() != group:
            raise StorageError(f"group name must be a non-empty trimmed string, got {group!r}")
        for member in members:
            name = subject_name(member)
            if not self._exists(name):
                self.add_subject(name)
            self._connection.execute(
                "INSERT OR IGNORE INTO group_members (group_name, member) VALUES (?, ?)",
                (group, name),
            )
        self._connection.commit()
        self._invalidate()

    def _exists(self, name: str) -> bool:
        row = self._connection.execute("SELECT 1 FROM subjects WHERE name = ?", (name,)).fetchone()
        return row is not None

    def directory(self) -> SubjectDirectory:
        if self._cached_directory is not None:
            return self._cached_directory
        directory = SubjectDirectory()
        for name, display_name, roles, attributes in self._connection.execute(
            "SELECT name, display_name, roles, attributes FROM subjects ORDER BY name"
        ):
            directory.add_subject(
                Subject(name, display_name, frozenset(json.loads(roles)), tuple(sorted(json.loads(attributes).items())))
            )
        for subordinate, supervisor in self._connection.execute(
            "SELECT subordinate, supervisor FROM supervisors ORDER BY subordinate"
        ):
            directory.set_supervisor(subordinate, supervisor)
        for group_name, member in self._connection.execute(
            "SELECT group_name, member FROM group_members ORDER BY group_name, member"
        ):
            directory.add_to_group(group_name, member)
        self._cached_directory = directory
        return directory

    def close(self) -> None:
        """Close the underlying SQLite connection."""
        self._connection.close()
