"""The streaming observe path: a bounded-queue, group-commit ingestor.

Tracker hardware emits movement observations continuously; feeding them to
the engine one blocking ``observe_entry`` call at a time couples the
tracker's line rate to the full enforcement round-trip (monitor, storage
commit, audit).  :class:`MovementIngestor` decouples the two with the
classic group-commit shape:

* producers :meth:`~MovementIngestor.submit` records into a **bounded**
  queue (backpressure instead of unbounded memory when the writer falls
  behind);
* one background writer thread drains the queue and hands the records to
  the sink — :meth:`~repro.storage.movement_db.MovementDatabase.record_many`
  or :meth:`~repro.api.pep.EnforcementPoint.observe_many` — in batches,
  flushing whenever ``batch_size`` records have accumulated **or** the
  oldest queued record has waited ``max_latency`` seconds (so a trickle of
  events still lands promptly);
* :meth:`~MovementIngestor.flush` is a synchronous barrier, and closing the
  ingestor (or leaving its ``with`` block) flushes everything accepted so
  far before the thread exits.

Failure semantics follow the sink.  ``record_many`` is all-or-nothing, and
``observe_many`` runs inside the movement database's ``bulk()`` scope —
transactional on SQLite and on the plain in-memory backend — so a failing
batch (e.g. a strict-mode inconsistent exit) leaves the *movement store*
exactly as if the batch were never submitted; it is recorded as a
:class:`BatchFailure` and re-raised as :class:`~repro.errors.IngestError`
by the next ``flush()``/``close()``.  Two caveats: the monitor's
in-process session/alert state may retain the records an ``observe_many``
batch processed *before* the failing one (sessions are observability
state, not storage), and the sharded in-memory store's ``bulk()`` is a
no-op (its own ``record_many`` validates up front instead).  Later batches
keep flowing; an enforcement pipeline must not stop observing the building
because one tracker emitted garbage.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterable, List, Optional, Sequence, Tuple

from repro.errors import IngestError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.storage.movement_db import MovementRecord

__all__ = ["BatchFailure", "MovementIngestor"]

#: Default flush triggers: a batch this large, or a record this old (seconds).
DEFAULT_BATCH_SIZE = 256
DEFAULT_MAX_LATENCY = 0.05
DEFAULT_QUEUE_SIZE = 8192


@dataclass(frozen=True)
class BatchFailure:
    """One batch the sink rejected: the error and how many records it dropped."""

    error: Exception
    dropped: int

    def __str__(self) -> str:
        return f"batch of {self.dropped} record(s) failed: {self.error}"


class _Flush:
    """Queue sentinel: flush what is buffered, then set the event."""

    __slots__ = ("done",)

    def __init__(self) -> None:
        self.done = threading.Event()


_CLOSE = object()


class MovementIngestor:
    """Queue-fed group-commit writer over a batch sink.

    Parameters
    ----------
    sink:
        ``records -> None`` batch consumer; must be all-or-nothing
        (``record_many`` and ``observe_many`` are).  Called only from the
        writer thread, so a sink that is not thread-safe is fine as long as
        nothing else drives it concurrently.
    batch_size:
        Flush as soon as this many records are buffered.
    max_latency:
        Flush when the oldest buffered record has waited this many seconds,
        even if the batch is not full.
    queue_size:
        Bound of the submission queue; :meth:`submit` blocks (backpressure)
        when the writer is this far behind.
    """

    def __init__(
        self,
        sink: Callable[[Sequence["MovementRecord"]], object],
        *,
        batch_size: int = DEFAULT_BATCH_SIZE,
        max_latency: float = DEFAULT_MAX_LATENCY,
        queue_size: int = DEFAULT_QUEUE_SIZE,
    ) -> None:
        if batch_size < 1:
            raise IngestError(f"batch size must be positive, got {batch_size!r}")
        if max_latency <= 0:
            raise IngestError(f"max latency must be positive, got {max_latency!r}")
        if queue_size < 1:
            raise IngestError(f"queue size must be positive, got {queue_size!r}")
        self._sink = sink
        self._batch_size = batch_size
        self._max_latency = max_latency
        self._queue: "queue.Queue" = queue.Queue(maxsize=queue_size)
        self._failures: List[BatchFailure] = []
        self._failure_lock = threading.Lock()
        # Serializes the closed-check-then-enqueue of submit()/flush()
        # against close(), so nothing lands behind the _CLOSE sentinel and
        # a flush marker can never be orphaned; also makes the submitted
        # counter exact under multiple producer threads.
        self._lifecycle_lock = threading.Lock()
        self._submitted = 0
        self._written = 0
        self._closed = False
        self._writer = threading.Thread(
            target=self._run, name="movement-ingestor", daemon=True
        )
        self._writer.start()

    # ------------------------------------------------------------------ #
    # Producer API
    # ------------------------------------------------------------------ #
    def submit(self, record: "MovementRecord") -> None:
        """Queue one record for ingestion (blocks when the queue is full).

        Backpressure note: a full queue blocks *inside* the lifecycle lock;
        that is safe because the writer thread keeps draining until it sees
        the close sentinel, which cannot be enqueued while we hold the lock.
        """
        with self._lifecycle_lock:
            if self._closed:
                raise IngestError("cannot submit to a closed ingestor")
            self._queue.put(record)
            self._submitted += 1

    def submit_many(self, records: Iterable["MovementRecord"]) -> int:
        """Queue an iterable of records; returns how many were accepted."""
        count = 0
        for record in records:
            self.submit(record)
            count += 1
        return count

    def flush(self, *, raise_failures: bool = True) -> None:
        """Block until everything submitted so far has reached the sink.

        With ``raise_failures`` (the default), re-raises the batches the
        sink rejected since the last flush as one :class:`IngestError`.
        """
        marker = _Flush()
        with self._lifecycle_lock:
            if self._closed:
                raise IngestError("cannot flush a closed ingestor")
            self._queue.put(marker)
        marker.done.wait()
        if raise_failures:
            self._raise_failures()

    def close(self, *, raise_failures: bool = True) -> None:
        """Flush pending records, stop the writer thread, surface failures.

        Idempotent; the flush-on-close guarantee is what lets a tracker
        adapter simply ``with pep.ingestor() as stream: ...`` and know every
        accepted observation is durable when the block exits.
        """
        with self._lifecycle_lock:
            closing = not self._closed
            if closing:
                self._closed = True
                self._queue.put(_CLOSE)
        if closing:
            self._writer.join()
        if raise_failures:
            self._raise_failures()

    def __enter__(self) -> "MovementIngestor":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        # Let an exception already unwinding the with-block take precedence
        # over (but not hide) batch failures.
        self.close(raise_failures=exc_type is None)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has been called."""
        return self._closed

    @property
    def submitted(self) -> int:
        """Records accepted by :meth:`submit` so far."""
        return self._submitted

    @property
    def written(self) -> int:
        """Records the sink has durably accepted so far."""
        return self._written

    @property
    def dropped(self) -> int:
        """Records lost to rejected batches so far."""
        with self._failure_lock:
            return sum(failure.dropped for failure in self._failures)

    @property
    def failures(self) -> Tuple[BatchFailure, ...]:
        """The batch failures not yet surfaced by a flush/close."""
        with self._failure_lock:
            return tuple(self._failures)

    def _raise_failures(self) -> None:
        with self._failure_lock:
            failures, self._failures = self._failures, []
        if failures:
            detail = "; ".join(str(failure) for failure in failures)
            error = IngestError(
                f"{len(failures)} ingest batch(es) were rejected and dropped: {detail}"
            )
            error.failures = failures  # type: ignore[attr-defined]
            raise error from failures[0].error

    # ------------------------------------------------------------------ #
    # Writer thread
    # ------------------------------------------------------------------ #
    def _run(self) -> None:
        buffer: List["MovementRecord"] = []
        deadline: Optional[float] = None
        while True:
            timeout = None
            if deadline is not None:
                timeout = max(0.0, deadline - time.monotonic())
            try:
                item = self._queue.get(timeout=timeout)
            except queue.Empty:
                self._write(buffer)
                buffer, deadline = [], None
                continue
            if item is _CLOSE:
                # Drain everything that raced the close: records enqueued
                # by a submit() that passed its closed-check late are still
                # written (flush-on-close durability), and flush() markers
                # are released instead of leaving their callers waiting.
                markers: List[_Flush] = []
                while True:
                    try:
                        straggler = self._queue.get_nowait()
                    except queue.Empty:
                        break
                    if isinstance(straggler, _Flush):
                        markers.append(straggler)
                    elif straggler is not _CLOSE:
                        buffer.append(straggler)
                self._write(buffer)
                for marker in markers:
                    marker.done.set()
                return
            if isinstance(item, _Flush):
                self._write(buffer)
                buffer, deadline = [], None
                item.done.set()
                continue
            if not buffer:
                deadline = time.monotonic() + self._max_latency
            buffer.append(item)
            if len(buffer) >= self._batch_size:
                self._write(buffer)
                buffer, deadline = [], None

    def _write(self, batch: List["MovementRecord"]) -> None:
        if not batch:
            return
        try:
            self._sink(batch)
        except Exception as exc:  # noqa: BLE001 - surfaced via flush/close
            with self._failure_lock:
                self._failures.append(BatchFailure(exc, len(batch)))
        else:
            self._written += len(batch)
