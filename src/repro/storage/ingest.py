"""The streaming observe path: a bounded-queue, group-commit ingestor.

Tracker hardware emits movement observations continuously; feeding them to
the engine one blocking ``observe_entry`` call at a time couples the
tracker's line rate to the full enforcement round-trip (monitor, storage
commit, audit).  :class:`MovementIngestor` decouples the two with the
classic group-commit shape:

* producers :meth:`~MovementIngestor.submit` records into a **bounded**
  queue (backpressure instead of unbounded memory when the writer falls
  behind);
* one background writer thread drains the queue and hands the records to
  the sink — :meth:`~repro.storage.movement_db.MovementDatabase.record_many`
  or :meth:`~repro.api.pep.EnforcementPoint.observe_many` — in batches,
  flushing whenever ``batch_size`` records have accumulated **or** the
  oldest queued record has waited ``max_latency`` seconds (so a trickle of
  events still lands promptly);
* :meth:`~MovementIngestor.flush` is a synchronous barrier, and closing the
  ingestor (or leaving its ``with`` block) flushes everything accepted so
  far before the thread exits;
* an optional :class:`CheckpointPolicy` piggybacks movement-database
  checkpointing on the same writer thread — every N written events and/or
  M seconds, between batches, with an archive-retention cap so compaction
  does not just move the unbounded growth into ``movements_archive``.

Failure semantics follow the sink.  ``record_many`` is all-or-nothing, and
``observe_many`` runs inside the movement database's ``bulk()`` scope —
transactional on SQLite and on the plain in-memory backend — so a failing
batch (e.g. a strict-mode inconsistent exit) leaves the *movement store*
exactly as if the batch were never submitted; it is recorded as a
:class:`BatchFailure` and re-raised as :class:`~repro.errors.IngestError`
by the next ``flush()``/``close()``.  Two caveats: the monitor's
in-process session/alert state may retain the records an ``observe_many``
batch processed *before* the failing one (sessions are observability
state, not storage), and the sharded in-memory store's ``bulk()`` is a
no-op (its own ``record_many`` validates up front instead).  Later batches
keep flowing; an enforcement pipeline must not stop observing the building
because one tracker emitted garbage.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterable, List, Optional, Sequence, Tuple

from repro.errors import IngestError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.storage.movement_db import MovementRecord

__all__ = ["BatchFailure", "CheckpointPolicy", "MovementIngestor"]

#: Default flush triggers: a batch this large, or a record this old (seconds).
DEFAULT_BATCH_SIZE = 256
DEFAULT_MAX_LATENCY = 0.05
DEFAULT_QUEUE_SIZE = 8192


@dataclass(frozen=True)
class BatchFailure:
    """One batch the sink rejected: the error, the drop count, and the records.

    *records* carries the batch itself, so a caller that catches the
    :class:`~repro.errors.IngestError` a flush raises can retry the failed
    records (after fixing the cause) or route them to a dead letter — the
    remote ingest path ships them back to the submitting client for exactly
    that purpose.
    """

    error: Exception
    dropped: int
    records: Tuple["MovementRecord", ...] = ()

    def __str__(self) -> str:
        return f"batch of {self.dropped} record(s) failed: {self.error}"


@dataclass(frozen=True)
class CheckpointPolicy:
    """When the ingest writer should checkpoint the movement database.

    Parameters
    ----------
    every_events:
        Checkpoint once this many records have been written since the last
        checkpoint.
    every_seconds:
        Checkpoint when this much time has passed since the last checkpoint
        **and** at least one record has been written since (an idle stream
        never checkpoints an unchanged database).
    retain_archived:
        Archive-retention cap: after each compacting checkpoint, prune the
        ``movements_archive`` down to at most this many records, so the
        archive stops growing without bound.  ``None`` keeps everything.
    compact:
        Whether the scheduled checkpoints compact (archive the covered log
        prefix); retention only applies to compacting checkpoints.

    At least one of *every_events* / *every_seconds* is required.  The policy
    piggybacks on the ingestor's writer thread — no extra thread, and a
    checkpoint never lands inside an open batch transaction.
    """

    every_events: Optional[int] = None
    every_seconds: Optional[float] = None
    retain_archived: Optional[int] = None
    compact: bool = True

    def __post_init__(self) -> None:
        if self.every_events is None and self.every_seconds is None:
            raise IngestError(
                "a checkpoint policy needs a trigger: every_events and/or every_seconds"
            )
        if self.every_events is not None and (
            not isinstance(self.every_events, int)
            or isinstance(self.every_events, bool)
            or self.every_events < 1
        ):
            raise IngestError(f"every_events must be a positive integer, got {self.every_events!r}")
        if self.every_seconds is not None and not self.every_seconds > 0:
            raise IngestError(f"every_seconds must be positive, got {self.every_seconds!r}")
        if self.retain_archived is not None and (
            not isinstance(self.retain_archived, int)
            or isinstance(self.retain_archived, bool)
            or self.retain_archived < 0
        ):
            raise IngestError(
                f"retain_archived must be a non-negative integer, got {self.retain_archived!r}"
            )

    def run(self, movement_db, alert_sink=None) -> object:
        """Checkpoint *movement_db* under this policy (compaction + retention).

        Retention note: pruned archive records are gone — point-in-time
        query replays and windowed entry counts whose windows reach past the
        pruned era see fewer events.  Size ``retain_archived`` to cover the
        longest entry window whose budget must stay exactly enforced.

        With an *alert_sink*, **alert retention follows archive pruning**:
        after the prune, alerts older than the store's
        ``oldest_retained_time`` are dropped too — they attest to movements
        that no longer exist anywhere in the log.
        """
        receipt = movement_db.checkpoint(compact=self.compact)
        if self.compact and self.retain_archived is not None:
            pruned = movement_db.prune_archive(self.retain_archived)
            if pruned and alert_sink is not None:
                horizon = movement_db.oldest_retained_time
                if horizon is None:
                    # The prune emptied the store entirely (retain_archived
                    # small enough to cover nothing): every movement through
                    # the archived boundary is gone, so the matching alerts
                    # must go too — without this, the most aggressive
                    # retention setting would be the one that leaks alerts.
                    boundary = movement_db.archived_through
                    horizon = boundary + 1 if boundary is not None else None
                alert_sink.prune_before(horizon)
        return receipt

    def bound(self, movement_db, alert_sink=None) -> Callable[[], object]:
        """A zero-argument checkpoint callable for :class:`MovementIngestor`.

        The single wiring point for policy-driven checkpointing — pass
        ``checkpoint_policy=policy, checkpoint=policy.bound(db)``.  The
        enforcement point passes its alert sink so scheduled prunes retire
        the matching alerts (see :meth:`run`).
        """
        return lambda: self.run(movement_db, alert_sink)


class _Flush:
    """Queue sentinel: flush what is buffered, then set the event."""

    __slots__ = ("done",)

    def __init__(self) -> None:
        self.done = threading.Event()


_CLOSE = object()


class MovementIngestor:
    """Queue-fed group-commit writer over a batch sink.

    Parameters
    ----------
    sink:
        ``records -> None`` batch consumer; must be all-or-nothing
        (``record_many`` and ``observe_many`` are).  Called only from the
        writer thread, so a sink that is not thread-safe is fine as long as
        nothing else drives it concurrently.
    batch_size:
        Flush as soon as this many records are buffered.
    max_latency:
        Flush when the oldest buffered record has waited this many seconds,
        even if the batch is not full.
    queue_size:
        Bound, in **records**, of the submission queue; :meth:`submit` and
        :meth:`submit_many` block (backpressure) when the writer is this
        many records behind.  A single batch larger than the bound is
        admitted alone rather than deadlocking.
    checkpoint_policy:
        Optional :class:`CheckpointPolicy`; the writer thread runs
        *checkpoint* between batches whenever the policy comes due.
    checkpoint:
        Zero-argument callable performing the checkpoint (typically
        ``lambda: policy.run(movement_db)`` — the enforcement point wires
        this).  Required when a policy is given.  Checkpoint errors never
        stop ingest; they are surfaced via :attr:`checkpoint_errors`.
    on_commit:
        Optional ``(written, duration_seconds) -> None`` observer invoked on
        the writer thread after each successful group commit — the serving
        layer's telemetry hook.  This module stays telemetry-agnostic: the
        hook is plain data out, and its errors are swallowed (observability
        must never fail ingest).
    """

    def __init__(
        self,
        sink: Callable[[Sequence["MovementRecord"]], object],
        *,
        batch_size: int = DEFAULT_BATCH_SIZE,
        max_latency: float = DEFAULT_MAX_LATENCY,
        queue_size: int = DEFAULT_QUEUE_SIZE,
        checkpoint_policy: Optional[CheckpointPolicy] = None,
        checkpoint: Optional[Callable[[], object]] = None,
        on_commit: Optional[Callable[[int, float], None]] = None,
    ) -> None:
        if batch_size < 1:
            raise IngestError(f"batch size must be positive, got {batch_size!r}")
        if max_latency <= 0:
            raise IngestError(f"max latency must be positive, got {max_latency!r}")
        if queue_size < 1:
            raise IngestError(f"queue size must be positive, got {queue_size!r}")
        if checkpoint_policy is not None and checkpoint is None:
            raise IngestError("a checkpoint policy needs a checkpoint callable to run")
        self._sink = sink
        self._on_commit = on_commit
        self._batch_size = batch_size
        self._max_latency = max_latency
        self._checkpoint_policy = checkpoint_policy
        self._checkpoint = checkpoint
        self._checkpoints = 0
        self._checkpoint_errors: List[Exception] = []
        self._events_since_checkpoint = 0
        self._last_checkpoint = time.monotonic()
        # Backpressure is accounted in records, not queue items: batches
        # travel as single items (one hand-off per submit_many), so the
        # queue itself is unbounded and this pair enforces the record bound.
        self._queue_bound = queue_size
        self._queued_records = 0
        self._capacity = threading.Condition()
        self._queue: "queue.Queue" = queue.Queue()
        self._failures: List[BatchFailure] = []
        self._failure_lock = threading.Lock()
        # Serializes the closed-check-then-enqueue of submit()/flush()
        # against close(), so nothing lands behind the _CLOSE sentinel and
        # a flush marker can never be orphaned; also makes the submitted
        # counter exact under multiple producer threads.
        self._lifecycle_lock = threading.Lock()
        self._submitted = 0
        self._written = 0
        self._closed = False
        self._writer = threading.Thread(
            target=self._run, name="movement-ingestor", daemon=True
        )
        self._writer.start()

    # ------------------------------------------------------------------ #
    # Producer API
    # ------------------------------------------------------------------ #
    def _reserve(self, count: int) -> None:
        """Block until *count* records fit under the queue bound.

        A batch larger than the whole bound is admitted once the queue is
        empty (never deadlocks).  Waiting here can happen while holding the
        lifecycle lock — safe for the same reason blocking on a bounded
        queue was: the writer keeps draining (and releasing capacity)
        without ever needing that lock, and the close sentinel cannot be
        enqueued while a submitter holds it.
        """
        with self._capacity:
            while self._queued_records > 0 and self._queued_records + count > self._queue_bound:
                self._capacity.wait()
            self._queued_records += count

    def _release(self, count: int) -> None:
        with self._capacity:
            self._queued_records -= count
            self._capacity.notify_all()

    def submit(self, record: "MovementRecord") -> None:
        """Queue one record for ingestion (blocks when the queue is full)."""
        with self._lifecycle_lock:
            if self._closed:
                raise IngestError("cannot submit to a closed ingestor")
            self._reserve(1)
            self._queue.put(record)
            self._submitted += 1

    def submit_many(self, records: Iterable["MovementRecord"]) -> int:
        """Queue a batch of records as one item; returns how many were accepted.

        The whole batch reaches the writer in one hand-off — at
        remote-ingest rates the per-record queue round-trip of repeated
        :meth:`submit` calls costs more than the storage write itself — but
        still counts record-by-record against the queue bound
        (backpressure).  The batch stays one flush unit: it is appended to
        the writer's buffer atomically, so a sink failure reports it whole.
        """
        batch = list(records)
        if not batch:
            return 0
        with self._lifecycle_lock:
            if self._closed:
                raise IngestError("cannot submit to a closed ingestor")
            self._reserve(len(batch))
            self._queue.put(batch)
            self._submitted += len(batch)
        return len(batch)

    def flush(self, *, raise_failures: bool = True) -> None:
        """Block until everything submitted so far has reached the sink.

        With ``raise_failures`` (the default), re-raises the batches the
        sink rejected since the last flush as one :class:`IngestError`.
        """
        marker = _Flush()
        with self._lifecycle_lock:
            if self._closed:
                raise IngestError("cannot flush a closed ingestor")
            self._queue.put(marker)
        marker.done.wait()
        if raise_failures:
            self._raise_failures()

    def close(self, *, raise_failures: bool = True) -> None:
        """Flush pending records, stop the writer thread, surface failures.

        Idempotent; the flush-on-close guarantee is what lets a tracker
        adapter simply ``with pep.ingestor() as stream: ...`` and know every
        accepted observation is durable when the block exits.
        """
        with self._lifecycle_lock:
            closing = not self._closed
            if closing:
                self._closed = True
                self._queue.put(_CLOSE)
        if closing:
            self._writer.join()
        if raise_failures:
            self._raise_failures()

    def __enter__(self) -> "MovementIngestor":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        # Let an exception already unwinding the with-block take precedence
        # over (but not hide) batch failures.
        self.close(raise_failures=exc_type is None)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has been called."""
        return self._closed

    @property
    def submitted(self) -> int:
        """Records accepted by :meth:`submit` so far."""
        return self._submitted

    @property
    def queue_depth(self) -> int:
        """Records currently queued, not yet handed to the sink — the
        backpressure depth a dashboard wants to watch."""
        with self._capacity:
            return self._queued_records

    @property
    def written(self) -> int:
        """Records the sink has durably accepted so far."""
        return self._written

    @property
    def dropped(self) -> int:
        """Records lost to rejected batches so far."""
        with self._failure_lock:
            return sum(failure.dropped for failure in self._failures)

    @property
    def failures(self) -> Tuple[BatchFailure, ...]:
        """The batch failures not yet surfaced by a flush/close."""
        with self._failure_lock:
            return tuple(self._failures)

    @property
    def checkpoints(self) -> int:
        """How many scheduled checkpoints the writer thread has completed."""
        return self._checkpoints

    @property
    def checkpoint_errors(self) -> Tuple[Exception, ...]:
        """Errors raised by scheduled checkpoints (ingest kept flowing)."""
        with self._failure_lock:
            return tuple(self._checkpoint_errors)

    def _raise_failures(self) -> None:
        with self._failure_lock:
            failures, self._failures = self._failures, []
        if failures:
            detail = "; ".join(str(failure) for failure in failures)
            error = IngestError(
                f"{len(failures)} ingest batch(es) were rejected and dropped: {detail}"
            )
            error.failures = failures  # type: ignore[attr-defined]
            raise error from failures[0].error

    # ------------------------------------------------------------------ #
    # Writer thread
    # ------------------------------------------------------------------ #
    def _run(self) -> None:
        buffer: List["MovementRecord"] = []
        deadline: Optional[float] = None
        while True:
            timeout = None
            if deadline is not None:
                timeout = max(0.0, deadline - time.monotonic())
            checkpoint_timeout = self._checkpoint_timeout()
            if checkpoint_timeout is not None:
                timeout = (
                    checkpoint_timeout if timeout is None else min(timeout, checkpoint_timeout)
                )
            try:
                item = self._queue.get(timeout=timeout)
            except queue.Empty:
                self._write(buffer)
                buffer, deadline = [], None
                self._maybe_checkpoint()
                continue
            if item is _CLOSE:
                # Drain everything that raced the close: records enqueued
                # by a submit() that passed its closed-check late are still
                # written (flush-on-close durability), and flush() markers
                # are released instead of leaving their callers waiting.
                markers: List[_Flush] = []
                while True:
                    try:
                        straggler = self._queue.get_nowait()
                    except queue.Empty:
                        break
                    if isinstance(straggler, _Flush):
                        markers.append(straggler)
                    elif isinstance(straggler, list):
                        self._release(len(straggler))
                        buffer.extend(straggler)
                    elif straggler is not _CLOSE:
                        self._release(1)
                        buffer.append(straggler)
                self._write(buffer)
                for marker in markers:
                    marker.done.set()
                self._maybe_checkpoint()
                return
            if isinstance(item, _Flush):
                self._write(buffer)
                buffer, deadline = [], None
                item.done.set()
                self._maybe_checkpoint()
                continue
            if not buffer:
                deadline = time.monotonic() + self._max_latency
            if isinstance(item, list):  # a submit_many batch, handed off whole
                self._release(len(item))
                buffer.extend(item)
            else:
                self._release(1)
                buffer.append(item)
            if len(buffer) >= self._batch_size:
                self._write(buffer)
                buffer, deadline = [], None
                self._maybe_checkpoint()

    def _write(self, batch: List["MovementRecord"]) -> None:
        if not batch:
            return
        started = time.perf_counter()
        try:
            self._sink(batch)
        except Exception as exc:  # noqa: BLE001 - surfaced via flush/close
            with self._failure_lock:
                self._failures.append(BatchFailure(exc, len(batch), tuple(batch)))
        else:
            self._written += len(batch)
            self._events_since_checkpoint += len(batch)
            if self._on_commit is not None:
                try:
                    self._on_commit(len(batch), time.perf_counter() - started)
                except Exception:  # noqa: BLE001 - observers must not fail ingest
                    pass

    # ------------------------------------------------------------------ #
    # Scheduled checkpoints (writer thread only)
    # ------------------------------------------------------------------ #
    def _checkpoint_timeout(self) -> Optional[float]:
        """Seconds until the time-based checkpoint trigger, or ``None``.

        Only meaningful when records have landed since the last checkpoint —
        an idle stream sleeps on the queue indefinitely instead of waking to
        re-checkpoint an unchanged database.
        """
        policy = self._checkpoint_policy
        if policy is None or policy.every_seconds is None or self._events_since_checkpoint == 0:
            return None
        return max(0.0, self._last_checkpoint + policy.every_seconds - time.monotonic())

    def _maybe_checkpoint(self) -> None:
        policy = self._checkpoint_policy
        if policy is None or self._events_since_checkpoint == 0:
            return
        due = (
            policy.every_events is not None
            and self._events_since_checkpoint >= policy.every_events
        ) or (
            policy.every_seconds is not None
            and time.monotonic() - self._last_checkpoint >= policy.every_seconds
        )
        if not due:
            return
        try:
            self._checkpoint()
        except Exception as exc:  # noqa: BLE001 - ingest must keep flowing
            with self._failure_lock:
                self._checkpoint_errors.append(exc)
        else:
            self._checkpoints += 1
        finally:
            # Reset either way: a failing checkpoint retries at the next
            # trigger instead of after every batch.
            self._events_since_checkpoint = 0
            self._last_checkpoint = time.monotonic()
