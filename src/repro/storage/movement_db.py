"""The Location & Movements Database of Figure 3.

*"The location & movements database stores the location layout, as well as
users' movements.  These data are then used for authorization validation,
system status checking, etc."*

The database records ENTER/EXIT movement events, answers the occupancy
queries the access-control engine needs (current location of a subject,
occupants of a location, number of entries a subject has used within an
entry duration), and keeps the full movement history for the query engine
and the audit reports.  The location layout itself is held as a
:class:`~repro.locations.multilevel.LocationHierarchy` reference.

Every hot read is served by the event-indexed
:class:`~repro.storage.occupancy.OccupancyService` projection that both
backends fold each record into — occupancy and unwindowed entry counts are
O(1), windowed entry counts O(log n) (bisection in memory, an indexed SQL
``COUNT(*)`` on SQLite) — instead of replaying the movement history.  The
full history remains the source of truth: the projection can always be
rebuilt from it, and the SQLite backend additionally persists the projection
in derived tables (``occ_current``, ``occ_entry_counts``) updated in the
same transaction as each insert, so reopening a database file does not
require an O(n) replay.

Two scale features sit on top of the projection:

* **Sharding** — a backend built with ``shards=N`` (or ``shards="auto"``,
  one shard per CPU core) partitions its projection into N shard-local
  projections keyed by a consistent hash on the subject
  (:class:`~repro.storage.sharding.ShardedOccupancyService`).
  :class:`ShardedInMemoryMovementDatabase` additionally shards the log
  itself, so ``record_many`` batches from multiple writer threads ingest
  in parallel — shard locks are the only contention points.
* **Checkpoint/compaction** — :meth:`MovementDatabase.checkpoint` persists
  the projection snapshot (SQLite: the ``occ_checkpoint`` tables; memory:
  a pickle-free tuple) and, with ``compact=True``, archives the log prefix
  it covers.  Replay-style reads (``history()``, audit replays, crash
  recovery of the SQLite derived tables) then cost O(events since the
  checkpoint) instead of O(all time); ``history(include_archived=True)``
  still reaches the full log.
"""

from __future__ import annotations

import sqlite3
import threading
from abc import ABC, abstractmethod
from contextlib import contextmanager
from dataclasses import dataclass
from enum import Enum
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Tuple

from repro.errors import StorageError
from repro.core.subjects import subject_name
from repro.locations.location import LocationName, location_name
from repro.locations.multilevel import LocationHierarchy
from repro.storage.occupancy import OccupancyAnomaly, OccupancyService
from repro.storage.sharding import ShardedOccupancyService, resolve_shard_count
from repro.temporal.interval import TimeInterval

__all__ = [
    "Checkpoint",
    "MovementKind",
    "MovementNotice",
    "MovementRecord",
    "MovementDatabase",
    "InMemoryMovementDatabase",
    "ShardedInMemoryMovementDatabase",
    "SqliteMovementDatabase",
]


class MovementKind(str, Enum):
    """The two movement transitions the trackers report."""

    ENTER = "enter"
    EXIT = "exit"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True, slots=True)
class MovementRecord:
    """One observed movement: *subject* entered or exited *location* at *time*.

    ``slots=True`` because movement records are the unit the ingest hot
    loops iterate — slot attribute reads are measurably cheaper than dict
    lookups at 100k-events-per-batch scale, and a long trace holds millions
    of these alive at once.
    """

    time: int
    subject: str
    location: LocationName
    kind: MovementKind

    def __post_init__(self) -> None:
        if not isinstance(self.time, int) or isinstance(self.time, bool) or self.time < 0:
            raise StorageError(f"movement time must be a non-negative integer, got {self.time!r}")
        object.__setattr__(self, "subject", subject_name(self.subject))
        object.__setattr__(self, "location", location_name(self.location))
        object.__setattr__(self, "kind", MovementKind(self.kind))

    def __str__(self) -> str:
        return f"{self.kind.value.upper()}({self.time}, {self.subject}, {self.location})"


@dataclass(frozen=True)
class MovementNotice:
    """One applied movement, as announced to mutation subscribers.

    *previous_location* is where the projection tracked the subject
    immediately before this record was folded in (``None`` when the subject
    was outside).  Subscribers that cache occupancy-derived reads need it:
    an ENTER while the subject was tracked elsewhere silently changes the
    occupancy of **both** locations.
    """

    record: MovementRecord
    previous_location: Optional[LocationName] = None

    @property
    def affected_locations(self) -> Tuple[LocationName, ...]:
        """Every location whose occupancy-derived reads this movement may change."""
        record = self.record
        previous = self.previous_location
        if previous is not None and previous != record.location:
            return (record.location, previous)
        return (record.location,)

    def to_wire(self) -> List:
        """Compact wire form ``[time, subject, location, kind, previous]``.

        Notices cross process boundaries on the replica invalidation bus
        (:mod:`repro.service.bus`); the array form mirrors the movement
        record's wire shape with the previous location appended.
        """
        record = self.record
        return [
            record.time,
            record.subject,
            record.location,
            record.kind.value,
            self.previous_location,
        ]

    @staticmethod
    def from_wire(item) -> "MovementNotice":
        """Rebuild (and re-validate) a notice from its wire array."""
        if not isinstance(item, (list, tuple)) or len(item) != 5:
            raise StorageError(
                f"a movement notice must be a [time, subject, location, kind, previous] "
                f"array, got {item!r}"
            )
        time, subject, location, kind, previous = item
        return MovementNotice(
            MovementRecord(time, subject, location, kind),
            location_name(previous) if previous is not None else None,
        )


@dataclass(frozen=True)
class Checkpoint:
    """The receipt a :meth:`MovementDatabase.checkpoint` call returns.

    *position* is the log position (event count / max seq) the checkpoint
    covers; *archived* is how many log records this call moved to the
    archive; *subjects_inside* and *pairs* size the persisted snapshot.
    """

    position: int
    archived: int
    subjects_inside: int
    pairs: int

    def __str__(self) -> str:
        return (
            f"checkpoint @ {self.position}: {self.archived} event(s) archived, "
            f"{self.subjects_inside} subject(s) inside, {self.pairs} (subject, location) pair(s)"
        )


class MovementDatabase(ABC):
    """Interface shared by the movement-database backends.

    Both backends maintain an :class:`OccupancyService` projection; the
    base class serves every occupancy read from it.  With ``strict=True``
    an EXIT that contradicts the tracked occupancy (subject inside a
    different location, or not inside at all) raises
    :class:`~repro.errors.StorageError` instead of being recorded with an
    anomaly note — with an identical message on every backend.
    """

    def __init__(
        self,
        hierarchy: Optional[LocationHierarchy] = None,
        *,
        strict: bool = False,
        shards=None,
    ) -> None:
        self._hierarchy = hierarchy
        self._strict = strict
        self._shards = resolve_shard_count(shards)
        self._occupancy = self._service_factory()
        self._movement_listeners: List = []

    def _service_factory(self):
        if self._shards is not None:
            return ShardedOccupancyService(self._shards)
        return OccupancyService()

    @property
    def hierarchy(self) -> Optional[LocationHierarchy]:
        """The location layout this database tracks (may be ``None``)."""
        return self._hierarchy

    @property
    def strict(self) -> bool:
        """Whether inconsistent exits raise instead of being noted."""
        return self._strict

    @property
    def occupancy_service(self):
        """The event-indexed projection serving this database's hot reads.

        An :class:`OccupancyService`, or a
        :class:`~repro.storage.sharding.ShardedOccupancyService` (same read
        API) when the database was built with ``shards=...``.
        """
        return self._occupancy

    @property
    def shard_count(self) -> int:
        """How many projection shards this database runs (1 when unsharded)."""
        return self._shards if self._shards is not None else 1

    @property
    def anomalies(self) -> Tuple[OccupancyAnomaly, ...]:
        """Inconsistent-exit notes collected by the projection."""
        return self._occupancy.anomalies

    # -- mutation notifications ----------------------------------------- #
    def subscribe(self, listener) -> "Callable[[], None]":
        """Register *listener* for movement mutations; returns an unsubscriber.

        The listener is called with a sequence of :class:`MovementNotice`
        after each write lands — one call per record on the single-record
        path, one per batch on the batch paths.  Notifications are **eviction
        hints, not durable truth**: a batch inside an enclosing ``bulk()``
        scope notifies as soon as it is applied, so a later rollback leaves
        subscribers having over-invalidated (safe for caches) rather than
        under-invalidated.  Listeners run on the writing thread and must not
        raise.
        """
        self._movement_listeners.append(listener)

        def unsubscribe() -> None:
            try:
                self._movement_listeners.remove(listener)
            except ValueError:
                pass

        return unsubscribe

    def _notify(self, notices: List[MovementNotice]) -> None:
        if not notices:
            return
        for listener in list(self._movement_listeners):
            listener(notices)

    def _notices_for(self, batch: List[MovementRecord]) -> List[MovementNotice]:
        """Notices for *batch*, with previous locations evolving through it.

        Must be called **before** the batch is folded into the projection:
        each record's previous location is read from the live projection for
        the subject's first record in the batch, then tracked through the
        batch itself.
        """
        if not self._movement_listeners:
            return []
        return self._trace_notices(batch)

    def _trace_notices(self, batch: List[MovementRecord]) -> List[MovementNotice]:
        """Unconditionally build the notices for *batch* (see :meth:`_notices_for`).

        :meth:`pickup` needs the notices even with no subscribers attached —
        the caller (the replica coherence layer) returns them upward.
        """
        tracked: Dict[str, Optional[str]] = {}
        notices: List[MovementNotice] = []
        current_location = self._occupancy.current_location
        for record in batch:
            subject = record.subject
            if subject in tracked:
                previous = tracked[subject]
            else:
                previous = current_location(subject)
            notices.append(MovementNotice(record, previous))
            if record.kind is MovementKind.ENTER:
                tracked[subject] = record.location
            elif previous == record.location:
                # A consistent exit evicts; an anomalous one leaves the
                # tracked location alone (mirroring the projection).
                tracked[subject] = None
            else:
                tracked[subject] = previous
        return notices

    def _notice_for(self, record: MovementRecord) -> List[MovementNotice]:
        if not self._movement_listeners:
            return []
        return [MovementNotice(record, self._occupancy.current_location(record.subject))]

    # -- replication positions ------------------------------------------ #
    @property
    def high_water(self) -> int:
        """Position of the newest movement this store knows about.

        On the SQLite backend this reads the **file**, so a replica sharing
        the database with a writer process sees the writer's committed
        position — the number :meth:`pickup` catches the local projection up
        to.  On purely in-process backends it equals the local position.
        """
        return self.applied_position

    @property
    def applied_position(self) -> int:
        """Position of the newest movement folded into *this* projection."""
        return len(self)

    def pickup(self) -> List[MovementNotice]:
        """Fold movements another process appended into this projection.

        Backends without a shared storage medium have nothing to pick up and
        return ``[]``.  The SQLite backend reads the shared file's rows past
        :attr:`applied_position`, folds them into the in-process projection,
        and **notifies subscribers** with their notices — so an attached
        decision cache evicts exactly the keys the foreign writes touched.
        Returns the applied notices (empty when already caught up).
        """
        return []

    def touch_marks_since(self, position: int) -> Optional[Dict[LocationName, int]]:
        """Which locations movements past *position* may have invalidated.

        The warm-restart validation primitive of the persistent decision
        cache (:mod:`repro.service.cache_store`): a cached decision stored
        while this log stood at position ``p`` is still valid iff no later
        movement could have changed its location's occupancy-derived inputs.
        Returns ``{location: mark}`` where ``mark`` is the newest position
        whose movement may affect that location — an entry survives iff
        ``marks.get(its_location, 0) <= its_position``.

        The marks are a **conservative superset**: besides each record's own
        location, every location a since-moving subject *ever* previously
        touched is marked (an ENTER elsewhere changes the previous
        location's occupancy, and the previous location is not derivable
        from single rows).  Over-marking drops valid entries (a cold start
        for those keys — safe); under-marking would serve stale decisions.

        Returns ``None`` when the store cannot reconstruct the window (no
        durable log, or the retained log no longer reaches *position*) —
        callers must treat that as "validate nothing".  The base
        implementation answers exactly for the trivial case: a position at
        or past the high water has nothing after it.
        """
        if position >= self.high_water:
            return {}
        return None

    # -- partition handoff ----------------------------------------------- #
    def known_subjects(self) -> List[str]:
        """Every subject with at least one record (live or archived), sorted.

        The serving fabric's reshard planner asks each partition for this to
        decide which subjects a new :class:`~repro.service.fabric.PartitionMap`
        strips from it.  O(n) scan by default; backends with an index
        override it.
        """
        return sorted({record.subject for record in self.history(include_archived=True)})

    def export_subjects(self, subjects: Iterable[str]) -> Dict[str, List[MovementRecord]]:
        """The archived and live log slices belonging to *subjects*.

        Returns ``{"archived": [...], "live": [...]}``.  Each slice keeps
        per-subject event order (the only order occupancy semantics depend
        on), and the archived/live split matches this store's compaction
        boundary exactly — the destination partition replays the live slice
        as live records and adopts the archived slice via
        :meth:`import_archived`, so scoped queries (``ENTRIES LIVE``,
        ``VIOLATIONS``) answer identically after the migration.
        """
        archived: List[MovementRecord] = []
        live: List[MovementRecord] = []
        for subject in subjects:
            full = self.history(subject=subject_name(subject), include_archived=True)
            live_slice = self.history(subject=subject_name(subject))
            split = len(full) - len(live_slice)
            archived.extend(full[:split])
            live.extend(full[split:])
        return {"archived": archived, "live": live}

    def import_archived(
        self, records: Iterable[MovementRecord], *, archived_through: Optional[int] = None
    ) -> int:
        """Adopt another partition's *archived* log slice for migrating subjects.

        The records are placed in the archive era (not the live log: they
        were already covered by a compacting checkpoint on their origin
        partition) and folded into the occupancy projection.  The imported
        subjects must not already hold state here — reshard moves whole
        subjects, never halves.  *archived_through* advances this store's
        LIVE/ARCHIVED boundary if the origin's boundary was newer.  Returns
        how many records were adopted.
        """
        raise StorageError(f"{type(self).__name__} does not support archive import")

    def forget_subjects(self, subjects: Iterable[str]) -> List[LocationName]:
        """Drop every record of *subjects* — log, archive, and projection.

        The source side of a partition handoff: once the destination owns a
        subject, a stale copy here would double-count it in cross-partition
        occupancy fan-outs.  Returns the sorted locations the forgotten
        records touched, so callers can evict occupancy-derived caches.
        Monotonic positions (:attr:`applied_position`) do not rewind.
        """
        raise StorageError(f"{type(self).__name__} does not support forgetting subjects")

    # -- write-side validation ------------------------------------------ #
    def _validate_record(self, record: MovementRecord) -> None:
        if self._hierarchy is not None and not self._hierarchy.is_primitive(record.location):
            raise StorageError(
                f"movement references unknown primitive location {record.location!r}"
            )

    def _check_strict_exit(self, record: MovementRecord) -> None:
        if not self._strict:
            return
        anomaly = self._occupancy.check_exit(record)
        if anomaly is not None:
            raise StorageError(f"inconsistent exit rejected: {anomaly}")

    def _validate_batch(self, records: List[MovementRecord]) -> None:
        """Validate a whole batch up front so strict batches are all-or-nothing.

        Strict exits are checked by replaying the batch onto a scratch
        projection seeded with the current occupancy, so the error message
        is the one :meth:`OccupancyService.check_exit` produces — identical
        to the single-record path on every backend.
        """
        for record in records:
            self._validate_record(record)
        if not self._strict:
            return
        scratch = OccupancyService(track_timelines=False)
        scratch.load(
            inside={
                subject: (location, self._occupancy.inside_since(subject) or 0)
                for subject, location in self._occupancy.subjects_inside().items()
            },
            entry_counts={},
        )
        for record in records:
            anomaly = scratch.check_exit(record)
            if anomaly is not None:
                raise StorageError(f"inconsistent exit rejected: {anomaly}")
            scratch.apply(record)

    # -- writes --------------------------------------------------------- #
    @abstractmethod
    def record(self, record: MovementRecord) -> MovementRecord:
        """Append one movement record (records must arrive in time order per subject)."""

    def record_many(self, records: Iterable[MovementRecord]) -> List[MovementRecord]:
        """Append a batch of movement records with one storage round-trip.

        The batch is validated up front (unknown locations and, in strict
        mode, inconsistent exits reject the whole batch before anything is
        written), then applied in order inside a single :meth:`bulk` scope —
        one transaction/commit on the SQLite backend.
        """
        batch = list(records)
        self._validate_batch(batch)
        with self.bulk():
            for record in batch:
                self.record(record)
        return batch

    def record_entry(self, time: int, subject: str, location: str) -> MovementRecord:
        """Convenience: record that *subject* entered *location* at *time*."""
        return self.record(MovementRecord(time, subject, location, MovementKind.ENTER))

    def record_exit(self, time: int, subject: str, location: str) -> MovementRecord:
        """Convenience: record that *subject* exited *location* at *time*."""
        return self.record(MovementRecord(time, subject, location, MovementKind.EXIT))

    @contextmanager
    def bulk(self) -> Iterator[None]:
        """Scope several writes into one storage transaction (no-op by default)."""
        yield

    @abstractmethod
    def clear(self) -> None:
        """Remove every movement record (including the archive and checkpoint state)."""

    # -- checkpoint / compaction ---------------------------------------- #
    def checkpoint(self, *, compact: bool = True) -> Checkpoint:
        """Persist the projection snapshot and (optionally) archive the log prefix.

        After a compacting checkpoint, replay-style reads — :meth:`history`
        without ``include_archived``, audit replays over it, and the SQLite
        backend's crash-recovery rebuild — cost O(events since the
        checkpoint) instead of O(all time).  The archived prefix stays
        reachable through ``history(include_archived=True)``; occupancy,
        entry counts (windowed included) and last-entry reads are unaffected
        because the projection/derived state already covers the archive.
        """
        raise StorageError(f"{type(self).__name__} does not support checkpointing")

    @property
    def archived_count(self) -> int:
        """Movement records moved to the archive by compacting checkpoints."""
        return 0

    def prune_archive(self, retain: int) -> int:
        """Drop the oldest archived records until at most *retain* remain.

        Compacting checkpoints bound the *live* log but let the archive grow
        without bound; retention caps it.  Returns how many records were
        dropped.  Dropped records are gone for good —
        ``history(include_archived=True)`` and archive-backed windowed entry
        counts no longer see them (the projection's counters, which already
        folded them in, stay exact).
        """
        if not isinstance(retain, int) or isinstance(retain, bool) or retain < 0:
            raise StorageError(f"archive retention must be a non-negative integer, got {retain!r}")
        return self._prune_archive(retain)

    def _prune_archive(self, retain: int) -> int:
        raise StorageError(f"{type(self).__name__} does not keep an archive to prune")

    @property
    def archived_through(self) -> Optional[int]:
        """The largest movement time ever covered by a compacting checkpoint.

        This is the LIVE/ARCHIVED boundary the query engine's scoped
        statements use: everything at or before this time belongs to the
        archived era.  ``None`` when no compaction has happened (every
        record is live).  Pruning the archive does not move the boundary —
        the pruned era stays archived, it just stops being replayable.
        """
        return None

    @property
    def oldest_retained_time(self) -> Optional[int]:
        """The smallest movement time still reachable anywhere in the store.

        After an archive prune, alerts older than this horizon attest to
        movements that no longer exist — alert retention
        (:meth:`~repro.engine.alerts.AlertSink.prune_before`) follows it.
        ``None`` when the store holds no records at all.
        """
        times = [record.time for record in self.history(include_archived=True)]
        return min(times) if times else None

    @property
    def events_since_checkpoint(self) -> int:
        """Log records not yet covered by a checkpoint (the replay bound)."""
        return len(self)

    # -- reads ---------------------------------------------------------- #
    @abstractmethod
    def history(
        self,
        *,
        subject: Optional[str] = None,
        location: Optional[str] = None,
        window: Optional[TimeInterval] = None,
        include_archived: bool = False,
    ) -> List[MovementRecord]:
        """Movement records, optionally filtered by subject, location and window.

        With ``include_archived=True`` the records archived by compacting
        checkpoints are included (full-log audit replays); by default only
        the live log — events since the last compaction — is scanned.
        """

    def current_location(self, subject: str) -> Optional[LocationName]:
        """The location the subject is currently inside, or ``None`` — O(1)."""
        return self._occupancy.current_location(subject_name(subject))

    def occupants(self, location: str) -> List[str]:
        """Subjects currently inside *location*, sorted — O(k log k)."""
        return self._occupancy.occupants(location_name(location))

    def occupancy(self, location: str) -> int:
        """Number of subjects currently inside *location* — O(1)."""
        return self._occupancy.occupancy(location_name(location))

    def entry_count(
        self, subject: str, location: str, window: Optional[TimeInterval] = None
    ) -> int:
        """Number of times *subject* entered *location* (within *window* if given).

        This is the counter Definition 7 checks against an authorization's
        entry budget — O(1) unwindowed, O(log n) windowed.
        """
        return self._occupancy.entry_count(subject_name(subject), location_name(location), window)

    def last_entry(self, subject: str, location: str) -> Optional[MovementRecord]:
        """The most recent ENTER record of *subject* into *location*, if any — O(1)."""
        return self._occupancy.last_entry(subject_name(subject), location_name(location))

    def last_movement(self, subject: str, location: str) -> Optional[MovementRecord]:
        """The most recent movement (either kind) of the pair, if any — O(1)."""
        return self._occupancy.last_movement(subject_name(subject), location_name(location))

    def subjects_inside(self) -> Dict[str, LocationName]:
        """Mapping from every currently-inside subject to their location."""
        return self._occupancy.subjects_inside()

    def __len__(self) -> int:
        return len(self.history())


def _filter_records(
    records: Iterable[MovementRecord],
    subject: Optional[str],
    location: Optional[str],
    window: Optional[TimeInterval],
) -> List[MovementRecord]:
    """Apply the shared ``history()`` filters to an iterable of records."""
    wanted_subject = subject_name(subject) if subject is not None else None
    wanted_location = location_name(location) if location is not None else None
    results = []
    for record in records:
        if wanted_subject is not None and record.subject != wanted_subject:
            continue
        if wanted_location is not None and record.location != wanted_location:
            continue
        if window is not None and not window.contains(record.time):
            continue
        results.append(record)
    return results


class InMemoryMovementDatabase(MovementDatabase):
    """List-backed movement store; every occupancy read hits the projection.

    :meth:`checkpoint` snapshots the projection as a pickle-free tuple
    (:attr:`checkpoint_state`) and, when compacting, moves the live log into
    the archive list — ``history()`` then scans only events since the
    checkpoint, while the projection keeps every read (windowed entry counts
    included) exact because its timelines were never rebuilt from the log.
    """

    def __init__(
        self, hierarchy: Optional[LocationHierarchy] = None, *, strict: bool = False
    ) -> None:
        super().__init__(hierarchy, strict=strict)
        self._records: List[MovementRecord] = []
        self._archive: List[MovementRecord] = []
        self._total_recorded = 0
        self._checkpoint_position = 0
        self._checkpoint_state: Optional[tuple] = None
        self._archived_through: Optional[int] = None
        self._in_bulk = False
        # Same transaction discipline as the SQLite backend: the streaming
        # writer's bulk()/record_many scopes and a foreground checkpoint()/
        # clear() serialize here (reentrant for records written inside a
        # same-thread bulk() scope).
        self._txn_lock = threading.RLock()

    def record(self, record: MovementRecord) -> MovementRecord:
        with self._txn_lock:
            self._validate_record(record)
            self._check_strict_exit(record)
            notices = self._notice_for(record)
            self._records.append(record)
            self._total_recorded += 1
            self._occupancy.apply(record)
            self._notify(notices)
            return record

    def record_many(self, records: Iterable[MovementRecord]) -> List[MovementRecord]:
        """Batch append: one validation pass, one list extend, one batch fold.

        Skips the per-record ``record()`` dispatch of the base implementation
        — the batch is validated up front (all-or-nothing in strict mode,
        same as the base path), appended with one ``extend`` and folded with
        :meth:`OccupancyService.apply_many`'s hoisted loop.
        """
        batch = list(records)
        with self._txn_lock:
            self._validate_batch(batch)
            notices = self._notices_for(batch)
            self._records.extend(batch)
            self._total_recorded += len(batch)
            self._occupancy.apply_many(batch)
            self._notify(notices)
            return batch

    @contextmanager
    def bulk(self) -> Iterator[None]:
        """Make a multi-write scope all-or-nothing, mirroring SQLite's.

        On failure the records appended inside the scope are truncated away
        and the projection is restored from a snapshot taken at entry — so
        ``observe_many``/ingest batches that die mid-way (a strict-mode
        inconsistent exit) leave the *store* exactly as it was, on this
        backend just like on SQLite.
        """
        if self._in_bulk:
            yield
            return
        with self._txn_lock:
            mark = len(self._records)
            recorded = self._total_recorded
            state = self._occupancy.snapshot()
            self._in_bulk = True
            try:
                yield
            except Exception:
                del self._records[mark:]
                self._total_recorded = recorded
                self._occupancy.restore(state)
                raise
            finally:
                self._in_bulk = False

    def checkpoint(self, *, compact: bool = True) -> Checkpoint:
        with self._txn_lock:
            if self._in_bulk:
                raise StorageError("cannot checkpoint inside an open bulk() scope")
            return self._checkpoint_locked(compact)

    def _checkpoint_locked(self, compact: bool) -> Checkpoint:
        position = self._total_recorded
        self._checkpoint_state = self._occupancy.snapshot()
        archived = 0
        if compact:
            archived = len(self._records)
            if self._records:
                newest = max(record.time for record in self._records)
                if self._archived_through is None or newest > self._archived_through:
                    self._archived_through = newest
            self._archive.extend(self._records)
            self._records.clear()
        self._checkpoint_position = position
        return Checkpoint(
            position,
            archived,
            len(self._occupancy.subjects_inside()),
            len(self._occupancy.entry_counts()),
        )

    @property
    def checkpoint_state(self) -> Optional[tuple]:
        """The projection snapshot persisted by the last :meth:`checkpoint`."""
        return self._checkpoint_state

    @property
    def archived_count(self) -> int:
        return len(self._archive)

    @property
    def archived_through(self) -> Optional[int]:
        return self._archived_through

    def _prune_archive(self, retain: int) -> int:
        with self._txn_lock:
            excess = len(self._archive) - retain
            if excess <= 0:
                return 0
            del self._archive[:excess]
            return excess

    @property
    def events_since_checkpoint(self) -> int:
        return self._total_recorded - self._checkpoint_position

    @property
    def applied_position(self) -> int:
        return self._total_recorded

    def clear(self) -> None:
        with self._txn_lock:
            self._records.clear()
            self._archive.clear()
            self._total_recorded = 0
            self._checkpoint_position = 0
            self._checkpoint_state = None
            self._archived_through = None
            self._occupancy.clear()

    # -- partition handoff ----------------------------------------------- #
    def import_archived(
        self, records: Iterable[MovementRecord], *, archived_through: Optional[int] = None
    ) -> int:
        batch = list(records)
        with self._txn_lock:
            for record in batch:
                self._validate_record(record)
            notices = self._notices_for(batch)
            self._archive.extend(batch)
            self._occupancy.apply_many(batch)
            if archived_through is not None and (
                self._archived_through is None or archived_through > self._archived_through
            ):
                self._archived_through = int(archived_through)
            self._notify(notices)
            return len(batch)

    def forget_subjects(self, subjects: Iterable[str]) -> List[LocationName]:
        wanted = {subject_name(subject) for subject in subjects}
        with self._txn_lock:
            affected = {
                record.location
                for record in self._records + self._archive
                if record.subject in wanted
            }
            self._records = [r for r in self._records if r.subject not in wanted]
            self._archive = [r for r in self._archive if r.subject not in wanted]
            for subject in wanted:
                self._occupancy.forget_subject(subject)
            return sorted(affected)

    def history(
        self,
        *,
        subject: Optional[str] = None,
        location: Optional[str] = None,
        window: Optional[TimeInterval] = None,
        include_archived: bool = False,
    ) -> List[MovementRecord]:
        source: Iterable[MovementRecord] = self._records
        if include_archived and self._archive:
            source = self._archive + self._records
        return _filter_records(source, subject, location, window)

    def __len__(self) -> int:
        return len(self._records)


class ShardedInMemoryMovementDatabase(MovementDatabase):
    """Sharded in-memory movement store for parallel multi-thread ingest.

    Both the occupancy projection *and* the movement log are partitioned
    into ``shards`` shard-local slices keyed by a consistent hash on the
    subject (``"auto"`` = one shard per CPU core).  A ``record_many`` batch
    is partitioned once, then each partition's log append **and** projection
    fold happen as one atomic unit under that shard's lock — so writer
    threads (one per tracker feed) only contend when their batches collide
    on a shard, and a checkpoint walking the shards always sees a log that
    matches its projection.

    Log order: each batch atomically reserves a position in the global
    sequence, which linearizes concurrent batches; within a batch, each
    shard's partition keeps its arrival order.  :meth:`history` merges the
    shard logs back into a **globally time-ordered** record list (stable
    sort over the segment merge): per-subject event order is always exactly
    the ingest order (a subject lives whole in one shard, and records
    arrive in time order per subject), while the interleaving of equal-time
    events from *different* subjects may differ from the original batch
    interleaving.  Occupancy semantics only depend on per-subject order, so
    every projection read is identical to the unsharded store's.

    ``strict=True`` serializes ingest on a validation lock (the batch
    pre-check must observe a frozen occupancy map to reject inconsistent
    exits all-or-nothing); parallel throughput is a non-strict feature.
    """

    def __init__(
        self,
        hierarchy: Optional[LocationHierarchy] = None,
        *,
        strict: bool = False,
        shards="auto",
    ) -> None:
        super().__init__(hierarchy, strict=strict, shards="auto" if shards is None else shards)
        count = self._occupancy.shard_count
        # Shard-local logs hold (batch_seq, records) segments — one append
        # per batch partition, no per-record bookkeeping on the hot path.
        self._shard_records: List[List[Tuple[int, List[MovementRecord]]]] = [
            [] for _ in range(count)
        ]
        self._seq_lock = threading.Lock()
        self._next_seq = 1
        self._recorded_total = 0
        self._strict_lock = threading.Lock()
        #: archived segments as (batch_seq, shard_index, records); guarded by
        #: _archive_lock — a scheduled checkpoint on the ingest writer thread
        #: and a foreground/remote prune or history() may touch it together.
        self._archive: List[Tuple[int, int, List[MovementRecord]]] = []
        self._archive_lock = threading.Lock()
        #: imported archive segments get batch seqs counting DOWN from 0 so
        #: they sort before every native segment — a migrated subject's
        #: adopted history precedes anything it does here (guarded by
        #: _archive_lock).
        self._import_seq = 0
        self._checkpoint_position = 0
        self._checkpoint_state: Optional[tuple] = None
        self._archived_through: Optional[int] = None

    def _service_factory(self):
        return ShardedOccupancyService(self._shards)

    # -- writes --------------------------------------------------------- #
    def record(self, record: MovementRecord) -> MovementRecord:
        self.record_many((record,))
        return record

    def record_many(self, records: Iterable[MovementRecord]) -> List[MovementRecord]:
        batch = list(records)
        if self._strict:
            # Strict validation replays the batch against the *current*
            # occupancy, which must not move until the batch lands.
            with self._strict_lock:
                self._validate_batch(batch)
                notices = self._notices_for(batch)
                self._ingest(batch)
        else:
            self._validate_batch(batch)
            # Under concurrent writers the previous-location reads race other
            # shards' batches, but subjects are writer-disjoint per the
            # tracker-stream contract, so each subject's chain is exact.
            notices = self._notices_for(batch)
            self._ingest(batch)
        self._notify(notices)
        return batch

    def _ingest(self, batch: List[MovementRecord]) -> None:
        if not batch:
            return
        with self._seq_lock:
            base = self._next_seq
            self._next_seq += len(batch)
            self._recorded_total += len(batch)
        # Partition once (memoized shard lookup), then land each partition
        # as one log segment + one projection fold under its shard's lock —
        # this plus apply_many is the ingest hot path.
        for index, records in self._occupancy.partition(batch).items():
            with self._occupancy.locked_shard(index) as projection:
                self._shard_records[index].append((base, records))
                projection.apply_many(records)

    # -- checkpoint ------------------------------------------------------ #
    def checkpoint(self, *, compact: bool = True) -> Checkpoint:
        """Shard-by-shard checkpoint: snapshot + archive under each shard lock.

        Shards hold disjoint subjects, so per-shard atomicity is global
        consistency; the shards are visited sequentially and writers to
        other shards are never blocked.  Under concurrent writers the
        checkpoint is a **consistent per-shard cut**, not a global log
        prefix: ``position`` counts exactly the events the snapshot/archive
        covers (counted under each shard's lock, never the in-flight
        batches a writer has reserved seqs for but not yet landed), so
        ``events_since_checkpoint`` over-approximates — it never claims
        coverage of an event the checkpoint missed.
        """
        state = []
        covered = self.archived_count
        archived_now = 0
        for index in range(len(self._shard_records)):
            with self._occupancy.locked_shard(index) as projection:
                shard_log = self._shard_records[index]
                for _, records in shard_log:
                    covered += len(records)
                if compact:
                    with self._archive_lock:
                        for batch_seq, records in shard_log:
                            archived_now += len(records)
                            newest = max(record.time for record in records)
                            if self._archived_through is None or newest > self._archived_through:
                                self._archived_through = newest
                            self._archive.append((batch_seq, index, records))
                    shard_log.clear()
                state.append(projection.snapshot())
        self._checkpoint_state = tuple(state)
        self._checkpoint_position = covered
        if compact:
            with self._archive_lock:
                self._archive.sort(key=lambda entry: (entry[0], entry[1]))
        return Checkpoint(
            covered,
            archived_now,
            len(self._occupancy.subjects_inside()),
            len(self._occupancy.entry_counts()),
        )

    @property
    def checkpoint_state(self) -> Optional[tuple]:
        """The per-shard projection snapshots from the last :meth:`checkpoint`."""
        return self._checkpoint_state

    @property
    def archived_count(self) -> int:
        with self._archive_lock:
            return sum(len(records) for _, _, records in self._archive)

    @property
    def archived_through(self) -> Optional[int]:
        return self._archived_through

    def _prune_archive(self, retain: int) -> int:
        # Segments are kept sorted oldest-first by (batch seq, shard); drop
        # from the front, slicing the boundary segment for an exact cap.
        with self._archive_lock:
            excess = sum(len(records) for _, _, records in self._archive) - retain
            if excess <= 0:
                return 0
            dropped = 0
            while dropped < excess and self._archive:
                batch_seq, index, records = self._archive[0]
                take = min(excess - dropped, len(records))
                if take == len(records):
                    self._archive.pop(0)
                else:
                    self._archive[0] = (batch_seq, index, records[take:])
                dropped += take
            return dropped

    @property
    def events_since_checkpoint(self) -> int:
        with self._seq_lock:
            recorded = self._next_seq - 1
        return recorded - self._checkpoint_position

    @property
    def applied_position(self) -> int:
        # Monotonic like the other backends: the total ever recorded, not
        # the currently retained count — archive pruning must never make a
        # position go backwards (consumers diff positions to count events).
        with self._seq_lock:
            return self._recorded_total

    def clear(self) -> None:
        for index in range(len(self._shard_records)):
            with self._occupancy.locked_shard(index) as projection:
                self._shard_records[index].clear()
                projection.clear()
        with self._archive_lock:
            self._archive.clear()
        with self._seq_lock:
            self._next_seq = 1
            self._recorded_total = 0
        with self._archive_lock:
            self._import_seq = 0
        self._checkpoint_position = 0
        self._checkpoint_state = None
        self._archived_through = None

    # -- partition handoff ----------------------------------------------- #
    def import_archived(
        self, records: Iterable[MovementRecord], *, archived_through: Optional[int] = None
    ) -> int:
        batch = list(records)
        for record in batch:
            self._validate_record(record)
        notices = self._notices_for(batch)
        with self._archive_lock:
            self._import_seq -= 1
            seq = self._import_seq
        for index, partition in self._occupancy.partition(batch).items():
            with self._occupancy.locked_shard(index) as projection:
                with self._archive_lock:
                    self._archive.append((seq, index, partition))
                projection.apply_many(partition)
        with self._archive_lock:
            self._archive.sort(key=lambda entry: (entry[0], entry[1]))
        if archived_through is not None and (
            self._archived_through is None or archived_through > self._archived_through
        ):
            self._archived_through = int(archived_through)
        self._notify(notices)
        return len(batch)

    def forget_subjects(self, subjects: Iterable[str]) -> List[LocationName]:
        wanted = {subject_name(subject) for subject in subjects}
        affected = set()
        for index in range(len(self._shard_records)):
            with self._occupancy.locked_shard(index) as projection:
                shard_log = self._shard_records[index]
                kept_log: List[Tuple[int, List[MovementRecord]]] = []
                for batch_seq, records in shard_log:
                    kept = [r for r in records if r.subject not in wanted]
                    affected.update(
                        r.location for r in records if r.subject in wanted
                    )
                    if kept:
                        kept_log.append((batch_seq, kept))
                self._shard_records[index] = kept_log
                for subject in wanted:
                    projection.forget_subject(subject)
        with self._archive_lock:
            kept_archive: List[Tuple[int, int, List[MovementRecord]]] = []
            for batch_seq, index, records in self._archive:
                kept = [r for r in records if r.subject not in wanted]
                affected.update(r.location for r in records if r.subject in wanted)
                if kept:
                    kept_archive.append((batch_seq, index, kept))
            self._archive = kept_archive
        return sorted(affected)

    # -- reads ---------------------------------------------------------- #
    def history(
        self,
        *,
        subject: Optional[str] = None,
        location: Optional[str] = None,
        window: Optional[TimeInterval] = None,
        include_archived: bool = False,
    ) -> List[MovementRecord]:
        segments: List[Tuple[int, int, List[MovementRecord]]] = []
        if include_archived:
            with self._archive_lock:
                segments.extend(self._archive)
        for index in range(len(self._shard_records)):
            with self._occupancy.locked_shard(index):
                segments.extend(
                    (batch_seq, index, records)
                    for batch_seq, records in self._shard_records[index]
                )
        segments.sort(key=lambda entry: (entry[0], entry[1]))
        merged: List[MovementRecord] = []
        for _, _, records in segments:
            merged.extend(records)
        # Stable time sort: consumers (the query engine's point-in-time
        # replays) rely on a globally time-ordered history, and segment
        # order alone interleaves same-batch shards arbitrarily.  Records
        # arrive in time order per subject (the record() contract), so the
        # stable sort preserves every subject's event order.
        merged.sort(key=lambda record: record.time)
        return _filter_records(merged, subject, location, window)

    def __len__(self) -> int:
        return sum(
            len(records) for shard_log in self._shard_records for _, records in shard_log
        )


class SqliteMovementDatabase(MovementDatabase):
    """SQLite-backed movement store (``:memory:`` by default).

    Besides the append-only ``movements`` log, the backend maintains two
    derived tables — ``occ_current`` (the occupancy map) and
    ``occ_entry_counts`` (per-pair entry counters and last entry time) —
    updated in the **same transaction** as each insert.  On open they prime
    the in-process :class:`OccupancyService` in O(#subjects + #pairs)
    instead of replaying the log; windowed entry counts are answered by an
    SQL ``COUNT(*)`` over the partial index on ENTER rows.

    Concurrency contract: movement writes to a given database file must go
    through **one** ``SqliteMovementDatabase`` instance (the projection is
    primed at open and advanced only by this instance's own writes — another
    writer's rows would be invisible to the hot reads until reopen).
    Read-only replica instances over the same file can nevertheless *follow*
    the writer: :meth:`pickup` folds the file's committed rows past this
    instance's :attr:`applied_position` into the projection (and notifies
    subscribers), which is what the replica invalidation bus of
    :mod:`repro.service.bus` drives.
    Transactions on this instance serialize on an internal lock, so a
    foreground ``checkpoint()``/``clear()`` never interleaves a streaming
    writer's open batch.  Reads are **read-uncommitted with respect to this
    instance's own in-flight batch**: while a ``bulk()``/``record_many``
    transaction is open, same-connection SQL reads and the incrementally
    updated projection both see the partial batch (rolled back again if the
    batch fails) — deliberate, because serializing every decision-path read
    against whole ingest batches would trade hot-path latency for a
    consistency level the monitor does not need.  Other
    connections to the same file — the authorization and profile stores of a
    shared-path deployment — may read and write freely; WAL journaling keeps
    them live while a batch transaction is open here.  Multi-writer ingest is
    the sharding follow-on tracked in ROADMAP.md.
    """

    _SCHEMA = """
        CREATE TABLE IF NOT EXISTS movements (
            seq      INTEGER PRIMARY KEY AUTOINCREMENT,
            time     INTEGER NOT NULL,
            subject  TEXT NOT NULL,
            location TEXT NOT NULL,
            kind     TEXT NOT NULL CHECK (kind IN ('enter', 'exit'))
        );
        CREATE INDEX IF NOT EXISTS idx_mov_subject ON movements (subject, time);
        CREATE INDEX IF NOT EXISTS idx_mov_location ON movements (location, time);
        CREATE INDEX IF NOT EXISTS idx_mov_entries
            ON movements (subject, location, time) WHERE kind = 'enter';
        CREATE INDEX IF NOT EXISTS idx_mov_pair_seq ON movements (subject, location, seq);
        CREATE TABLE IF NOT EXISTS occ_current (
            subject  TEXT PRIMARY KEY,
            location TEXT NOT NULL,
            since    INTEGER NOT NULL
        );
        CREATE TABLE IF NOT EXISTS occ_entry_counts (
            subject         TEXT NOT NULL,
            location        TEXT NOT NULL,
            entries         INTEGER NOT NULL,
            last_entry_time INTEGER,
            PRIMARY KEY (subject, location)
        );
        CREATE TABLE IF NOT EXISTS occ_meta (
            key   TEXT PRIMARY KEY,
            value INTEGER NOT NULL
        );
        CREATE TABLE IF NOT EXISTS movements_archive (
            seq      INTEGER PRIMARY KEY,
            time     INTEGER NOT NULL,
            subject  TEXT NOT NULL,
            location TEXT NOT NULL,
            kind     TEXT NOT NULL CHECK (kind IN ('enter', 'exit'))
        );
        CREATE INDEX IF NOT EXISTS idx_arc_entries
            ON movements_archive (subject, location, time) WHERE kind = 'enter';
        CREATE INDEX IF NOT EXISTS idx_arc_pair_seq
            ON movements_archive (subject, location, seq);
        CREATE TABLE IF NOT EXISTS occ_checkpoint (
            subject  TEXT PRIMARY KEY,
            location TEXT NOT NULL,
            since    INTEGER NOT NULL
        );
        CREATE TABLE IF NOT EXISTS occ_checkpoint_counts (
            subject         TEXT NOT NULL,
            location        TEXT NOT NULL,
            entries         INTEGER NOT NULL,
            last_entry_time INTEGER,
            PRIMARY KEY (subject, location)
        );
    """

    def __init__(
        self,
        path: str = ":memory:",
        hierarchy: Optional[LocationHierarchy] = None,
        *,
        strict: bool = False,
        shards=None,
    ) -> None:
        super().__init__(hierarchy, strict=strict, shards=shards)
        # check_same_thread=False: the streaming observe path
        # (MovementIngestor) drives enforcement — and therefore these
        # stores — from its background writer thread while the constructing
        # thread keeps reading.  The sqlite3 module serializes statement
        # execution internally, so sharing the connection is safe; write
        # discipline (one logical writer) is unchanged.
        self._connection = sqlite3.connect(path, check_same_thread=False)
        # WAL lets other connections to the same file (the authorization and
        # profile stores of a shared-path deployment) keep reading while a
        # bulk()/record_many transaction is open; a no-op for ":memory:".
        self._connection.execute("PRAGMA journal_mode=WAL")
        self._connection.execute("PRAGMA busy_timeout=5000")
        self._connection.executescript(self._SCHEMA)
        self._connection.commit()
        self._in_bulk = False
        #: True while _pickup_locked is notifying subscribers: those notices
        #: describe FOREIGN rows this instance just folded in.  Listeners
        #: that re-broadcast local mutations (the replica coherence layer)
        #: check it so a pickup — including the pickup-before-write the
        #: local write paths run — never echoes other replicas' events back
        #: onto the bus under this replica's origin.
        self.notifying_pickup = False
        # One transaction at a time on the shared connection: the streaming
        # writer's bulk()/record_many scopes and a foreground checkpoint()/
        # clear() must not interleave their commits (reentrant, so record()
        # calls nested inside a same-thread bulk() scope pass through).
        self._txn_lock = threading.RLock()
        self._load_service()

    def _service_factory(self):
        # Windowed entry counts run as indexed SQL COUNT(*) queries, so the
        # projection skips the timelines and reopening stays O(#pairs).
        if self._shards is not None:
            return ShardedOccupancyService(self._shards, track_timelines=False)
        return OccupancyService(track_timelines=False)

    def _meta(self, key: str) -> int:
        row = self._connection.execute(
            "SELECT value FROM occ_meta WHERE key = ?", (key,)
        ).fetchone()
        return int(row[0]) if row is not None else 0

    def _meta_opt(self, key: str) -> Optional[int]:
        row = self._connection.execute(
            "SELECT value FROM occ_meta WHERE key = ?", (key,)
        ).fetchone()
        return int(row[0]) if row is not None else None

    def _set_meta(self, key: str, value: int) -> None:
        self._connection.execute(
            "INSERT INTO occ_meta (key, value) VALUES (?, ?)"
            " ON CONFLICT(key) DO UPDATE SET value = excluded.value",
            (key, value),
        )

    def _checkpoint_seq(self) -> int:
        """The log seq the persisted checkpoint covers (0 = no checkpoint)."""
        return self._meta("checkpoint_seq")

    def _max_seq(self) -> int:
        """The newest log seq — O(log n) over the live log's integer primary key.

        After a compacting checkpoint the live log may be empty while the
        checkpoint covers earlier seqs, so the checkpoint seq is the floor.
        """
        (max_seq,) = self._connection.execute(
            "SELECT COALESCE(MAX(seq), 0) FROM movements"
        ).fetchone()
        return max(int(max_seq), self._checkpoint_seq())

    def _stamp_applied(self) -> None:
        """Record (inside the open transaction) how far the derived tables reach."""
        self._set_meta("applied_seq", self._max_seq())

    def _load_service(self) -> None:
        """Prime the projection from the derived tables (recovering them if stale).

        Staleness is detected by comparing the stamped ``applied_seq`` with
        the log's maximum seq — both O(log n) index lookups, so reopening a
        healthy database stays O(#subjects + #pairs).  A stale database (one
        written before the derived tables existed, or by a writer that did
        not maintain them) is recovered by replaying the log **from the
        persisted checkpoint**, i.e. in O(events since the checkpoint), not
        O(all time).
        """
        if self._meta("applied_seq") != self._max_seq():
            self._recover_derived()
        inside = {
            subject: (location, since)
            for subject, location, since in self._connection.execute(
                "SELECT subject, location, since FROM occ_current"
            )
        }
        counts = {
            (subject, location): (count, last_time)
            for subject, location, count, last_time in self._connection.execute(
                "SELECT subject, location, entries, last_entry_time FROM occ_entry_counts"
            )
        }
        self._occupancy.load(inside=inside, entry_counts=counts)
        #: the log seq this instance's projection has folded in; a replica
        #: sharing the file with a writer advances it through pickup().
        self._applied_seq = self._max_seq()

    def _recover_derived(self) -> None:
        """Rebuild the derived tables: checkpoint state + replay of the log suffix.

        The replay projection is primed from the ``occ_checkpoint`` tables
        and only the movements past the checkpoint seq are folded in — with
        no checkpoint ever taken (seq 0, empty tables) this degrades to the
        full-log replay that migrates pre-derived-table databases.
        """
        checkpoint_seq = self._checkpoint_seq()
        replay = OccupancyService(track_timelines=False)
        replay.load(
            inside={
                subject: (location, since)
                for subject, location, since in self._connection.execute(
                    "SELECT subject, location, since FROM occ_checkpoint"
                )
            },
            entry_counts={
                (subject, location): (count, last_time)
                for subject, location, count, last_time in self._connection.execute(
                    "SELECT subject, location, entries, last_entry_time FROM occ_checkpoint_counts"
                )
            },
        )
        for time, subject, location, kind in self._connection.execute(
            "SELECT time, subject, location, kind FROM movements WHERE seq > ? ORDER BY seq",
            (checkpoint_seq,),
        ):
            replay.apply(MovementRecord(time, subject, location, MovementKind(kind)))
        self._connection.execute("DELETE FROM occ_current")
        self._connection.execute("DELETE FROM occ_entry_counts")
        self._connection.executemany(
            "INSERT INTO occ_current (subject, location, since) VALUES (?, ?, ?)",
            [
                (subject, location, replay.inside_since(subject) or 0)
                for subject, location in replay.subjects_inside().items()
            ],
        )
        count_rows = []
        for (subject, location), count in replay.entry_counts().items():
            last = replay.last_entry(subject, location)
            count_rows.append((subject, location, count, last.time if last else None))
        self._connection.executemany(
            "INSERT INTO occ_entry_counts (subject, location, entries, last_entry_time)"
            " VALUES (?, ?, ?, ?)",
            count_rows,
        )
        self._stamp_applied()
        self._connection.commit()

    # -- checkpoint / compaction ---------------------------------------- #
    def checkpoint(self, *, compact: bool = True) -> Checkpoint:
        """Persist the projection snapshot and archive the covered log prefix.

        One transaction: the live derived tables (which are exactly the
        projection at the current log position) are copied into the
        ``occ_checkpoint`` tables SQL-side, the checkpoint seq is stamped,
        and with ``compact=True`` the covered ``movements`` rows move into
        ``movements_archive``.  Crash recovery and ``history()`` replays are
        then bounded by events past this checkpoint.
        """
        with self._txn_lock:
            if self._in_bulk:
                raise StorageError("cannot checkpoint inside an open bulk() scope")
            return self._checkpoint_locked(compact)

    def _checkpoint_locked(self, compact: bool) -> Checkpoint:
        connection = self._connection
        self._begin_immediate()  # fence the position read against other writers
        position = self._max_seq()
        connection.execute("DELETE FROM occ_checkpoint")
        connection.execute(
            "INSERT INTO occ_checkpoint (subject, location, since)"
            " SELECT subject, location, since FROM occ_current"
        )
        connection.execute("DELETE FROM occ_checkpoint_counts")
        connection.execute(
            "INSERT INTO occ_checkpoint_counts (subject, location, entries, last_entry_time)"
            " SELECT subject, location, entries, last_entry_time FROM occ_entry_counts"
        )
        self._set_meta("checkpoint_seq", position)
        archived = 0
        if compact:
            (archived,) = connection.execute(
                "SELECT COUNT(*) FROM movements WHERE seq <= ?", (position,)
            ).fetchone()
            if archived:
                # The LIVE/ARCHIVED boundary of the scoped query statements;
                # persisted so a reopened database keeps the same answer.
                (newest,) = connection.execute(
                    "SELECT MAX(time) FROM movements WHERE seq <= ?", (position,)
                ).fetchone()
                previous = self._meta_opt("archived_through")
                if previous is None or int(newest) > previous:
                    self._set_meta("archived_through", int(newest))
            connection.execute(
                "INSERT INTO movements_archive (seq, time, subject, location, kind)"
                " SELECT seq, time, subject, location, kind FROM movements WHERE seq <= ?",
                (position,),
            )
            connection.execute("DELETE FROM movements WHERE seq <= ?", (position,))
        self._stamp_applied()
        connection.commit()
        (subjects_inside,) = connection.execute("SELECT COUNT(*) FROM occ_checkpoint").fetchone()
        (pairs,) = connection.execute("SELECT COUNT(*) FROM occ_checkpoint_counts").fetchone()
        return Checkpoint(position, int(archived), int(subjects_inside), int(pairs))

    @property
    def archived_count(self) -> int:
        (count,) = self._connection.execute("SELECT COUNT(*) FROM movements_archive").fetchone()
        return int(count)

    @property
    def archived_through(self) -> Optional[int]:
        return self._meta_opt("archived_through")

    def _prune_archive(self, retain: int) -> int:
        with self._txn_lock:
            self._begin_immediate()  # fence the count against other writers
            excess = self.archived_count - retain
            if excess <= 0:
                self._connection.rollback()
                return 0
            (pruned_through,) = self._connection.execute(
                "SELECT MAX(seq) FROM (SELECT seq FROM movements_archive"
                " ORDER BY seq LIMIT ?)",
                (excess,),
            ).fetchone()
            self._connection.execute(
                "DELETE FROM movements_archive WHERE seq IN"
                " (SELECT seq FROM movements_archive ORDER BY seq LIMIT ?)",
                (excess,),
            )
            # Pruned rows are unreachable history: touch_marks_since can no
            # longer reconstruct subject trajectories, so it must refuse
            # (persisted cache entries then cold-start instead of risking
            # a missed invalidation).
            if pruned_through is not None:
                self._set_meta("pruned_through_seq", int(pruned_through))
            self._connection.commit()
            return excess

    @property
    def events_since_checkpoint(self) -> int:
        (count,) = self._connection.execute(
            "SELECT COUNT(*) FROM movements WHERE seq > ?", (self._checkpoint_seq(),)
        ).fetchone()
        return int(count)

    # -- replica pickup -------------------------------------------------- #
    @property
    def high_water(self) -> int:
        """The newest **committed** log seq in the file (any writer's)."""
        with self._txn_lock:
            return self._max_seq()

    @property
    def applied_position(self) -> int:
        return self._applied_seq

    @property
    def oldest_retained_time(self) -> Optional[int]:
        (oldest,) = self._connection.execute(
            "SELECT MIN(t) FROM (SELECT MIN(time) AS t FROM movements"
            " UNION ALL SELECT MIN(time) AS t FROM movements_archive)"
        ).fetchone()
        return int(oldest) if oldest is not None else None

    def pickup(self) -> List[MovementNotice]:
        """Fold rows another replica committed to the shared file into this
        instance's projection, notifying subscribers with their notices.

        This is the cross-process half of the replica coherence story: the
        writer replica's ``record``/``record_many`` keep the derived tables
        authoritative, while every *other* replica calls ``pickup()`` (on an
        invalidation-bus event, on bus gap/reconnect, or on a periodic sync
        tick) to catch its in-process projection — and therefore its hot
        decision reads — up to the file's committed high water.  The emitted
        notices flow through the normal mutation-notification path, so an
        attached :class:`~repro.service.cache.DecisionCache` evicts exactly
        the keys the foreign writes touched (and bumps their invalidation
        generations, fencing in-flight stores).

        The derived tables are left alone — they are the writer's to
        maintain.  Returns the applied notices; ``[]`` when caught up.
        """
        with self._txn_lock:
            if self._in_bulk:
                # Never interleave foreign rows into an open local batch;
                # the next sync tick retries after the transaction closes.
                return []
            return self._pickup_locked()

    def _pickup_locked(self) -> List[MovementNotice]:
        """The :meth:`pickup` body; callers hold the transaction lock.

        The local write paths run this **before writing** too: a replica
        whose own insert's seq would jump past foreign committed rows must
        fold them first, or those rows would fall forever outside the
        ``seq > applied`` pickup window — silently desyncing the projection
        of any replica that both reads and writes.
        """
        rows = self._connection.execute(
            "SELECT seq, time, subject, location, kind FROM movements WHERE seq > ?"
            " UNION ALL"
            " SELECT seq, time, subject, location, kind FROM movements_archive"
            " WHERE seq > ? ORDER BY seq",
            (self._applied_seq, self._applied_seq),
        ).fetchall()
        if not rows:
            return []
        records = [
            MovementRecord(time, subject, location, MovementKind(kind))
            for _, time, subject, location, kind in rows
        ]
        notices = self._trace_notices(records)
        for record in records:
            self._occupancy.apply(record)
        self._applied_seq = rows[-1][0]
        self.notifying_pickup = True
        try:
            self._notify(notices)
        finally:
            self.notifying_pickup = False
        return notices

    def touch_marks_since(self, position: int) -> Optional[Dict[LocationName, int]]:
        """Exact-log marks for the persistent cache's warm-restart pass.

        One SQL pass over the retained log (live + archive): every row past
        *position* marks its own location, and — because an ENTER elsewhere
        changes the *previous* location's occupancy — every location its
        subject ever previously touched.  See the base docstring for the
        conservative-superset contract.  Refuses (``None``) when the archive
        was ever pruned: the pruned prefix may hide a since-moving subject's
        earlier locations.
        """
        with self._txn_lock:
            if position >= self._max_seq():
                return {}
            if self._meta("pruned_through_seq"):
                return None
            rows = self._connection.execute(
                "WITH all_rows(seq, subject, location) AS ("
                " SELECT seq, subject, location FROM movements"
                " UNION ALL"
                " SELECT seq, subject, location FROM movements_archive)"
                " SELECT h.location, MAX(m.seq)"
                " FROM all_rows m JOIN all_rows h"
                " ON h.subject = m.subject AND h.seq <= m.seq"
                " WHERE m.seq > ? GROUP BY h.location",
                (position,),
            ).fetchall()
            return {location: int(mark) for location, mark in rows}

    # -- writes --------------------------------------------------------- #
    def _begin_immediate(self) -> None:
        """Open the write transaction *now*, before the pickup read.

        Python's ``sqlite3`` does not BEGIN on SELECT in its default
        isolation mode, so without this the pickup-before-write read runs
        outside any transaction: two writer instances over one file could
        both read the same committed high water, interleave their inserts,
        and each fold the other's rows a second time on its next pickup.
        ``BEGIN IMMEDIATE`` takes the file's single write lock up front
        (waiting out the busy timeout if another writer holds it), making
        pickup + insert + commit one fenced unit.  No-op when a transaction
        is already open (nested writes inside ``bulk()``).
        """
        if not self._connection.in_transaction:
            self._connection.execute("BEGIN IMMEDIATE")

    def _apply_derived(self, record: MovementRecord) -> None:
        """Mirror one record into the derived tables (inside the open transaction)."""
        if record.kind is MovementKind.ENTER:
            self._connection.execute(
                "INSERT INTO occ_current (subject, location, since) VALUES (?, ?, ?)"
                " ON CONFLICT(subject) DO UPDATE SET"
                " location = excluded.location, since = excluded.since",
                (record.subject, record.location, record.time),
            )
            self._connection.execute(
                "INSERT INTO occ_entry_counts (subject, location, entries, last_entry_time)"
                " VALUES (?, ?, 1, ?)"
                " ON CONFLICT(subject, location) DO UPDATE SET"
                " entries = entries + 1, last_entry_time = excluded.last_entry_time",
                (record.subject, record.location, record.time),
            )
        elif self._occupancy.current_location(record.subject) == record.location:
            # Consistent exit; an anomalous one leaves the occupancy map alone
            # (mirroring OccupancyService semantics).
            self._connection.execute(
                "DELETE FROM occ_current WHERE subject = ?", (record.subject,)
            )

    def record(self, record: MovementRecord) -> MovementRecord:
        with self._txn_lock:
            if not self._in_bulk:
                # Fold foreign committed rows first — under the write lock
                # (_begin_immediate), so no other writer can slip rows in
                # between this pickup and our insert; our insert's seq moves
                # applied past any such rows, which would orphan them.
                self._begin_immediate()
                try:
                    self._pickup_locked()
                    self._validate_record(record)
                    self._check_strict_exit(record)
                except Exception:
                    self._connection.rollback()
                    raise
            else:
                self._validate_record(record)
                self._check_strict_exit(record)
            notices = self._notice_for(record)
            cursor = self._connection.execute(
                "INSERT INTO movements (time, subject, location, kind) VALUES (?, ?, ?, ?)",
                (record.time, record.subject, record.location, record.kind.value),
            )
            self._apply_derived(record)
            self._occupancy.apply(record)
            if cursor.lastrowid:
                self._applied_seq = cursor.lastrowid
            if not self._in_bulk:
                self._stamp_applied()
                self._connection.commit()
            self._notify(notices)
            return record

    def record_many(self, records: Iterable[MovementRecord]) -> List[MovementRecord]:
        """Batch insert with ``executemany`` and a single commit.

        The movement log is appended with one ``executemany``; the derived
        tables are then synced from the final projection state with one
        ``executemany`` per table over just the touched keys — O(batch)
        Python, O(distinct keys) SQL, one transaction.
        """
        batch = list(records)
        with self._txn_lock:
            if not self._in_bulk:
                # Fenced pickup-before-write (see _begin_immediate).
                self._begin_immediate()
                try:
                    self._pickup_locked()
                    self._validate_batch(batch)
                except Exception:
                    self._connection.rollback()
                    raise
            else:
                self._validate_batch(batch)
            notices = self._notices_for(batch)
            if self._in_bulk:
                # The enclosing bulk() scope owns the transaction (and rollback).
                self._write_batch(batch)
                self._notify(notices)
                return batch
            state = self._occupancy.snapshot()
            applied = self._applied_seq
            try:
                self._write_batch(batch)
                self._connection.commit()
            except Exception:
                self._connection.rollback()
                self._occupancy.restore(state)
                self._applied_seq = applied
                raise
            self._notify(notices)
            return batch

    def _write_batch(self, batch: List[MovementRecord]) -> None:
        """Append *batch* and sync the projection/derived tables (no commit)."""
        self._connection.executemany(
            "INSERT INTO movements (time, subject, location, kind) VALUES (?, ?, ?, ?)",
            [(r.time, r.subject, r.location, r.kind.value) for r in batch],
        )
        for record in batch:
            self._occupancy.apply(record)
        self._sync_derived(
            subjects={record.subject for record in batch},
            pairs={
                (record.subject, record.location)
                for record in batch
                if record.kind is MovementKind.ENTER
            },
        )
        # Same-connection reads see the uncommitted inserts, so this is the
        # batch's final seq even inside the open transaction.
        self._applied_seq = self._max_seq()
        self._stamp_applied()

    def _sync_derived(self, *, subjects: set, pairs: set) -> None:
        """Write the projection's state for the touched keys into the derived tables."""
        gone = [(subject,) for subject in subjects if self._occupancy.current_location(subject) is None]
        present = [
            (subject, self._occupancy.current_location(subject), self._occupancy.inside_since(subject))
            for subject in subjects
            if self._occupancy.current_location(subject) is not None
        ]
        if gone:
            self._connection.executemany("DELETE FROM occ_current WHERE subject = ?", gone)
        if present:
            self._connection.executemany(
                "INSERT INTO occ_current (subject, location, since) VALUES (?, ?, ?)"
                " ON CONFLICT(subject) DO UPDATE SET"
                " location = excluded.location, since = excluded.since",
                present,
            )
        count_rows = []
        for subject, location in pairs:
            last = self._occupancy.last_entry(subject, location)
            count_rows.append(
                (
                    subject,
                    location,
                    self._occupancy.entry_count(subject, location),
                    last.time if last is not None else None,
                )
            )
        if count_rows:
            self._connection.executemany(
                "INSERT INTO occ_entry_counts (subject, location, entries, last_entry_time)"
                " VALUES (?, ?, ?, ?)"
                " ON CONFLICT(subject, location) DO UPDATE SET"
                " entries = excluded.entries, last_entry_time = excluded.last_entry_time",
                count_rows,
            )

    @contextmanager
    def bulk(self) -> Iterator[None]:
        """Defer the commit until the end of the scope (one transaction).

        On failure the SQL transaction rolls back and the projection is
        restored from a snapshot taken at scope entry — committed state,
        including in-process anomaly notes and histograms, survives intact.
        """
        if self._in_bulk:
            yield
            return
        with self._txn_lock:
            # Fenced pickup-before-write (see _begin_immediate): the whole
            # bulk scope runs inside the write lock taken here.
            self._begin_immediate()
            try:
                self._pickup_locked()
            except Exception:
                self._connection.rollback()
                raise
            self._in_bulk = True
            state = self._occupancy.snapshot()
            applied = self._applied_seq
            try:
                yield
            except Exception:
                self._connection.rollback()
                self._occupancy.restore(state)
                self._applied_seq = applied
                raise
            else:
                self._stamp_applied()
                self._connection.commit()
            finally:
                self._in_bulk = False

    def clear(self) -> None:
        with self._txn_lock:
            self._clear_locked()

    def _clear_locked(self) -> None:
        self._begin_immediate()
        self._connection.execute("DELETE FROM movements")
        self._connection.execute("DELETE FROM movements_archive")
        self._connection.execute("DELETE FROM occ_current")
        self._connection.execute("DELETE FROM occ_entry_counts")
        self._connection.execute("DELETE FROM occ_checkpoint")
        self._connection.execute("DELETE FROM occ_checkpoint_counts")
        self._set_meta("checkpoint_seq", 0)
        self._connection.execute("DELETE FROM occ_meta WHERE key = 'archived_through'")
        self._stamp_applied()
        self._connection.commit()
        self._occupancy.clear()
        self._applied_seq = self._max_seq()

    # -- partition handoff ----------------------------------------------- #
    def known_subjects(self) -> List[str]:
        rows = self._connection.execute(
            "SELECT DISTINCT subject FROM movements"
            " UNION SELECT DISTINCT subject FROM movements_archive ORDER BY subject"
        ).fetchall()
        return [subject for (subject,) in rows]

    def _sync_checkpoint_tables(self, *, subjects: set, pairs: set) -> None:
        """Mirror the touched keys' projection state into the checkpoint tables.

        Imported archive rows live at negative seqs — *below* the persisted
        checkpoint — so crash recovery (checkpoint snapshot + replay of
        ``seq > checkpoint_seq``) would lose them unless the snapshot tables
        carry the imported subjects' state too.  At import time a migrating
        subject's projection state is exactly its archived-slice fold (its
        live slice arrives afterwards, at positive seqs the replay covers),
        so copying the current state here keeps recovery exact.
        """
        gone = [
            (subject,)
            for subject in subjects
            if self._occupancy.current_location(subject) is None
        ]
        present = [
            (subject, self._occupancy.current_location(subject), self._occupancy.inside_since(subject))
            for subject in subjects
            if self._occupancy.current_location(subject) is not None
        ]
        if gone:
            self._connection.executemany("DELETE FROM occ_checkpoint WHERE subject = ?", gone)
        if present:
            self._connection.executemany(
                "INSERT INTO occ_checkpoint (subject, location, since) VALUES (?, ?, ?)"
                " ON CONFLICT(subject) DO UPDATE SET"
                " location = excluded.location, since = excluded.since",
                present,
            )
        count_rows = []
        for subject, location in pairs:
            last = self._occupancy.last_entry(subject, location)
            count_rows.append(
                (
                    subject,
                    location,
                    self._occupancy.entry_count(subject, location),
                    last.time if last is not None else None,
                )
            )
        if count_rows:
            self._connection.executemany(
                "INSERT INTO occ_checkpoint_counts (subject, location, entries, last_entry_time)"
                " VALUES (?, ?, ?, ?)"
                " ON CONFLICT(subject, location) DO UPDATE SET"
                " entries = excluded.entries, last_entry_time = excluded.last_entry_time",
                count_rows,
            )

    def import_archived(
        self, records: Iterable[MovementRecord], *, archived_through: Optional[int] = None
    ) -> int:
        batch = list(records)
        with self._txn_lock:
            if self._in_bulk:
                raise StorageError("cannot import an archive slice inside an open bulk() scope")
            self._begin_immediate()
            try:
                self._pickup_locked()
                for record in batch:
                    self._validate_record(record)
            except Exception:
                self._connection.rollback()
                raise
            notices = self._notices_for(batch)
            state = self._occupancy.snapshot()
            try:
                # Imported rows get seqs BELOW zero (and below any earlier
                # import): they must never enter the ``seq > applied`` pickup
                # window — they are folded right here, and a replica picking
                # them up again would double-apply — and history's seq order
                # must place a migrating subject's adopted past before its
                # native future.
                (floor,) = self._connection.execute(
                    "SELECT COALESCE(MIN(seq), 0) FROM movements_archive"
                ).fetchone()
                base = min(int(floor), 0) - len(batch)
                self._connection.executemany(
                    "INSERT INTO movements_archive (seq, time, subject, location, kind)"
                    " VALUES (?, ?, ?, ?, ?)",
                    [
                        (base + offset, r.time, r.subject, r.location, r.kind.value)
                        for offset, r in enumerate(batch)
                    ],
                )
                self._occupancy.apply_many(batch)
                touched_subjects = {record.subject for record in batch}
                touched_pairs = {
                    (record.subject, record.location)
                    for record in batch
                    if record.kind is MovementKind.ENTER
                }
                self._sync_derived(subjects=touched_subjects, pairs=touched_pairs)
                self._sync_checkpoint_tables(subjects=touched_subjects, pairs=touched_pairs)
                if archived_through is not None:
                    previous = self._meta_opt("archived_through")
                    if previous is None or int(archived_through) > previous:
                        self._set_meta("archived_through", int(archived_through))
                self._connection.commit()
            except Exception:
                self._connection.rollback()
                self._occupancy.restore(state)
                raise
            self._notify(notices)
            return len(batch)

    def forget_subjects(self, subjects: Iterable[str]) -> List[LocationName]:
        wanted = [subject_name(subject) for subject in subjects]
        with self._txn_lock:
            if self._in_bulk:
                raise StorageError("cannot forget subjects inside an open bulk() scope")
            self._begin_immediate()
            try:
                self._pickup_locked()
                if not wanted:
                    self._connection.rollback()
                    return []
                marks = ",".join("?" for _ in wanted)
                affected = {
                    location
                    for (location,) in self._connection.execute(
                        f"SELECT DISTINCT location FROM movements WHERE subject IN ({marks})"
                        f" UNION SELECT DISTINCT location FROM movements_archive"
                        f" WHERE subject IN ({marks})",
                        (*wanted, *wanted),
                    )
                }
                for table in (
                    "movements",
                    "movements_archive",
                    "occ_current",
                    "occ_entry_counts",
                    "occ_checkpoint",
                    "occ_checkpoint_counts",
                ):
                    self._connection.execute(
                        f"DELETE FROM {table} WHERE subject IN ({marks})", tuple(wanted)
                    )
                # The deletes may have lowered the log's max seq; re-stamp so
                # a reopen sees applied == max and skips recovery.  This
                # instance's _applied_seq stays put — AUTOINCREMENT never
                # reissues seqs, so the pickup window stays correct.
                self._stamp_applied()
                self._connection.commit()
            except Exception:
                self._connection.rollback()
                raise
            for subject in wanted:
                self._occupancy.forget_subject(subject)
            return sorted(affected)

    # -- reads ---------------------------------------------------------- #
    def history(
        self,
        *,
        subject: Optional[str] = None,
        location: Optional[str] = None,
        window: Optional[TimeInterval] = None,
        include_archived: bool = False,
    ) -> List[MovementRecord]:
        source = "movements"
        if include_archived:
            source = (
                "(SELECT seq, time, subject, location, kind FROM movements_archive"
                " UNION ALL SELECT seq, time, subject, location, kind FROM movements)"
            )
        sql = f"SELECT time, subject, location, kind FROM {source}"
        clauses: List[str] = []
        parameters: List = []
        if subject is not None:
            clauses.append("subject = ?")
            parameters.append(subject_name(subject))
        if location is not None:
            clauses.append("location = ?")
            parameters.append(location_name(location))
        if window is not None:
            clauses.append("time >= ?")
            parameters.append(window.start)
            if not window.is_unbounded:
                clauses.append("time <= ?")
                parameters.append(int(window.end))
        if clauses:
            sql += " WHERE " + " AND ".join(clauses)
        sql += " ORDER BY seq"
        rows = self._connection.execute(sql, tuple(parameters)).fetchall()
        return [MovementRecord(time, subj, loc, MovementKind(kind)) for time, subj, loc, kind in rows]

    def entry_count(
        self, subject: str, location: str, window: Optional[TimeInterval] = None
    ) -> int:
        if window is None:
            return self._occupancy.entry_count(subject_name(subject), location_name(location))
        # SQL-side count over the partial ENTER indexes — O(log n + k) in
        # SQLite.  The archive is counted too (same partial index shape), so
        # windows reaching past a compaction stay exact; an empty archive
        # costs one O(log 1) probe.
        total = 0
        for table in ("movements", "movements_archive"):
            sql = (
                f"SELECT COUNT(*) FROM {table}"
                " WHERE subject = ? AND location = ? AND kind = 'enter' AND time >= ?"
            )
            parameters: List = [subject_name(subject), location_name(location), window.start]
            if not window.is_unbounded:
                sql += " AND time <= ?"
                parameters.append(int(window.end))
            (count,) = self._connection.execute(sql, tuple(parameters)).fetchone()
            total += int(count)
        return total

    def last_movement(self, subject: str, location: str) -> Optional[MovementRecord]:
        record = self._occupancy.last_movement(subject_name(subject), location_name(location))
        if record is not None:
            return record
        # Not seen by this process (reopened database): indexed point
        # lookups, live log first, then the compacted archive.
        for table in ("movements", "movements_archive"):
            row = self._connection.execute(
                f"SELECT time, subject, location, kind FROM {table}"
                " WHERE subject = ? AND location = ? ORDER BY seq DESC LIMIT 1",
                (subject_name(subject), location_name(location)),
            ).fetchone()
            if row is not None:
                time, subj, loc, kind = row
                return MovementRecord(time, subj, loc, MovementKind(kind))
        return None

    def last_entry(self, subject: str, location: str) -> Optional[MovementRecord]:
        record = self._occupancy.last_entry(subject_name(subject), location_name(location))
        if record is not None:
            return record
        for table in ("movements", "movements_archive"):
            row = self._connection.execute(
                f"SELECT time, subject, location FROM {table}"
                " WHERE subject = ? AND location = ? AND kind = 'enter'"
                " ORDER BY seq DESC LIMIT 1",
                (subject_name(subject), location_name(location)),
            ).fetchone()
            if row is not None:
                time, subj, loc = row
                return MovementRecord(time, subj, loc, MovementKind.ENTER)
        return None

    def close(self) -> None:
        """Close the underlying SQLite connection."""
        self._connection.close()

    def __len__(self) -> int:
        (count,) = self._connection.execute("SELECT COUNT(*) FROM movements").fetchone()
        return int(count)
