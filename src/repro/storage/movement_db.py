"""The Location & Movements Database of Figure 3.

*"The location & movements database stores the location layout, as well as
users' movements.  These data are then used for authorization validation,
system status checking, etc."*

The database records ENTER/EXIT movement events, answers the occupancy
queries the access-control engine needs (current location of a subject,
occupants of a location, number of entries a subject has used within an
entry duration), and keeps the full movement history for the query engine
and the audit reports.  The location layout itself is held as a
:class:`~repro.locations.multilevel.LocationHierarchy` reference.
"""

from __future__ import annotations

import sqlite3
from abc import ABC, abstractmethod
from dataclasses import dataclass
from enum import Enum
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import StorageError
from repro.core.subjects import subject_name
from repro.locations.location import LocationName, location_name
from repro.locations.multilevel import LocationHierarchy
from repro.temporal.interval import TimeInterval

__all__ = [
    "MovementKind",
    "MovementRecord",
    "MovementDatabase",
    "InMemoryMovementDatabase",
    "SqliteMovementDatabase",
]


class MovementKind(str, Enum):
    """The two movement transitions the trackers report."""

    ENTER = "enter"
    EXIT = "exit"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class MovementRecord:
    """One observed movement: *subject* entered or exited *location* at *time*."""

    time: int
    subject: str
    location: LocationName
    kind: MovementKind

    def __post_init__(self) -> None:
        if not isinstance(self.time, int) or isinstance(self.time, bool) or self.time < 0:
            raise StorageError(f"movement time must be a non-negative integer, got {self.time!r}")
        object.__setattr__(self, "subject", subject_name(self.subject))
        object.__setattr__(self, "location", location_name(self.location))
        object.__setattr__(self, "kind", MovementKind(self.kind))

    def __str__(self) -> str:
        return f"{self.kind.value.upper()}({self.time}, {self.subject}, {self.location})"


class MovementDatabase(ABC):
    """Interface shared by the movement-database backends."""

    def __init__(self, hierarchy: Optional[LocationHierarchy] = None) -> None:
        self._hierarchy = hierarchy

    @property
    def hierarchy(self) -> Optional[LocationHierarchy]:
        """The location layout this database tracks (may be ``None``)."""
        return self._hierarchy

    # -- writes --------------------------------------------------------- #
    @abstractmethod
    def record(self, record: MovementRecord) -> MovementRecord:
        """Append one movement record (records must arrive in time order per subject)."""

    def record_entry(self, time: int, subject: str, location: str) -> MovementRecord:
        """Convenience: record that *subject* entered *location* at *time*."""
        return self.record(MovementRecord(time, subject, location, MovementKind.ENTER))

    def record_exit(self, time: int, subject: str, location: str) -> MovementRecord:
        """Convenience: record that *subject* exited *location* at *time*."""
        return self.record(MovementRecord(time, subject, location, MovementKind.EXIT))

    @abstractmethod
    def clear(self) -> None:
        """Remove every movement record."""

    # -- reads ---------------------------------------------------------- #
    @abstractmethod
    def history(
        self,
        *,
        subject: Optional[str] = None,
        location: Optional[str] = None,
        window: Optional[TimeInterval] = None,
    ) -> List[MovementRecord]:
        """Movement records, optionally filtered by subject, location and window."""

    @abstractmethod
    def current_location(self, subject: str) -> Optional[LocationName]:
        """The location the subject is currently inside, or ``None``."""

    @abstractmethod
    def occupants(self, location: str) -> List[str]:
        """Subjects currently inside *location*."""

    def entry_count(
        self, subject: str, location: str, window: Optional[TimeInterval] = None
    ) -> int:
        """Number of times *subject* entered *location* (within *window* if given).

        This is the counter Definition 7 checks against an authorization's
        entry budget.
        """
        records = self.history(subject=subject, location=location, window=window)
        return sum(1 for record in records if record.kind is MovementKind.ENTER)

    def last_entry(self, subject: str, location: str) -> Optional[MovementRecord]:
        """The most recent ENTER record of *subject* into *location*, if any."""
        entries = [
            record
            for record in self.history(subject=subject, location=location)
            if record.kind is MovementKind.ENTER
        ]
        return entries[-1] if entries else None

    def subjects_inside(self) -> Dict[str, LocationName]:
        """Mapping from every currently-inside subject to their location."""
        result: Dict[str, LocationName] = {}
        for record in self.history():
            if record.kind is MovementKind.ENTER:
                result[record.subject] = record.location
            else:
                result.pop(record.subject, None)
        return result

    def __len__(self) -> int:
        return len(self.history())


class InMemoryMovementDatabase(MovementDatabase):
    """List-backed movement store with per-subject occupancy tracking."""

    def __init__(self, hierarchy: Optional[LocationHierarchy] = None) -> None:
        super().__init__(hierarchy)
        self._records: List[MovementRecord] = []
        self._inside: Dict[str, LocationName] = {}
        self._entry_counts: Dict[Tuple[str, str], int] = {}

    def record(self, record: MovementRecord) -> MovementRecord:
        if self._hierarchy is not None and not self._hierarchy.is_primitive(record.location):
            raise StorageError(
                f"movement references unknown primitive location {record.location!r}"
            )
        self._records.append(record)
        if record.kind is MovementKind.ENTER:
            self._inside[record.subject] = record.location
            key = (record.subject, record.location)
            self._entry_counts[key] = self._entry_counts.get(key, 0) + 1
        else:
            if self._inside.get(record.subject) == record.location:
                del self._inside[record.subject]
        return record

    def clear(self) -> None:
        self._records.clear()
        self._inside.clear()
        self._entry_counts.clear()

    def history(
        self,
        *,
        subject: Optional[str] = None,
        location: Optional[str] = None,
        window: Optional[TimeInterval] = None,
    ) -> List[MovementRecord]:
        wanted_subject = subject_name(subject) if subject is not None else None
        wanted_location = location_name(location) if location is not None else None
        results = []
        for record in self._records:
            if wanted_subject is not None and record.subject != wanted_subject:
                continue
            if wanted_location is not None and record.location != wanted_location:
                continue
            if window is not None and not window.contains(record.time):
                continue
            results.append(record)
        return results

    def current_location(self, subject: str) -> Optional[LocationName]:
        return self._inside.get(subject_name(subject))

    def occupants(self, location: str) -> List[str]:
        wanted = location_name(location)
        return sorted(subject for subject, loc in self._inside.items() if loc == wanted)

    def entry_count(
        self, subject: str, location: str, window: Optional[TimeInterval] = None
    ) -> int:
        if window is None:
            return self._entry_counts.get((subject_name(subject), location_name(location)), 0)
        return super().entry_count(subject, location, window)

    def __len__(self) -> int:
        return len(self._records)


class SqliteMovementDatabase(MovementDatabase):
    """SQLite-backed movement store (``:memory:`` by default)."""

    _SCHEMA = """
        CREATE TABLE IF NOT EXISTS movements (
            seq      INTEGER PRIMARY KEY AUTOINCREMENT,
            time     INTEGER NOT NULL,
            subject  TEXT NOT NULL,
            location TEXT NOT NULL,
            kind     TEXT NOT NULL CHECK (kind IN ('enter', 'exit'))
        );
        CREATE INDEX IF NOT EXISTS idx_mov_subject ON movements (subject, time);
        CREATE INDEX IF NOT EXISTS idx_mov_location ON movements (location, time);
    """

    def __init__(self, path: str = ":memory:", hierarchy: Optional[LocationHierarchy] = None) -> None:
        super().__init__(hierarchy)
        self._connection = sqlite3.connect(path)
        self._connection.executescript(self._SCHEMA)
        self._connection.commit()

    def record(self, record: MovementRecord) -> MovementRecord:
        if self._hierarchy is not None and not self._hierarchy.is_primitive(record.location):
            raise StorageError(
                f"movement references unknown primitive location {record.location!r}"
            )
        self._connection.execute(
            "INSERT INTO movements (time, subject, location, kind) VALUES (?, ?, ?, ?)",
            (record.time, record.subject, record.location, record.kind.value),
        )
        self._connection.commit()
        return record

    def clear(self) -> None:
        self._connection.execute("DELETE FROM movements")
        self._connection.commit()

    def history(
        self,
        *,
        subject: Optional[str] = None,
        location: Optional[str] = None,
        window: Optional[TimeInterval] = None,
    ) -> List[MovementRecord]:
        sql = "SELECT time, subject, location, kind FROM movements"
        clauses: List[str] = []
        parameters: List = []
        if subject is not None:
            clauses.append("subject = ?")
            parameters.append(subject_name(subject))
        if location is not None:
            clauses.append("location = ?")
            parameters.append(location_name(location))
        if window is not None:
            clauses.append("time >= ?")
            parameters.append(window.start)
            if not window.is_unbounded:
                clauses.append("time <= ?")
                parameters.append(int(window.end))
        if clauses:
            sql += " WHERE " + " AND ".join(clauses)
        sql += " ORDER BY seq"
        rows = self._connection.execute(sql, tuple(parameters)).fetchall()
        return [MovementRecord(time, subj, loc, MovementKind(kind)) for time, subj, loc, kind in rows]

    def current_location(self, subject: str) -> Optional[LocationName]:
        row = self._connection.execute(
            "SELECT location, kind FROM movements WHERE subject = ? ORDER BY seq DESC LIMIT 1",
            (subject_name(subject),),
        ).fetchone()
        if row is None:
            return None
        loc, kind = row
        return loc if kind == MovementKind.ENTER.value else None

    def occupants(self, location: str) -> List[str]:
        return sorted(
            subject
            for subject, loc in self.subjects_inside().items()
            if loc == location_name(location)
        )

    def close(self) -> None:
        """Close the underlying SQLite connection."""
        self._connection.close()

    def __len__(self) -> int:
        (count,) = self._connection.execute("SELECT COUNT(*) FROM movements").fetchone()
        return int(count)
