"""The Location & Movements Database of Figure 3.

*"The location & movements database stores the location layout, as well as
users' movements.  These data are then used for authorization validation,
system status checking, etc."*

The database records ENTER/EXIT movement events, answers the occupancy
queries the access-control engine needs (current location of a subject,
occupants of a location, number of entries a subject has used within an
entry duration), and keeps the full movement history for the query engine
and the audit reports.  The location layout itself is held as a
:class:`~repro.locations.multilevel.LocationHierarchy` reference.

Every hot read is served by the event-indexed
:class:`~repro.storage.occupancy.OccupancyService` projection that both
backends fold each record into — occupancy and unwindowed entry counts are
O(1), windowed entry counts O(log n) (bisection in memory, an indexed SQL
``COUNT(*)`` on SQLite) — instead of replaying the movement history.  The
full history remains the source of truth: the projection can always be
rebuilt from it, and the SQLite backend additionally persists the projection
in derived tables (``occ_current``, ``occ_entry_counts``) updated in the
same transaction as each insert, so reopening a database file does not
require an O(n) replay.
"""

from __future__ import annotations

import sqlite3
from abc import ABC, abstractmethod
from contextlib import contextmanager
from dataclasses import dataclass
from enum import Enum
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.errors import StorageError
from repro.core.subjects import subject_name
from repro.locations.location import LocationName, location_name
from repro.locations.multilevel import LocationHierarchy
from repro.storage.occupancy import OccupancyAnomaly, OccupancyService
from repro.temporal.interval import TimeInterval

__all__ = [
    "MovementKind",
    "MovementRecord",
    "MovementDatabase",
    "InMemoryMovementDatabase",
    "SqliteMovementDatabase",
]


class MovementKind(str, Enum):
    """The two movement transitions the trackers report."""

    ENTER = "enter"
    EXIT = "exit"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class MovementRecord:
    """One observed movement: *subject* entered or exited *location* at *time*."""

    time: int
    subject: str
    location: LocationName
    kind: MovementKind

    def __post_init__(self) -> None:
        if not isinstance(self.time, int) or isinstance(self.time, bool) or self.time < 0:
            raise StorageError(f"movement time must be a non-negative integer, got {self.time!r}")
        object.__setattr__(self, "subject", subject_name(self.subject))
        object.__setattr__(self, "location", location_name(self.location))
        object.__setattr__(self, "kind", MovementKind(self.kind))

    def __str__(self) -> str:
        return f"{self.kind.value.upper()}({self.time}, {self.subject}, {self.location})"


class MovementDatabase(ABC):
    """Interface shared by the movement-database backends.

    Both backends maintain an :class:`OccupancyService` projection; the
    base class serves every occupancy read from it.  With ``strict=True``
    an EXIT that contradicts the tracked occupancy (subject inside a
    different location, or not inside at all) raises
    :class:`~repro.errors.StorageError` instead of being recorded with an
    anomaly note — with an identical message on every backend.
    """

    def __init__(self, hierarchy: Optional[LocationHierarchy] = None, *, strict: bool = False) -> None:
        self._hierarchy = hierarchy
        self._strict = strict
        self._occupancy = self._service_factory()

    def _service_factory(self) -> OccupancyService:
        return OccupancyService()

    @property
    def hierarchy(self) -> Optional[LocationHierarchy]:
        """The location layout this database tracks (may be ``None``)."""
        return self._hierarchy

    @property
    def strict(self) -> bool:
        """Whether inconsistent exits raise instead of being noted."""
        return self._strict

    @property
    def occupancy_service(self) -> OccupancyService:
        """The event-indexed projection serving this database's hot reads."""
        return self._occupancy

    @property
    def anomalies(self) -> Tuple[OccupancyAnomaly, ...]:
        """Inconsistent-exit notes collected by the projection."""
        return self._occupancy.anomalies

    # -- write-side validation ------------------------------------------ #
    def _validate_record(self, record: MovementRecord) -> None:
        if self._hierarchy is not None and not self._hierarchy.is_primitive(record.location):
            raise StorageError(
                f"movement references unknown primitive location {record.location!r}"
            )

    def _check_strict_exit(self, record: MovementRecord) -> None:
        if not self._strict:
            return
        anomaly = self._occupancy.check_exit(record)
        if anomaly is not None:
            raise StorageError(f"inconsistent exit rejected: {anomaly}")

    def _validate_batch(self, records: List[MovementRecord]) -> None:
        """Validate a whole batch up front so strict batches are all-or-nothing.

        Strict exits are checked by replaying the batch onto a scratch
        projection seeded with the current occupancy, so the error message
        is the one :meth:`OccupancyService.check_exit` produces — identical
        to the single-record path on every backend.
        """
        for record in records:
            self._validate_record(record)
        if not self._strict:
            return
        scratch = OccupancyService(track_timelines=False)
        scratch.load(
            inside={
                subject: (location, self._occupancy.inside_since(subject) or 0)
                for subject, location in self._occupancy.subjects_inside().items()
            },
            entry_counts={},
        )
        for record in records:
            anomaly = scratch.check_exit(record)
            if anomaly is not None:
                raise StorageError(f"inconsistent exit rejected: {anomaly}")
            scratch.apply(record)

    # -- writes --------------------------------------------------------- #
    @abstractmethod
    def record(self, record: MovementRecord) -> MovementRecord:
        """Append one movement record (records must arrive in time order per subject)."""

    def record_many(self, records: Iterable[MovementRecord]) -> List[MovementRecord]:
        """Append a batch of movement records with one storage round-trip.

        The batch is validated up front (unknown locations and, in strict
        mode, inconsistent exits reject the whole batch before anything is
        written), then applied in order inside a single :meth:`bulk` scope —
        one transaction/commit on the SQLite backend.
        """
        batch = list(records)
        self._validate_batch(batch)
        with self.bulk():
            for record in batch:
                self.record(record)
        return batch

    def record_entry(self, time: int, subject: str, location: str) -> MovementRecord:
        """Convenience: record that *subject* entered *location* at *time*."""
        return self.record(MovementRecord(time, subject, location, MovementKind.ENTER))

    def record_exit(self, time: int, subject: str, location: str) -> MovementRecord:
        """Convenience: record that *subject* exited *location* at *time*."""
        return self.record(MovementRecord(time, subject, location, MovementKind.EXIT))

    @contextmanager
    def bulk(self) -> Iterator[None]:
        """Scope several writes into one storage transaction (no-op by default)."""
        yield

    @abstractmethod
    def clear(self) -> None:
        """Remove every movement record."""

    # -- reads ---------------------------------------------------------- #
    @abstractmethod
    def history(
        self,
        *,
        subject: Optional[str] = None,
        location: Optional[str] = None,
        window: Optional[TimeInterval] = None,
    ) -> List[MovementRecord]:
        """Movement records, optionally filtered by subject, location and window."""

    def current_location(self, subject: str) -> Optional[LocationName]:
        """The location the subject is currently inside, or ``None`` — O(1)."""
        return self._occupancy.current_location(subject_name(subject))

    def occupants(self, location: str) -> List[str]:
        """Subjects currently inside *location*, sorted — O(k log k)."""
        return self._occupancy.occupants(location_name(location))

    def occupancy(self, location: str) -> int:
        """Number of subjects currently inside *location* — O(1)."""
        return self._occupancy.occupancy(location_name(location))

    def entry_count(
        self, subject: str, location: str, window: Optional[TimeInterval] = None
    ) -> int:
        """Number of times *subject* entered *location* (within *window* if given).

        This is the counter Definition 7 checks against an authorization's
        entry budget — O(1) unwindowed, O(log n) windowed.
        """
        return self._occupancy.entry_count(subject_name(subject), location_name(location), window)

    def last_entry(self, subject: str, location: str) -> Optional[MovementRecord]:
        """The most recent ENTER record of *subject* into *location*, if any — O(1)."""
        return self._occupancy.last_entry(subject_name(subject), location_name(location))

    def last_movement(self, subject: str, location: str) -> Optional[MovementRecord]:
        """The most recent movement (either kind) of the pair, if any — O(1)."""
        return self._occupancy.last_movement(subject_name(subject), location_name(location))

    def subjects_inside(self) -> Dict[str, LocationName]:
        """Mapping from every currently-inside subject to their location."""
        return self._occupancy.subjects_inside()

    def __len__(self) -> int:
        return len(self.history())


class InMemoryMovementDatabase(MovementDatabase):
    """List-backed movement store; every occupancy read hits the projection."""

    def __init__(
        self, hierarchy: Optional[LocationHierarchy] = None, *, strict: bool = False
    ) -> None:
        super().__init__(hierarchy, strict=strict)
        self._records: List[MovementRecord] = []

    def record(self, record: MovementRecord) -> MovementRecord:
        self._validate_record(record)
        self._check_strict_exit(record)
        self._records.append(record)
        self._occupancy.apply(record)
        return record

    def clear(self) -> None:
        self._records.clear()
        self._occupancy.clear()

    def history(
        self,
        *,
        subject: Optional[str] = None,
        location: Optional[str] = None,
        window: Optional[TimeInterval] = None,
    ) -> List[MovementRecord]:
        wanted_subject = subject_name(subject) if subject is not None else None
        wanted_location = location_name(location) if location is not None else None
        results = []
        for record in self._records:
            if wanted_subject is not None and record.subject != wanted_subject:
                continue
            if wanted_location is not None and record.location != wanted_location:
                continue
            if window is not None and not window.contains(record.time):
                continue
            results.append(record)
        return results

    def __len__(self) -> int:
        return len(self._records)


class SqliteMovementDatabase(MovementDatabase):
    """SQLite-backed movement store (``:memory:`` by default).

    Besides the append-only ``movements`` log, the backend maintains two
    derived tables — ``occ_current`` (the occupancy map) and
    ``occ_entry_counts`` (per-pair entry counters and last entry time) —
    updated in the **same transaction** as each insert.  On open they prime
    the in-process :class:`OccupancyService` in O(#subjects + #pairs)
    instead of replaying the log; windowed entry counts are answered by an
    SQL ``COUNT(*)`` over the partial index on ENTER rows.

    Concurrency contract: movement writes to a given database file must go
    through **one** ``SqliteMovementDatabase`` instance (the projection is
    primed at open and advanced only by this instance's own writes — another
    writer's rows would be invisible to the hot reads until reopen).  Other
    connections to the same file — the authorization and profile stores of a
    shared-path deployment — may read and write freely; WAL journaling keeps
    them live while a batch transaction is open here.  Multi-writer ingest is
    the sharding follow-on tracked in ROADMAP.md.
    """

    _SCHEMA = """
        CREATE TABLE IF NOT EXISTS movements (
            seq      INTEGER PRIMARY KEY AUTOINCREMENT,
            time     INTEGER NOT NULL,
            subject  TEXT NOT NULL,
            location TEXT NOT NULL,
            kind     TEXT NOT NULL CHECK (kind IN ('enter', 'exit'))
        );
        CREATE INDEX IF NOT EXISTS idx_mov_subject ON movements (subject, time);
        CREATE INDEX IF NOT EXISTS idx_mov_location ON movements (location, time);
        CREATE INDEX IF NOT EXISTS idx_mov_entries
            ON movements (subject, location, time) WHERE kind = 'enter';
        CREATE INDEX IF NOT EXISTS idx_mov_pair_seq ON movements (subject, location, seq);
        CREATE TABLE IF NOT EXISTS occ_current (
            subject  TEXT PRIMARY KEY,
            location TEXT NOT NULL,
            since    INTEGER NOT NULL
        );
        CREATE TABLE IF NOT EXISTS occ_entry_counts (
            subject         TEXT NOT NULL,
            location        TEXT NOT NULL,
            entries         INTEGER NOT NULL,
            last_entry_time INTEGER,
            PRIMARY KEY (subject, location)
        );
        CREATE TABLE IF NOT EXISTS occ_meta (
            key   TEXT PRIMARY KEY,
            value INTEGER NOT NULL
        );
    """

    def __init__(
        self,
        path: str = ":memory:",
        hierarchy: Optional[LocationHierarchy] = None,
        *,
        strict: bool = False,
    ) -> None:
        super().__init__(hierarchy, strict=strict)
        self._connection = sqlite3.connect(path)
        # WAL lets other connections to the same file (the authorization and
        # profile stores of a shared-path deployment) keep reading while a
        # bulk()/record_many transaction is open; a no-op for ":memory:".
        self._connection.execute("PRAGMA journal_mode=WAL")
        self._connection.execute("PRAGMA busy_timeout=5000")
        self._connection.executescript(self._SCHEMA)
        self._connection.commit()
        self._in_bulk = False
        self._load_service()

    def _service_factory(self) -> OccupancyService:
        # Windowed entry counts run as indexed SQL COUNT(*) queries, so the
        # projection skips the timelines and reopening stays O(#pairs).
        return OccupancyService(track_timelines=False)

    def _max_seq(self) -> int:
        """The newest movement seq — O(log n), it is the integer primary key."""
        (max_seq,) = self._connection.execute(
            "SELECT COALESCE(MAX(seq), 0) FROM movements"
        ).fetchone()
        return int(max_seq)

    def _stamp_applied(self) -> None:
        """Record (inside the open transaction) how far the derived tables reach."""
        self._connection.execute(
            "INSERT INTO occ_meta (key, value) VALUES ('applied_seq', ?)"
            " ON CONFLICT(key) DO UPDATE SET value = excluded.value",
            (self._max_seq(),),
        )

    def _load_service(self) -> None:
        """Prime the projection from the derived tables (rebuilding them if stale).

        Staleness is detected by comparing the stamped ``applied_seq`` with
        the log's maximum seq — both O(log n) index lookups, so reopening a
        healthy database stays O(#subjects + #pairs).
        """
        row = self._connection.execute(
            "SELECT value FROM occ_meta WHERE key = 'applied_seq'"
        ).fetchone()
        applied = int(row[0]) if row is not None else 0
        if applied != self._max_seq():
            # A database written before the derived tables existed (or by a
            # crashed writer): rebuild the projection from the log once.
            self._rebuild_derived()
        inside = {
            subject: (location, since)
            for subject, location, since in self._connection.execute(
                "SELECT subject, location, since FROM occ_current"
            )
        }
        counts = {
            (subject, location): (count, last_time)
            for subject, location, count, last_time in self._connection.execute(
                "SELECT subject, location, entries, last_entry_time FROM occ_entry_counts"
            )
        }
        self._occupancy.load(inside=inside, entry_counts=counts)

    def _rebuild_derived(self) -> None:
        """Replay the movement log into fresh derived tables (one-time migration)."""
        replay = OccupancyService(track_timelines=False)
        for time, subject, location, kind in self._connection.execute(
            "SELECT time, subject, location, kind FROM movements ORDER BY seq"
        ):
            replay.apply(MovementRecord(time, subject, location, MovementKind(kind)))
        self._connection.execute("DELETE FROM occ_current")
        self._connection.execute("DELETE FROM occ_entry_counts")
        self._connection.executemany(
            "INSERT INTO occ_current (subject, location, since) VALUES (?, ?, ?)",
            [
                (subject, location, replay.inside_since(subject) or 0)
                for subject, location in replay.subjects_inside().items()
            ],
        )
        count_rows = []
        for (subject, location), count in replay.entry_counts().items():
            last = replay.last_entry(subject, location)
            count_rows.append((subject, location, count, last.time if last else None))
        self._connection.executemany(
            "INSERT INTO occ_entry_counts (subject, location, entries, last_entry_time)"
            " VALUES (?, ?, ?, ?)",
            count_rows,
        )
        self._stamp_applied()
        self._connection.commit()

    # -- writes --------------------------------------------------------- #
    def _apply_derived(self, record: MovementRecord) -> None:
        """Mirror one record into the derived tables (inside the open transaction)."""
        if record.kind is MovementKind.ENTER:
            self._connection.execute(
                "INSERT INTO occ_current (subject, location, since) VALUES (?, ?, ?)"
                " ON CONFLICT(subject) DO UPDATE SET"
                " location = excluded.location, since = excluded.since",
                (record.subject, record.location, record.time),
            )
            self._connection.execute(
                "INSERT INTO occ_entry_counts (subject, location, entries, last_entry_time)"
                " VALUES (?, ?, 1, ?)"
                " ON CONFLICT(subject, location) DO UPDATE SET"
                " entries = entries + 1, last_entry_time = excluded.last_entry_time",
                (record.subject, record.location, record.time),
            )
        elif self._occupancy.current_location(record.subject) == record.location:
            # Consistent exit; an anomalous one leaves the occupancy map alone
            # (mirroring OccupancyService semantics).
            self._connection.execute(
                "DELETE FROM occ_current WHERE subject = ?", (record.subject,)
            )

    def record(self, record: MovementRecord) -> MovementRecord:
        self._validate_record(record)
        self._check_strict_exit(record)
        self._connection.execute(
            "INSERT INTO movements (time, subject, location, kind) VALUES (?, ?, ?, ?)",
            (record.time, record.subject, record.location, record.kind.value),
        )
        self._apply_derived(record)
        self._occupancy.apply(record)
        if not self._in_bulk:
            self._stamp_applied()
            self._connection.commit()
        return record

    def record_many(self, records: Iterable[MovementRecord]) -> List[MovementRecord]:
        """Batch insert with ``executemany`` and a single commit.

        The movement log is appended with one ``executemany``; the derived
        tables are then synced from the final projection state with one
        ``executemany`` per table over just the touched keys — O(batch)
        Python, O(distinct keys) SQL, one transaction.
        """
        batch = list(records)
        self._validate_batch(batch)
        if self._in_bulk:
            # The enclosing bulk() scope owns the transaction (and rollback).
            self._write_batch(batch)
            return batch
        state = self._occupancy.snapshot()
        try:
            self._write_batch(batch)
            self._connection.commit()
        except Exception:
            self._connection.rollback()
            self._occupancy.restore(state)
            raise
        return batch

    def _write_batch(self, batch: List[MovementRecord]) -> None:
        """Append *batch* and sync the projection/derived tables (no commit)."""
        self._connection.executemany(
            "INSERT INTO movements (time, subject, location, kind) VALUES (?, ?, ?, ?)",
            [(r.time, r.subject, r.location, r.kind.value) for r in batch],
        )
        for record in batch:
            self._occupancy.apply(record)
        self._sync_derived(
            subjects={record.subject for record in batch},
            pairs={
                (record.subject, record.location)
                for record in batch
                if record.kind is MovementKind.ENTER
            },
        )
        self._stamp_applied()

    def _sync_derived(self, *, subjects: set, pairs: set) -> None:
        """Write the projection's state for the touched keys into the derived tables."""
        gone = [(subject,) for subject in subjects if self._occupancy.current_location(subject) is None]
        present = [
            (subject, self._occupancy.current_location(subject), self._occupancy.inside_since(subject))
            for subject in subjects
            if self._occupancy.current_location(subject) is not None
        ]
        if gone:
            self._connection.executemany("DELETE FROM occ_current WHERE subject = ?", gone)
        if present:
            self._connection.executemany(
                "INSERT INTO occ_current (subject, location, since) VALUES (?, ?, ?)"
                " ON CONFLICT(subject) DO UPDATE SET"
                " location = excluded.location, since = excluded.since",
                present,
            )
        count_rows = []
        for subject, location in pairs:
            last = self._occupancy.last_entry(subject, location)
            count_rows.append(
                (
                    subject,
                    location,
                    self._occupancy.entry_count(subject, location),
                    last.time if last is not None else None,
                )
            )
        if count_rows:
            self._connection.executemany(
                "INSERT INTO occ_entry_counts (subject, location, entries, last_entry_time)"
                " VALUES (?, ?, ?, ?)"
                " ON CONFLICT(subject, location) DO UPDATE SET"
                " entries = excluded.entries, last_entry_time = excluded.last_entry_time",
                count_rows,
            )

    @contextmanager
    def bulk(self) -> Iterator[None]:
        """Defer the commit until the end of the scope (one transaction).

        On failure the SQL transaction rolls back and the projection is
        restored from a snapshot taken at scope entry — committed state,
        including in-process anomaly notes and histograms, survives intact.
        """
        if self._in_bulk:
            yield
            return
        self._in_bulk = True
        state = self._occupancy.snapshot()
        try:
            yield
        except Exception:
            self._connection.rollback()
            self._occupancy.restore(state)
            raise
        else:
            self._stamp_applied()
            self._connection.commit()
        finally:
            self._in_bulk = False

    def clear(self) -> None:
        self._connection.execute("DELETE FROM movements")
        self._connection.execute("DELETE FROM occ_current")
        self._connection.execute("DELETE FROM occ_entry_counts")
        self._stamp_applied()
        self._connection.commit()
        self._occupancy.clear()

    # -- reads ---------------------------------------------------------- #
    def history(
        self,
        *,
        subject: Optional[str] = None,
        location: Optional[str] = None,
        window: Optional[TimeInterval] = None,
    ) -> List[MovementRecord]:
        sql = "SELECT time, subject, location, kind FROM movements"
        clauses: List[str] = []
        parameters: List = []
        if subject is not None:
            clauses.append("subject = ?")
            parameters.append(subject_name(subject))
        if location is not None:
            clauses.append("location = ?")
            parameters.append(location_name(location))
        if window is not None:
            clauses.append("time >= ?")
            parameters.append(window.start)
            if not window.is_unbounded:
                clauses.append("time <= ?")
                parameters.append(int(window.end))
        if clauses:
            sql += " WHERE " + " AND ".join(clauses)
        sql += " ORDER BY seq"
        rows = self._connection.execute(sql, tuple(parameters)).fetchall()
        return [MovementRecord(time, subj, loc, MovementKind(kind)) for time, subj, loc, kind in rows]

    def entry_count(
        self, subject: str, location: str, window: Optional[TimeInterval] = None
    ) -> int:
        if window is None:
            return self._occupancy.entry_count(subject_name(subject), location_name(location))
        # SQL-side count over the partial ENTER index — O(log n + k) in SQLite.
        sql = (
            "SELECT COUNT(*) FROM movements"
            " WHERE subject = ? AND location = ? AND kind = 'enter' AND time >= ?"
        )
        parameters: List = [subject_name(subject), location_name(location), window.start]
        if not window.is_unbounded:
            sql += " AND time <= ?"
            parameters.append(int(window.end))
        (count,) = self._connection.execute(sql, tuple(parameters)).fetchone()
        return int(count)

    def last_movement(self, subject: str, location: str) -> Optional[MovementRecord]:
        record = self._occupancy.last_movement(subject_name(subject), location_name(location))
        if record is not None:
            return record
        # Not seen by this process (reopened database): indexed point lookup.
        row = self._connection.execute(
            "SELECT time, subject, location, kind FROM movements"
            " WHERE subject = ? AND location = ? ORDER BY seq DESC LIMIT 1",
            (subject_name(subject), location_name(location)),
        ).fetchone()
        if row is None:
            return None
        time, subj, loc, kind = row
        return MovementRecord(time, subj, loc, MovementKind(kind))

    def last_entry(self, subject: str, location: str) -> Optional[MovementRecord]:
        record = self._occupancy.last_entry(subject_name(subject), location_name(location))
        if record is not None:
            return record
        row = self._connection.execute(
            "SELECT time, subject, location FROM movements"
            " WHERE subject = ? AND location = ? AND kind = 'enter'"
            " ORDER BY seq DESC LIMIT 1",
            (subject_name(subject), location_name(location)),
        ).fetchone()
        if row is None:
            return None
        time, subj, loc = row
        return MovementRecord(time, subj, loc, MovementKind.ENTER)

    def close(self) -> None:
        """Close the underlying SQLite connection."""
        self._connection.close()

    def __len__(self) -> int:
        (count,) = self._connection.execute("SELECT COUNT(*) FROM movements").fetchone()
        return int(count)
