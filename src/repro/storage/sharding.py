"""Sharding for the occupancy projection.

One in-process :class:`~repro.storage.occupancy.OccupancyService` is a
single serialization point: every tracker feed funnels through the same
object, so ingest throughput is bounded by one writer no matter how many
tracker streams a deployment receives.  This module partitions the
projection into **N shards keyed by a consistent hash on the subject**:

* :class:`HashRing` — a deterministic consistent-hash ring (CRC32 points,
  virtual nodes) mapping subject names to shard indices.  The ring is
  stable across processes and Python restarts (no reliance on the salted
  builtin ``hash``), so a sharded SQLite deployment reopens onto the same
  partitioning it was written with.
* :class:`ShardedOccupancyService` — a drop-in replacement for
  :class:`OccupancyService` holding one shard-local projection (plus a
  shard-local lock) per shard.  Writes touch exactly one shard — batches
  are partitioned and each partition folds in under its own lock, so
  multiple writer threads ingest in parallel — while cross-shard reads
  (``subjects_inside``, ``occupants``, ``entry_counts``, histograms,
  anomalies) merge the shard projections lazily at read time; nothing
  global is materialized on the write path.

Subjects are the shard key because every per-pair structure (entry
counters, timelines, last entry/movement) and the occupancy map itself are
subject-keyed: a subject's whole history lives in one shard, so the
consistency checks (:meth:`ShardedOccupancyService.check_exit`) and the
point reads stay single-shard and O(1)/O(log n) exactly as before.
"""

from __future__ import annotations

import bisect
import os
import threading
import zlib
from contextlib import contextmanager
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Tuple

from repro.errors import StorageError
from repro.storage.occupancy import (
    DEFAULT_HISTOGRAM_BUCKET,
    OccupancyAnomaly,
    OccupancyService,
)
from repro.temporal.interval import TimeInterval

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.storage.movement_db import MovementRecord

__all__ = [
    "DEFAULT_VIRTUAL_NODES",
    "HashRing",
    "ShardedOccupancyService",
    "default_shard_count",
    "resolve_shard_count",
    "stable_hash",
]

#: Virtual nodes per shard on the consistent-hash ring.  Enough to keep the
#: per-shard load within a few percent of even for realistic subject counts.
DEFAULT_VIRTUAL_NODES = 64


def stable_hash(key: str) -> int:
    """A process-independent 32-bit hash of *key* (CRC32 of its UTF-8 bytes)."""
    return zlib.crc32(key.encode("utf-8")) & 0xFFFFFFFF


def default_shard_count() -> int:
    """The automatic shard count: one shard per CPU core, at least one."""
    return max(1, os.cpu_count() or 1)


def resolve_shard_count(shards) -> Optional[int]:
    """Normalize a ``shards`` configuration knob.

    ``None`` means "unsharded" (a single plain projection), ``"auto"``
    resolves to :func:`default_shard_count`, and a positive integer is taken
    as-is.  Anything else raises :class:`StorageError`.
    """
    if shards is None:
        return None
    if shards == "auto":
        return default_shard_count()
    if isinstance(shards, int) and not isinstance(shards, bool) and shards >= 1:
        return shards
    raise StorageError(
        f"shard count must be a positive integer, 'auto', or None, got {shards!r}"
    )


class HashRing:
    """A consistent-hash ring mapping string keys to shard indices.

    Each shard owns :data:`DEFAULT_VIRTUAL_NODES` points on a 32-bit ring;
    a key maps to the owner of the first point at or after its hash
    (wrapping).  Consistency matters for the usual reason: growing an
    N-shard ring to N+1 shards remaps only ~1/(N+1) of the keys, so a
    future live-resharding path moves a bounded slice of the projection
    instead of rehashing everything.
    """

    __slots__ = ("_shards", "_points", "_owners")

    def __init__(self, shards: int, *, virtual_nodes: int = DEFAULT_VIRTUAL_NODES) -> None:
        if not isinstance(shards, int) or isinstance(shards, bool) or shards < 1:
            raise StorageError(f"shard count must be a positive integer, got {shards!r}")
        if virtual_nodes < 1:
            raise StorageError(f"virtual node count must be positive, got {virtual_nodes!r}")
        self._shards = shards
        points: List[Tuple[int, int]] = []
        for shard in range(shards):
            for replica in range(virtual_nodes):
                points.append((stable_hash(f"shard-{shard}:vnode-{replica}"), shard))
        points.sort()
        self._points = [point for point, _ in points]
        self._owners = [owner for _, owner in points]

    @property
    def shards(self) -> int:
        """How many shards the ring distributes keys across."""
        return self._shards

    def shard_for(self, key: str) -> int:
        """The shard index owning *key* — O(log vnodes)."""
        if self._shards == 1:
            return 0
        index = bisect.bisect_left(self._points, stable_hash(key))
        if index == len(self._points):  # wrap past the last point
            index = 0
        return self._owners[index]


class ShardedOccupancyService:
    """N shard-local occupancy projections behind the one-projection API.

    Drop-in compatible with :class:`OccupancyService`: the movement-database
    backends and their tests cannot tell the two apart read-for-read.  Every
    write locks exactly one shard; :meth:`apply_many` partitions its batch
    by shard first and folds each partition in under a single lock
    acquisition, which is what lets several writer threads (one per tracker
    feed) ingest concurrently — threads only contend when their batches
    collide on the same shard.
    """

    __slots__ = ("_ring", "_shards", "_locks", "_shard_cache")

    def __init__(
        self,
        shards: int = 1,
        *,
        track_timelines: bool = True,
        histogram_bucket: int = DEFAULT_HISTOGRAM_BUCKET,
    ) -> None:
        self._ring = HashRing(shards)
        self._shards: List[OccupancyService] = [
            OccupancyService(track_timelines=track_timelines, histogram_bucket=histogram_bucket)
            for _ in range(shards)
        ]
        self._locks: List[threading.Lock] = [threading.Lock() for _ in range(shards)]
        # Subject → shard memo: ring lookups are O(log vnodes) but subjects
        # repeat millions of times in a trace, so the ingest hot loop reads
        # this dict instead (bounded by the deployment's subject population).
        self._shard_cache: Dict[str, int] = {}

    # ------------------------------------------------------------------ #
    # Shard plumbing
    # ------------------------------------------------------------------ #
    @property
    def shard_count(self) -> int:
        """How many shard-local projections this service holds."""
        return len(self._shards)

    @property
    def ring(self) -> HashRing:
        """The consistent-hash ring assigning subjects to shards."""
        return self._ring

    def shard_for(self, subject: str) -> int:
        """The shard index owning *subject*'s state (memoized ring lookup)."""
        index = self._shard_cache.get(subject)
        if index is None:
            index = self._shard_cache[subject] = self._ring.shard_for(subject)
        return index

    def _shard(self, subject: str) -> OccupancyService:
        return self._shards[self.shard_for(subject)]

    def partition(self, records: Iterable["MovementRecord"]) -> Dict[int, List["MovementRecord"]]:
        """Group *records* by owning shard, preserving per-shard order."""
        cache = self._shard_cache
        ring_shard_for = self._ring.shard_for
        partitions: Dict[int, List["MovementRecord"]] = {}
        for record in records:
            subject = record.subject
            index = cache.get(subject)
            if index is None:
                index = cache[subject] = ring_shard_for(subject)
            partition = partitions.get(index)
            if partition is None:
                partitions[index] = [record]
            else:
                partition.append(record)
        return partitions

    # ------------------------------------------------------------------ #
    # Projection upkeep (shard-local, locked)
    # ------------------------------------------------------------------ #
    def check_exit(self, record: "MovementRecord") -> Optional[OccupancyAnomaly]:
        """The anomaly an EXIT record would introduce — single-shard read."""
        index = self.shard_for(record.subject)
        with self._locks[index]:
            return self._shards[index].check_exit(record)

    def apply(self, record: "MovementRecord") -> None:
        """Fold one record into its subject's shard, under the shard lock."""
        index = self.shard_for(record.subject)
        with self._locks[index]:
            self._shards[index].apply(record)

    def apply_many(self, records: Iterable["MovementRecord"]) -> None:
        """Partition a batch by shard and fold each partition in under one lock.

        Per-shard order equals batch order, so per-subject event order (the
        only order the projection is sensitive to) is preserved.  Concurrent
        callers interleave at shard granularity.
        """
        for index, partition in self.partition(records).items():
            with self._locks[index]:
                self._shards[index].apply_many(partition)

    @contextmanager
    def locked_shard(self, index: int):
        """Hold shard *index*'s lock and yield its projection.

        :class:`~repro.storage.movement_db.ShardedInMemoryMovementDatabase`
        uses this to make its shard-local log append and the projection fold
        one atomic unit, so a checkpoint walking the shards never observes a
        log/projection mismatch.
        """
        with self._locks[index]:
            yield self._shards[index]

    def forget_subject(self, subject: str) -> None:
        """Drop every trace of *subject* from its owning shard (see
        :meth:`OccupancyService.forget_subject`)."""
        index = self.shard_for(subject)
        with self._locks[index]:
            self._shards[index].forget_subject(subject)

    def clear(self) -> None:
        """Reset every shard to the empty state."""
        for index, shard in enumerate(self._shards):
            with self._locks[index]:
                shard.clear()

    def load(
        self,
        *,
        inside: Dict[str, Tuple[str, int]],
        entry_counts: Dict[Tuple[str, str], Tuple[int, Optional[int]]],
    ) -> None:
        """Prime the shards from persisted derived state (see ``OccupancyService.load``)."""
        shard_for = self.shard_for
        inside_parts: Dict[int, Dict[str, Tuple[str, int]]] = {}
        for subject, value in inside.items():
            inside_parts.setdefault(shard_for(subject), {})[subject] = value
        count_parts: Dict[int, Dict[Tuple[str, str], Tuple[int, Optional[int]]]] = {}
        for pair, value in entry_counts.items():
            count_parts.setdefault(shard_for(pair[0]), {})[pair] = value
        for index, shard in enumerate(self._shards):
            with self._locks[index]:
                shard.load(
                    inside=inside_parts.get(index, {}),
                    entry_counts=count_parts.get(index, {}),
                )

    def snapshot(self) -> tuple:
        """A tuple of per-shard snapshots (see :meth:`restore`)."""
        state = []
        for index, shard in enumerate(self._shards):
            with self._locks[index]:
                state.append(shard.snapshot())
        return tuple(state)

    def restore(self, state: tuple) -> None:
        """Roll every shard back to a :meth:`snapshot`."""
        if len(state) != len(self._shards):
            raise StorageError(
                f"snapshot holds {len(state)} shard(s) but the service has {len(self._shards)}"
            )
        for index, shard_state in enumerate(state):
            with self._locks[index]:
                self._shards[index].restore(shard_state)

    # ------------------------------------------------------------------ #
    # Reads (single-shard point reads, lazily merged cross-shard reads)
    # ------------------------------------------------------------------ #
    @property
    def tracks_timelines(self) -> bool:
        """Whether windowed entry counts can be answered from the timelines."""
        return self._shards[0].tracks_timelines

    @property
    def histogram_bucket(self) -> int:
        """The width, in chronons, of the histogram buckets."""
        return self._shards[0].histogram_bucket

    def current_location(self, subject: str) -> Optional[str]:
        """O(1) single-shard read."""
        return self._shard(subject).current_location(subject)

    def inside_since(self, subject: str) -> Optional[int]:
        """O(1) single-shard read."""
        return self._shard(subject).inside_since(subject)

    def entry_count(
        self, subject: str, location: str, window: Optional[TimeInterval] = None
    ) -> int:
        """O(1)/O(log n) single-shard read (the pair lives with its subject)."""
        return self._shard(subject).entry_count(subject, location, window)

    def last_entry(self, subject: str, location: str) -> Optional["MovementRecord"]:
        """O(1) single-shard read."""
        return self._shard(subject).last_entry(subject, location)

    def last_movement(self, subject: str, location: str) -> Optional["MovementRecord"]:
        """O(1) single-shard read."""
        return self._shard(subject).last_movement(subject, location)

    def occupants(self, location: str) -> List[str]:
        """Sorted union of the per-shard occupant sets — O(shards + k log k)."""
        members: List[str] = []
        for index, shard in enumerate(self._shards):
            with self._locks[index]:
                members.extend(shard._occupants.get(location, ()))
        return sorted(members)

    def occupancy(self, location: str) -> int:
        """Sum of the per-shard occupancy counters — O(shards)."""
        total = 0
        for index, shard in enumerate(self._shards):
            with self._locks[index]:
                total += shard.occupancy(location)
        return total

    def subjects_inside(self) -> Dict[str, str]:
        """Merged subject → location occupancy map (shards are disjoint by subject)."""
        merged: Dict[str, str] = {}
        for index, shard in enumerate(self._shards):
            with self._locks[index]:
                merged.update(shard._inside)
        return merged

    def entry_counts(self) -> Dict[Tuple[str, str], int]:
        """Merged per-(subject, location) entry counters."""
        merged: Dict[Tuple[str, str], int] = {}
        for index, shard in enumerate(self._shards):
            with self._locks[index]:
                merged.update(shard._entry_counts)
        return merged

    def entry_histogram(self, location: str) -> Dict[int, int]:
        """Bucket-wise sum of the per-shard entry histograms for *location*."""
        merged: Dict[int, int] = {}
        for index, shard in enumerate(self._shards):
            with self._locks[index]:
                for bucket, count in shard._histograms.get(location, {}).items():
                    merged[bucket] = merged.get(bucket, 0) + count
        return merged

    @property
    def anomalies(self) -> Tuple[OccupancyAnomaly, ...]:
        """Every shard's inconsistent-exit notes, merged in time order.

        Shards observe disjoint subjects, so time order (stable within each
        shard) is the only meaningful global order.
        """
        notes: List[OccupancyAnomaly] = []
        for index, shard in enumerate(self._shards):
            with self._locks[index]:
                notes.extend(shard.anomalies)
        notes.sort(key=lambda anomaly: anomaly.time)
        return tuple(notes)
