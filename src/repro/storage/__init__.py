"""Storage layer: the three databases of the Figure 3 architecture.

* :mod:`repro.storage.authorization_db` — the Authorization Database,
* :mod:`repro.storage.movement_db` — the Location & Movements Database,
* :mod:`repro.storage.profile_db` — the User Profile Database,

each with an in-memory and an SQLite backend behind a shared interface, plus
the indexes used for time-based authorization lookups.

Architecture note — the occupancy read model
--------------------------------------------

Every authorization decision reads the movement database (Definition 7);
those reads are served by an **event-indexed projection**, not by replaying
history:

* :class:`~repro.storage.occupancy.OccupancyService` is the single
  incremental projection both movement backends fold every record into —
  the current occupancy map, per-(subject, location) entry counters, entry
  timelines, last entry/movement per pair, and per-location time-bucketed
  entry histograms.  The raw movement log stays the source of truth.
* The in-memory backend answers every occupancy read from the projection:
  O(1) ``current_location`` / ``occupancy`` / unwindowed ``entry_count``,
  O(log n) windowed ``entry_count`` (timeline bisection).
* The SQLite backend mirrors the projection into derived tables
  (``occ_current``, ``occ_entry_counts``) **in the same transaction** as
  each insert, primes the in-process projection from them on reopen
  (O(#pairs), no O(n) replay), and answers windowed entry counts with an
  SQL ``COUNT(*)`` over a partial index on ENTER rows.
  ``record_many()`` batches inserts with ``executemany`` and one commit.
* :class:`~repro.storage.indexes.IntervalIndex` is an augmented interval
  tree (AVL + max-end) giving the authorization database O(log n + k)
  stabbing and overlap queries over entry durations.

Which PDP stage consumes which index:

=============================  ==============================================
Pipeline stage                 Index consulted
=============================  ==============================================
``known-location``             hierarchy primitive set (hash)
``candidate-lookup``           authorization hash index on (subject, location)
``entry-window``               candidates' entry durations (``IntervalIndex``
                               backs time-valid lookups / ``enterable_at``)
``capacity``                   ``OccupancyService`` occupancy map (O(1))
``entry-budget``               ``OccupancyService`` entry counters/timelines
=============================  ==============================================
"""

from repro.storage.authorization_db import (
    AuthorizationDatabase,
    InMemoryAuthorizationDatabase,
    SqliteAuthorizationDatabase,
)
from repro.storage.indexes import IntervalIndex
from repro.storage.movement_db import (
    InMemoryMovementDatabase,
    MovementDatabase,
    MovementKind,
    MovementRecord,
    SqliteMovementDatabase,
)
from repro.storage.occupancy import OccupancyAnomaly, OccupancyService
from repro.storage.profile_db import (
    InMemoryUserProfileDatabase,
    SqliteUserProfileDatabase,
    UserProfileDatabase,
)

__all__ = [
    "IntervalIndex",
    "OccupancyAnomaly",
    "OccupancyService",
    "AuthorizationDatabase",
    "InMemoryAuthorizationDatabase",
    "SqliteAuthorizationDatabase",
    "MovementDatabase",
    "MovementKind",
    "MovementRecord",
    "InMemoryMovementDatabase",
    "SqliteMovementDatabase",
    "UserProfileDatabase",
    "InMemoryUserProfileDatabase",
    "SqliteUserProfileDatabase",
]
