"""Storage layer: the three databases of the Figure 3 architecture.

* :mod:`repro.storage.authorization_db` — the Authorization Database,
* :mod:`repro.storage.movement_db` — the Location & Movements Database,
* :mod:`repro.storage.profile_db` — the User Profile Database,

each with an in-memory and an SQLite backend behind a shared interface, plus
the interval index used for time-based authorization lookups.
"""

from repro.storage.authorization_db import (
    AuthorizationDatabase,
    InMemoryAuthorizationDatabase,
    SqliteAuthorizationDatabase,
)
from repro.storage.indexes import IntervalIndex
from repro.storage.movement_db import (
    InMemoryMovementDatabase,
    MovementDatabase,
    MovementKind,
    MovementRecord,
    SqliteMovementDatabase,
)
from repro.storage.profile_db import (
    InMemoryUserProfileDatabase,
    SqliteUserProfileDatabase,
    UserProfileDatabase,
)

__all__ = [
    "IntervalIndex",
    "AuthorizationDatabase",
    "InMemoryAuthorizationDatabase",
    "SqliteAuthorizationDatabase",
    "MovementDatabase",
    "MovementKind",
    "MovementRecord",
    "InMemoryMovementDatabase",
    "SqliteMovementDatabase",
    "UserProfileDatabase",
    "InMemoryUserProfileDatabase",
    "SqliteUserProfileDatabase",
]
