"""Storage layer: the three databases of the Figure 3 architecture.

* :mod:`repro.storage.authorization_db` — the Authorization Database,
* :mod:`repro.storage.movement_db` — the Location & Movements Database,
* :mod:`repro.storage.profile_db` — the User Profile Database,

each with an in-memory and an SQLite backend behind a shared interface, plus
the indexes used for time-based authorization lookups.

Architecture note — the occupancy read model
--------------------------------------------

Every authorization decision reads the movement database (Definition 7);
those reads are served by an **event-indexed projection**, not by replaying
history:

* :class:`~repro.storage.occupancy.OccupancyService` is the single
  incremental projection both movement backends fold every record into —
  the current occupancy map, per-(subject, location) entry counters, entry
  timelines, last entry/movement per pair, and per-location time-bucketed
  entry histograms.  The raw movement log stays the source of truth.
* The in-memory backend answers every occupancy read from the projection:
  O(1) ``current_location`` / ``occupancy`` / unwindowed ``entry_count``,
  O(log n) windowed ``entry_count`` (timeline bisection).
* The SQLite backend mirrors the projection into derived tables
  (``occ_current``, ``occ_entry_counts``) **in the same transaction** as
  each insert, primes the in-process projection from them on reopen
  (O(#pairs), no O(n) replay), and answers windowed entry counts with an
  SQL ``COUNT(*)`` over a partial index on ENTER rows.
  ``record_many()`` batches inserts with ``executemany`` and one commit.
* :class:`~repro.storage.indexes.IntervalIndex` is an augmented interval
  tree (AVL + max-end) giving the authorization database O(log n + k)
  stabbing and overlap queries over entry durations; removals tombstone
  in O(log n) and compact amortized, so revocation churn never rebuilds
  per call.

Scaling the projection — sharding, checkpoints, streaming
---------------------------------------------------------

Three knobs turn the single-projection read model into the ingest-scale
subsystem of a production deployment:

* **Sharding** (:mod:`repro.storage.sharding`): ``shards=N`` (or
  ``"auto"`` = CPU count) splits the projection into N shard-local
  projections keyed by a consistent hash on the subject; a subject's whole
  state lives in one shard, so point reads stay O(1)/O(log n) while
  cross-shard reads (``occupants``, ``subjects_inside``, histograms) merge
  lazily.  :class:`~repro.storage.movement_db.ShardedInMemoryMovementDatabase`
  shards the log too — ``record_many`` batches from multiple writer
  threads land under per-shard locks, in parallel.
* **Checkpoint/compaction**:
  :meth:`~repro.storage.movement_db.MovementDatabase.checkpoint` persists
  the projection snapshot (SQLite: ``occ_checkpoint`` tables; memory: a
  pickle-free tuple) and archives the covered log prefix, so ``history()``
  replays and SQLite crash recovery cost O(events since the checkpoint)
  instead of O(all time).  ``history(include_archived=True)`` and windowed
  entry counts still see the full log (the archive keeps the same partial
  indexes).  The CLI exposes this as ``repro checkpoint --db ...``.
* **Streaming ingest** (:mod:`repro.storage.ingest`):
  :class:`~repro.storage.ingest.MovementIngestor` is a bounded-queue
  group-commit writer — trackers ``submit()`` at line rate, batches flush
  by size or max latency into ``record_many``/``observe_many``, and a
  rejected batch is dropped whole (all-or-nothing sinks) and surfaced on
  ``flush()``/``close()``.  ``Ltam.observe_stream()`` wires it to the PEP.

Which PDP stage consumes which index:

=============================  ==============================================
Pipeline stage                 Index consulted
=============================  ==============================================
``known-location``             hierarchy primitive set (hash)
``candidate-lookup``           authorization hash index on (subject, location)
``entry-window``               candidates' entry durations (``IntervalIndex``
                               backs time-valid lookups / ``enterable_at``)
``capacity``                   ``OccupancyService`` occupancy map (O(1))
``entry-budget``               ``OccupancyService`` entry counters/timelines
=============================  ==============================================
"""

from repro.storage.authorization_db import (
    AuthorizationDatabase,
    InMemoryAuthorizationDatabase,
    SqliteAuthorizationDatabase,
)
from repro.storage.indexes import IntervalIndex
from repro.storage.ingest import BatchFailure, CheckpointPolicy, MovementIngestor
from repro.storage.movement_db import (
    Checkpoint,
    InMemoryMovementDatabase,
    MovementDatabase,
    MovementKind,
    MovementNotice,
    MovementRecord,
    ShardedInMemoryMovementDatabase,
    SqliteMovementDatabase,
)
from repro.storage.occupancy import OccupancyAnomaly, OccupancyService
from repro.storage.profile_db import (
    InMemoryUserProfileDatabase,
    SqliteUserProfileDatabase,
    UserProfileDatabase,
)
from repro.storage.sharding import HashRing, ShardedOccupancyService

__all__ = [
    "IntervalIndex",
    "OccupancyAnomaly",
    "OccupancyService",
    "HashRing",
    "ShardedOccupancyService",
    "MovementIngestor",
    "BatchFailure",
    "CheckpointPolicy",
    "Checkpoint",
    "MovementNotice",
    "AuthorizationDatabase",
    "InMemoryAuthorizationDatabase",
    "SqliteAuthorizationDatabase",
    "MovementDatabase",
    "MovementKind",
    "MovementRecord",
    "InMemoryMovementDatabase",
    "ShardedInMemoryMovementDatabase",
    "SqliteMovementDatabase",
    "UserProfileDatabase",
    "InMemoryUserProfileDatabase",
    "SqliteUserProfileDatabase",
]
